//! Offline stand-in for `proptest`, implementing the subset this workspace's
//! property tests use: the `proptest!` macro, `Strategy` with `prop_map`,
//! range/tuple/`Just`/`prop_oneof!` strategies, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::Index`, `ProptestConfig`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * inputs are sampled from a fixed deterministic seed per case index — no
//!   OS entropy, so failures reproduce without a regressions file (the
//!   checked-in `.proptest-regressions` files are ignored);
//! * no shrinking: a failing case panics with its case number; rerunning the
//!   test replays the identical sequence, so the case is already minimal
//!   enough to debug by number;
//! * `prop_assert*` panic (like `assert*`) instead of returning `Err`.

use std::ops::{Range, RangeInclusive};

/// Deterministic sampling source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_case(test_name: &str, case: u32) -> Self {
        // Stable per-test stream: hash the test name, mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values. Object-safe: `prop_map` is `Self: Sized`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `strategy.prop_map(f)` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::prop::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::prop::sample::Index::new(rng.next_u64())
    }
}

/// Strategy for any value of an `Arbitrary` type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

/// Boxing helper used by `prop_oneof!` so the vec element type unifies.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Length specifications accepted by `prop::collection::vec`.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }

    pub mod sample {
        /// An index into a collection whose length is only known at use
        /// time: `ix.index(len)` maps uniformly into `0..len`.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            pub fn new(raw: u64) -> Self {
                Index(raw)
            }

            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index on empty collection");
                ((self.0 as u128 * size as u128) >> 64) as usize
            }
        }
    }
}

/// Runner configuration: only `cases` matters here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runs one property: samples `cases` inputs and invokes the body on each,
/// labelling any panic with the failing case index.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    for case in 0..config.cases {
        let mut rng = TestRng::from_case(name, case);
        let input = strategy.sample(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(input)));
        if let Err(payload) = result {
            eprintln!(
                "proptest: property `{name}` failed at case {case}/{}",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_property(stringify!($name), &config, &strategy, |input| {
                let ($($arg,)+) = input;
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3u8..9, b in 10u64..=20, v in prop::collection::vec(0u32..5, 1..6)) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..=20).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_oneof_just(e in arb_even(), pick in prop_oneof![Just(1u8), Just(2u8)], ix in any::<prop::sample::Index>()) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
            let i = ix.index(7);
            prop_assert!(i < 7);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = (0u64..1000, any::<bool>());
        let mut r1 = crate::TestRng::from_case("x", 3);
        let mut r2 = crate::TestRng::from_case("x", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
