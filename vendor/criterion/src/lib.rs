//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop reporting the median per-iteration time — no
//! statistical analysis, plots, or HTML reports, but enough to compare hot
//! paths before/after a change without network access.

use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Parsed for CLI compatibility; filters/options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: find an iteration count that runs long enough
        // to be timeable.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            f(&mut Bencher { iters });
            if t.elapsed() > Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            f(&mut Bencher { iters });
            let elapsed = t.elapsed();
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
            if elapsed > per_sample * 4 {
                // Way over budget per sample: settle for fewer samples.
                break;
            }
        }

        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12}/iter  ({} samples x {iters} iters)",
            fmt_ns(median),
            samples.len()
        );
        self
    }

    pub fn final_summary(&self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The value handed to the closure in `bench_function`; `iter` runs the
/// routine the calibrated number of times.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            hint::black_box(f());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            let mut count = 0u64;
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        assert!(ran);
    }
}
