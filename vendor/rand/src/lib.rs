//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the exact surface it consumes: `RngCore`, `Rng` (with
//! `gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed, which is all
//! the simulator requires (reproducible runs, not cryptographic strength).
//!
//! Semantics intentionally mirror rand 0.8 closely enough that swapping the
//! real crate back in is a one-line Cargo.toml change; streams will differ,
//! so seed-pinned expectations live behind the repo's own trace tests.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo with a 128-bit widening multiply to keep bias
                // negligible for the span sizes the simulator uses.
                let m = (rng.next_u64() as u128 * (span as u128 + 1)) >> 64;
                lo.wrapping_add(m as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + RangeStep> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi)
    }
}

/// Helper so half-open ranges can convert their end bound to inclusive.
pub trait RangeStep {
    fn step_down(self) -> Self;
}

macro_rules! range_step {
    ($($t:ty),*) => {$(
        impl RangeStep for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}
range_step!(u8, u16, u32, u64, usize, i32, i64);

/// User-facing convenience methods, blanket-implemented over any `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding from a `u64`, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand's iteration order (high to low).
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        ((rng.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

pub use rngs::StdRng as DefaultStdRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let u: usize = r.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_permutation_and_dyn_dispatch_works() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        // The graph generator calls gen_range through &mut dyn RngCore.
        let dynref: &mut dyn RngCore = &mut r;
        let x: u64 = dynref.gen_range(1..=10);
        assert!((1..=10).contains(&x));
    }
}
