//! **RP failover** (§3.9) + unicast adaptation (§3.8): multiple
//! rendezvous points, one is partitioned away; the live distance-vector
//! unicast routing reconverges, receivers notice the lapsed
//! RP-reachability timer and re-join toward the alternate RP — while
//! senders "do not need to take special action" because they register to
//! *all* RPs.
//!
//! Run: `cargo run -p examples --example rp_failover`

use examples::{build_pim_net_dv, join_at, send_at};
use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{router_addr, NodeIdx, SimTime};
use pim::{PimConfig, PimRouter};
use wire::Group;

fn main() {
    // r0(receiver) - r1 - r2(RP#1)
    //                 \-- r3(RP#2)
    //                      \- r4(sender)
    let mut g = Graph::with_nodes(5);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(1), NodeId(3), 1);
    g.add_edge(NodeId(3), NodeId(4), 1);
    g.add_edge(NodeId(2), NodeId(4), 1);

    let group = Group::test(1);
    let mut net = build_pim_net_dv(
        &g,
        group,
        &[NodeId(2), NodeId(3)], // two RPs, preference order
        &[NodeId(0), NodeId(4)],
        PimConfig::default(),
        3,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, sender_addr) = net.hosts[1];

    println!("== RP failover (paper §3.9) over live distance-vector unicast routing ==");
    println!("Two RPs advertised for {group}: r2 (primary) and r3 (alternate).");
    println!();

    // Let the routing protocol converge, then join and start a steady
    // stream: 70 packets, one every 40 ticks, from t=500 to t=3260.
    join_at(&mut net.world, receiver, group, 400);
    send_at(&mut net.world, sender, group, 500, 70, 40);
    net.world.run_until(SimTime(650));

    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group).expect("state at DR");
    println!(
        "t=650   receiver's DR joined RP#1: (*,G) key={} (r2), RP-timer armed.",
        gs.star.as_ref().expect("star").key
    );
    assert_eq!(gs.star.as_ref().expect("star").key, router_addr(NodeId(2)));

    // Partition RP#1 at t=700: both its links go down.
    net.world.at(SimTime(700), |w| {
        w.set_link_up(netsim::LinkId(1), false); // r1-r2
        w.set_link_up(netsim::LinkId(4), false); // r2-r4
    });
    println!("t=700   RP#1 (r2) partitioned — both its links cut. DV routes to r2 will");
    println!("        time out; PIM's RP-timer will lapse; §3.8 + §3.9 take over.");

    net.world.run_until(SimTime(3600));
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group).expect("state at DR");
    let new_rp = gs.star.as_ref().expect("star").key;
    println!("t=3600  the DR re-joined toward the alternate: (*,G) key={new_rp} (r3).");
    assert_eq!(new_rp, router_addr(NodeId(3)), "must fail over to RP#2");

    // Delivery resumed without sender intervention.
    let host: &HostNode = net.world.node(receiver);
    let late: Vec<u64> = host
        .received
        .iter()
        .filter(|r| r.source == sender_addr && r.at > SimTime(2500))
        .map(|r| r.seq)
        .collect();
    println!();
    println!(
        "        packets received after t=2500 (post-failover): {} (e.g. seqs {:?})",
        late.len(),
        &late[..late.len().min(5)]
    );
    assert!(
        late.len() >= 10,
        "delivery must resume through the alternate RP: {late:?}"
    );
    let all = host.seqs_from(sender_addr, group);
    println!(
        "        total received {}/70 — the outage spans detection (DV timeout + RP-timer)",
        all.len()
    );
    println!("        and re-join only; no sender action was needed (§3.9).");
}
