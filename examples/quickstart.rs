//! **Quickstart**: the paper's Figure 3 sequence on a five-router
//! internet — receiver joins via IGMP, the shared tree grows to the RP,
//! a sender registers, and data flows; then the receiver's DR switches to
//! the shortest-path tree and latency drops.
//!
//! Run: `cargo run -p examples --example quickstart`

use examples::{build_pim_net, describe_reception, join_at, send_at};
use graph::{Graph, NodeId};
use netsim::{NodeIdx, SimTime};
use pim::{PimConfig, PimRouter};
use wire::Group;

fn main() {
    // Topology: receiver -- r0 --1-- r1 --1-- r2(RP) --1-- r3 -- sender,
    // with a direct r0--r4--r3 shortcut (total delay 2 < 3 via the RP).
    let mut g = Graph::with_nodes(5);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    g.add_edge(NodeId(0), NodeId(4), 1);
    g.add_edge(NodeId(4), NodeId(3), 1);

    let group = Group::test(1);
    let mut net = build_pim_net(
        &g,
        group,
        &[NodeId(2)],
        &[NodeId(0), NodeId(3)],
        PimConfig::default(),
        7,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, sender_addr) = net.hosts[1];

    println!("== PIM quickstart: the paper's Figure 3 sequence ==");
    println!("Topology: receiver-[r0]-[r1]-[r2=RP]-[r3]-sender, shortcut r0-r4-r3.");
    println!();

    // 1. The receiver joins; IGMP tells its DR; the DR joins toward the RP.
    net.world.enable_capture(400);
    join_at(&mut net.world, receiver, group, 10);
    net.world.run_until(SimTime(100));
    println!("packet capture of the join sequence (tcpdump-style):");
    for rec in net
        .world
        .captured()
        .iter()
        .filter(|r| r.summary.contains("Report") || r.summary.contains("Join/Prune"))
        .take(5)
    {
        println!("  {:<5} {}", rec.at.to_string(), rec.summary);
    }
    println!();
    {
        let r0: &PimRouter = net.world.node(NodeIdx(0));
        let star = r0
            .engine()
            .group_state(group)
            .and_then(|gs| gs.star.as_ref())
            .expect("the DR must hold (*,G) state");
        println!("t=100  receiver joined {group}. Its DR r0 created the (*,G) entry:");
        println!(
            "       iif={:?} (toward the RP), upstream={:?}, WC+RP bits set.",
            star.iif, star.upstream
        );
        let rp: &PimRouter = net.world.node(NodeIdx(2));
        assert!(rp
            .engine()
            .group_state(group)
            .and_then(|gs| gs.star.as_ref())
            .is_some());
        println!("       The join propagated hop-by-hop: r1 and the RP now hold (*,G) too.");
        println!();
    }

    // 2. The sender transmits 20 packets, 25 ticks apart.
    send_at(&mut net.world, sender, group, 200, 20, 25);
    net.world.run_until(SimTime(1000));

    // 3. Inspect the outcome.
    println!("t=1000 sender transmitted 20 packets starting at t=200.");
    println!(
        "       receiver got: {}",
        describe_reception(&net.world, receiver, sender_addr, group)
    );
    let r3: &PimRouter = net.world.node(NodeIdx(3));
    println!(
        "       sender's DR sent {} PIM Register(s) before the RP's (S,G) join arrived,",
        r3.engine().registers_sent
    );
    println!("       then switched to native forwarding.");
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group).expect("state");
    let sg = gs
        .sources
        .get(&sender_addr)
        .expect("(S,G) at the receiver DR");
    println!(
        "       receiver's DR switched to the SPT: (S,G) SPT-bit={} via iif={:?} (the r0-r4 shortcut),",
        sg.spt_bit, sg.iif
    );
    println!(
        "       and pruned the source off the shared tree (pruned_from_shared={}).",
        sg.pruned_from_shared
    );

    let host: &igmp::HostNode = net.world.node(receiver);
    let first = host.received.iter().find(|r| r.seq == 0).expect("seq 0");
    let last = host.received.iter().find(|r| r.seq == 19).expect("seq 19");
    println!();
    println!(
        "       latency: first packet {}t (via RP tree), last packet {}t (via SPT).",
        first.at.ticks() - 200,
        last.at.ticks() - (200 + 19 * 25),
    );
    println!("Done — §3.1, §3.2, §3 register path, and §3.3 switchover, end to end.");
}
