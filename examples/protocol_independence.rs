//! **Protocol independence** (§2): the same PIM scenario over three
//! different unicast routing substrates — distance-vector, link-state,
//! and the precomputed oracle — producing the same distribution tree.
//!
//! "The protocol should rely on existing unicast routing functionality
//! ... but at the same time be independent of the particular protocol
//! employed."
//!
//! Run: `cargo run -p examples --example protocol_independence`

use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, IfaceId, NodeIdx, SimTime, Topology};
use pim::{Engine, PimConfig, PimRouter};
use unicast::dv::{DvConfig, DvEngine};
use unicast::ls::{LsConfig, LsEngine};
use unicast::OracleRib;
use wire::Group;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Substrate {
    Oracle,
    DistanceVector,
    LinkState,
}

/// Run the quickstart diamond over the given unicast substrate; return
/// (packets delivered, (*,G) iif at the receiver DR, (S,G) iif at the
/// receiver DR).
fn run(sub: Substrate) -> (usize, Option<IfaceId>, Option<IfaceId>) {
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    g.add_edge(NodeId(0), NodeId(3), 2);
    let topo = Topology::from_graph(&g);
    let group = Group::test(1);
    let rp = router_addr(NodeId(2));
    let r_addr = host_addr(NodeId(0), 0);
    let s_addr = host_addr(NodeId(3), 0);

    let mut oracle = OracleRib::for_all(&g, &topo);
    for (i, rib) in oracle.iter_mut().enumerate() {
        if i != 0 {
            rib.alias_host(r_addr, router_addr(NodeId(0)));
        }
        if i != 3 {
            rib.alias_host(s_addr, router_addr(NodeId(3)));
        }
    }
    let mut oracle_iter = oracle.into_iter();

    let (mut world, _) = topo.build_world(&g, 5, |plan| {
        let unicast: Box<dyn unicast::Engine> = match sub {
            Substrate::Oracle => Box::new(oracle_iter.next().expect("rib")),
            Substrate::DistanceVector => {
                let _ = oracle_iter.next();
                Box::new(DvEngine::new(plan, DvConfig::default()))
            }
            Substrate::LinkState => {
                let _ = oracle_iter.next();
                Box::new(LsEngine::new(plan, LsConfig::default()))
            }
        };
        let mut r = PimRouter::new(
            Engine::new(plan.addr, plan.ifaces.len(), PimConfig::default()),
            unicast,
        );
        r.engine_mut().set_rp_mapping(group, vec![rp]);
        Box::new(r)
    });

    let rh = world.add_node(Box::new(HostNode::new(r_addr)));
    let (_l, ifs) = world.add_lan(&[NodeIdx(0), rh], Duration(1));
    world
        .node_mut::<PimRouter>(NodeIdx(0))
        .attach_host_lan(ifs[0], &[r_addr]);
    let sh = world.add_node(Box::new(HostNode::new(s_addr)));
    let (_l, ifs) = world.add_lan(&[NodeIdx(3), sh], Duration(1));
    world
        .node_mut::<PimRouter>(NodeIdx(3))
        .attach_host_lan(ifs[0], &[s_addr]);

    // Real routing protocols need convergence time before the join.
    world.at(SimTime(400), move |w| {
        w.call_node(rh, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group);
        });
    });
    for k in 0..20u64 {
        world.at(SimTime(800 + k * 25), move |w| {
            w.call_node(sh, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group);
            });
        });
    }
    world.run_until(SimTime(2200));

    let host: &HostNode = world.node(rh);
    let got = host.seqs_from(s_addr, group).len();
    let r0: &PimRouter = world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group).expect("state at DR");
    (
        got,
        gs.star.as_ref().and_then(|s| s.iif),
        gs.sources.get(&s_addr).and_then(|e| e.iif),
    )
}

fn main() {
    println!("== Protocol independence (paper §2) ==");
    println!("The identical PIM scenario over three unicast routing substrates:");
    println!();
    let mut results = Vec::new();
    for sub in [
        Substrate::Oracle,
        Substrate::DistanceVector,
        Substrate::LinkState,
    ] {
        let (got, star_iif, spt_iif) = run(sub);
        println!(
            "  {:<16} delivered {:>2}/20   (*,G) iif = {:?}   (S,G) iif = {:?}",
            format!("{sub:?}:"),
            got,
            star_iif,
            spt_iif
        );
        results.push((got, star_iif, spt_iif));
    }
    println!();
    assert!(
        results.iter().all(|&(got, _, _)| got == 20),
        "all substrates must deliver all packets"
    );
    assert!(
        results
            .windows(2)
            .all(|w| w[0].1 == w[1].1 && w[0].2 == w[1].2),
        "identical trees regardless of unicast protocol"
    );
    println!("Identical trees, identical delivery. PIM consumed the routing table through");
    println!("the Rib trait alone — \"independent of how those tables are computed\" (§2).");
}
