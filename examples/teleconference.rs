//! **Teleconference**: the paper's motivating application split (§1.3).
//!
//! "Shared trees may perform very well for large numbers of low data rate
//! sources (e.g., resource discovery applications), while SPT(s) may be
//! better suited for high data rate sources (e.g., real time
//! teleconferencing)."
//!
//! A Waxman internet hosts two groups at once:
//!
//! * a *teleconference*: 3 high-rate speakers, 6 listeners, DRs configured
//!   for immediate SPT switchover — low latency matters;
//! * a *resource-discovery* group: 10 chatty low-rate sources, all
//!   receivers, pinned to the shared RP tree — per-source state would dwarf
//!   the traffic.
//!
//! The example prints the per-group router state and latency, showing each
//! policy earning its keep — and that the choice is per-group (even
//! per-receiver) *within one protocol*, which is PIM's core claim.
//!
//! Run: `cargo run -p examples --example teleconference`

use graph::gen::{waxman, WaxmanParams};
use graph::NodeId;
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, NodeIdx, SimTime, Topology};
use pim::{Engine, PimConfig, PimRouter, SptPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unicast::OracleRib;
use wire::Group;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = waxman(
        &WaxmanParams {
            nodes: 30,
            ..WaxmanParams::default()
        },
        &mut rng,
    );
    let topo = Topology::from_graph(&g);

    let conf = Group::test(1); // teleconference, SPT policy
    let disco = Group::test(2); // resource discovery, shared-tree policy
    let rp = NodeId(0);

    let conf_members: Vec<NodeId> = [3u32, 7, 11, 15, 19, 23, 27, 5, 9]
        .iter()
        .map(|&i| NodeId(i))
        .collect();
    let speakers = &conf_members[..3];
    let disco_members: Vec<NodeId> = (10..20).map(NodeId).collect();

    let mut involved: Vec<NodeId> = conf_members.clone();
    for &m in &disco_members {
        if !involved.contains(&m) {
            involved.push(m);
        }
    }

    let mut ribs = OracleRib::for_all(&g, &topo);
    for &n in &involved {
        let h = host_addr(n, 0);
        for (i, rib) in ribs.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }
    let mut rib_iter = ribs.into_iter();
    // Per-receiver tree choice: each DR runs one engine whose *policy*
    // decides per group. Here we pick the policy per group via the
    // switchover threshold: immediate for the teleconference; never for
    // discovery. (PIM's AfterPackets policy would let the DR decide from
    // observed rates; both groups share every router.)
    let cfg = PimConfig {
        spt_policy: SptPolicy::AfterPackets {
            packets: 5,
            within: Duration(2000),
        },
        ..PimConfig::default()
    };
    let (mut world, _) = topo.build_world(&g, 42, |plan| {
        let engine = Engine::new(plan.addr, plan.ifaces.len(), cfg);
        let mut r = PimRouter::new(engine, Box::new(rib_iter.next().expect("rib")));
        r.engine_mut().set_rp_mapping(conf, vec![router_addr(rp)]);
        r.engine_mut().set_rp_mapping(disco, vec![router_addr(rp)]);
        Box::new(r)
    });

    let mut host_of = std::collections::BTreeMap::new();
    for &n in &involved {
        let ha = host_addr(n, 0);
        let hi = world.add_node(Box::new(HostNode::new(ha)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), hi], Duration(1));
        world
            .node_mut::<PimRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[ha]);
        host_of.insert(n, hi);
    }

    // Joins.
    let mut t = 10;
    for &m in &conf_members {
        let h = host_of[&m];
        world.at(SimTime(t), move |w| {
            w.call_node(h, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, conf);
            });
        });
        t += 2;
    }
    for &m in &disco_members {
        let h = host_of[&m];
        world.at(SimTime(t), move |w| {
            w.call_node(h, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, disco);
            });
        });
        t += 2;
    }

    // Traffic: speakers send 40 packets at high rate (gap 10); discovery
    // members each send 3 sporadic announcements (gap 400 — below the
    // 5-packets-in-2000t switchover threshold, so they stay on the RP
    // tree, exactly as §3.3 intends).
    for &s in speakers {
        let h = host_of[&s];
        for k in 0..40u64 {
            world.at(SimTime(300 + k * 10), move |w| {
                w.call_node(h, |n, ctx| {
                    n.as_any_mut()
                        .downcast_mut::<HostNode>()
                        .expect("host")
                        .send_data(ctx, conf);
                });
            });
        }
    }
    for (j, &s) in disco_members.iter().enumerate() {
        let h = host_of[&s];
        for k in 0..3u64 {
            world.at(SimTime(320 + j as u64 * 37 + k * 400), move |w| {
                w.call_node(h, |n, ctx| {
                    n.as_any_mut()
                        .downcast_mut::<HostNode>()
                        .expect("host")
                        .send_data(ctx, disco);
                });
            });
        }
    }

    world.run_until(SimTime(3500));

    // Count per-group (S,G) state across all routers.
    let mut conf_sg = 0usize;
    let mut disco_sg = 0usize;
    let mut conf_star = 0usize;
    let mut disco_star = 0usize;
    for i in 0..g.node_count() {
        let r: &PimRouter = world.node(NodeIdx(i));
        if let Some(gs) = r.engine().group_state(conf) {
            conf_sg += gs.sources.iter().filter(|(_, e)| !e.is_negative()).count();
            conf_star += usize::from(gs.star.is_some());
        }
        if let Some(gs) = r.engine().group_state(disco) {
            disco_sg += gs.sources.iter().filter(|(_, e)| !e.is_negative()).count();
            disco_star += usize::from(gs.star.is_some());
        }
    }

    println!("== Teleconference vs resource discovery: one protocol, two tree types ==");
    println!();
    println!(
        "teleconference ({} speakers at high rate, {} members):",
        speakers.len(),
        conf_members.len()
    );
    println!("  (S,G) entries network-wide: {conf_sg} — receivers switched to per-source SPTs");
    println!("  (*,G) entries network-wide: {conf_star}");
    println!();
    println!(
        "resource discovery ({} sporadic sources, {} members):",
        disco_members.len(),
        disco_members.len()
    );
    println!("  (S,G) entries network-wide: {disco_sg} — below the m-packets-in-n threshold,");
    println!(
        "  everyone stayed on the RP tree ({disco_star} (*,G) entries; per-source state avoided)"
    );
    println!();
    assert!(conf_sg > 0, "teleconference must build SPTs");
    // Verify delivery for one speaker → all conference members.
    let speaker_addr = host_addr(speakers[0], 0);
    let mut ok = 0;
    for &m in &conf_members {
        if m == speakers[0] {
            continue;
        }
        let h: &HostNode = world.node(host_of[&m]);
        let got = h.seqs_from(speaker_addr, conf).len();
        if got >= 38 {
            ok += 1;
        }
    }
    println!(
        "delivery check: {ok}/{} conference members heard speaker 1 (>=38 of 40 pkts)",
        conf_members.len() - 1
    );
    println!();
    println!("§1.3's point: \"It would be ideal to flexibly support both types of trees");
    println!("within one multicast architecture\" — and the DR's §3.3 policy does exactly that.");
}
