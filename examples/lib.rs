//! Shared setup helpers for the example binaries: a small PIM internet
//! with hosts, built from any [`graph::Graph`].
//!
//! Each example is a runnable scenario narrated to stdout; run them with
//! `cargo run -p examples --example <name>`. Start with `quickstart`.

use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, NodeIdx, SimTime, Topology, World};
use pim::{Engine, PimConfig, PimRouter};
use unicast::dv::{DvConfig, DvEngine};
use unicast::OracleRib;
use wire::{Addr, Group};

/// A built example network: the world plus handles to its hosts.
pub struct ExampleNet {
    /// The simulation world.
    pub world: World,
    /// Host node index and address per router that got a host
    /// (`hosts[i] = (host node, host addr)` for the i-th entry of
    /// `host_routers` passed to [`build_pim_net`]).
    pub hosts: Vec<(NodeIdx, Addr)>,
}

/// Build a PIM internet over `g` with oracle unicast routing, an RP at
/// `rp`, the group mapped on every router, and one host attached to each
/// router in `host_routers`.
pub fn build_pim_net(
    g: &Graph,
    group: Group,
    rps: &[NodeId],
    host_routers: &[NodeId],
    cfg: PimConfig,
    seed: u64,
) -> ExampleNet {
    let topo = Topology::from_graph(g);
    let rp_addrs: Vec<Addr> = rps.iter().map(|&n| router_addr(n)).collect();

    let mut ribs = OracleRib::for_all(g, &topo);
    for &n in host_routers {
        let h = host_addr(n, 0);
        for (i, rib) in ribs.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }
    let mut rib_iter = ribs.into_iter();
    let (mut world, _links) = topo.build_world(g, seed, |plan| {
        let engine = Engine::new(plan.addr, plan.ifaces.len(), cfg);
        let mut router =
            PimRouter::new(engine, Box::new(rib_iter.next().expect("one rib per plan")));
        router.engine_mut().set_rp_mapping(group, rp_addrs.clone());
        Box::new(router)
    });

    let mut hosts = Vec::new();
    for &n in host_routers {
        let h_addr = host_addr(n, 0);
        let h_idx = world.add_node(Box::new(HostNode::new(h_addr)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), h_idx], Duration(1));
        world
            .node_mut::<PimRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[h_addr]);
        hosts.push((h_idx, h_addr));
    }
    ExampleNet { world, hosts }
}

/// Like [`build_pim_net`], but every router runs the live distance-vector
/// unicast engine instead of the static oracle — so the network adapts to
/// link failures (unicast reconvergence drives PIM's §3.8 repair).
/// Allow a few hundred ticks of convergence before joining groups.
pub fn build_pim_net_dv(
    g: &Graph,
    group: Group,
    rps: &[NodeId],
    host_routers: &[NodeId],
    cfg: PimConfig,
    seed: u64,
) -> ExampleNet {
    let topo = Topology::from_graph(g);
    let rp_addrs: Vec<Addr> = rps.iter().map(|&n| router_addr(n)).collect();
    let (mut world, _links) = topo.build_world(g, seed, |plan| {
        let engine = Engine::new(plan.addr, plan.ifaces.len(), cfg);
        let dv = DvEngine::new(plan, DvConfig::default());
        let mut router = PimRouter::new(engine, Box::new(dv));
        router.engine_mut().set_rp_mapping(group, rp_addrs.clone());
        Box::new(router)
    });
    let mut hosts = Vec::new();
    for &n in host_routers {
        let h_addr = host_addr(n, 0);
        let h_idx = world.add_node(Box::new(HostNode::new(h_addr)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), h_idx], Duration(1));
        world
            .node_mut::<PimRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[h_addr]);
        hosts.push((h_idx, h_addr));
    }
    ExampleNet { world, hosts }
}

/// Schedule `host` to join `group` at `at`.
pub fn join_at(world: &mut World, host: NodeIdx, group: Group, at: u64) {
    world.at(SimTime(at), move |w| {
        w.call_node(host, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host node")
                .join(ctx, group);
        });
    });
}

/// Schedule `host` to send `count` packets to `group`, `gap` ticks apart,
/// starting at `start`.
pub fn send_at(world: &mut World, host: NodeIdx, group: Group, start: u64, count: u64, gap: u64) {
    for k in 0..count {
        world.at(SimTime(start + k * gap), move |w| {
            w.call_node(host, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host node")
                    .send_data(ctx, group);
            });
        });
    }
}

/// Summarize what `host` received from `source` on `group`.
pub fn describe_reception(world: &World, host: NodeIdx, source: Addr, group: Group) -> String {
    let h: &HostNode = world.node(host);
    let seqs = h.seqs_from(source, group);
    if seqs.is_empty() {
        return "nothing".to_string();
    }
    format!(
        "{} packets (seq {}..={}){}",
        seqs.len(),
        seqs.iter().min().expect("nonempty"),
        seqs.iter().max().expect("nonempty"),
        if seqs.windows(2).all(|w| w[1] == w[0] + 1) {
            ", in order, no gaps"
        } else {
            ""
        }
    )
}
