//! **Multi-access LAN workgroup** (§3.7): two routers share a transit LAN
//! with distinct receivers behind each. The example shows:
//!
//! * DR election via PIM Query (highest address wins, so only one router
//!   serves the member LAN);
//! * join suppression — both downstream routers want the same (\*,G) from
//!   the same upstream over the LAN, but only one periodic join flows;
//! * prune override — when one downstream router's members leave and it
//!   prunes, the other router immediately overrides with a join and
//!   delivery continues unbroken.
//!
//! Run: `cargo run -p examples --example lan_workgroup`

use graph::NodeId;
use igmp::HostNode;
use netsim::IfaceId;
use netsim::{host_addr, router_addr, Duration, SimTime, World};
use pim::{Engine, PimConfig, PimRouter};
use unicast::{OracleRib, RouteEntry};
use wire::{Addr, Group};

fn main() {
    // Hand-built world (the LAN needs multi-access semantics):
    //
    //   sender -- [r_src] --p2p-- [r_up] ==LAN== [r_a], [r_b]
    //                                             |       |
    //                                          hostA    hostB
    //
    // r_up is also the RP. r_b has the higher address.
    let group = Group::test(1);
    let a_src = router_addr(NodeId(0));
    let a_up = router_addr(NodeId(1));
    let a_a = router_addr(NodeId(2));
    let a_b = router_addr(NodeId(3));
    let h_src = host_addr(NodeId(0), 0);
    let h_a = host_addr(NodeId(2), 0);
    let h_b = host_addr(NodeId(3), 0);

    let mut world = World::new(11);

    // Build oracle ribs by hand. Interface plan per router:
    //   r_src: if0 = p2p to r_up, if1 = host LAN           (added later)
    //   r_up:  if0 = p2p to r_src, if1 = transit LAN
    //   r_a:   if0 = transit LAN, if1 = member LAN (later)
    //   r_b:   if0 = transit LAN, if1 = member LAN (later)
    let rib = |me: Addr, routes: &[(Addr, u32, Addr)]| {
        let mut r = OracleRib::empty(me);
        for &(dst, iface, nh) in routes {
            r.insert(
                dst,
                RouteEntry {
                    iface: IfaceId(iface),
                    next_hop: nh,
                    metric: 1,
                },
            );
        }
        r
    };
    let rib_src = rib(
        a_src,
        &[
            (a_up, 0, a_up),
            (a_a, 0, a_up),
            (a_b, 0, a_up),
            (h_a, 0, a_up),
            (h_b, 0, a_up),
        ],
    );
    let rib_up = rib(
        a_up,
        &[
            (a_src, 0, a_src),
            (h_src, 0, a_src),
            (a_a, 1, a_a),
            (a_b, 1, a_b),
            (h_a, 1, a_a),
            (h_b, 1, a_b),
        ],
    );
    let rib_a = rib(
        a_a,
        &[
            (a_up, 0, a_up),
            (a_src, 0, a_up),
            (h_src, 0, a_up),
            (a_b, 0, a_b),
            (h_b, 0, a_b),
        ],
    );
    let rib_b = rib(
        a_b,
        &[
            (a_up, 0, a_up),
            (a_src, 0, a_up),
            (h_src, 0, a_up),
            (a_a, 0, a_a),
            (h_a, 0, a_a),
        ],
    );

    let mk = |addr: Addr, ifaces: usize, r: OracleRib| {
        let mut router =
            PimRouter::new(Engine::new(addr, ifaces, PimConfig::default()), Box::new(r));
        router.engine_mut().set_rp_mapping(group, vec![a_up]);
        router
    };
    let r_src = world.add_node(Box::new(mk(a_src, 1, rib_src)));
    let r_up = world.add_node(Box::new(mk(a_up, 2, rib_up)));
    let r_a = world.add_node(Box::new(mk(a_a, 1, rib_a)));
    let r_b = world.add_node(Box::new(mk(a_b, 1, rib_b)));

    world.add_p2p(r_src, r_up, Duration(1));
    // The multi-access transit LAN.
    let (_lan, lan_ifs) = world.add_lan(&[r_up, r_a, r_b], Duration(1));
    // Mark LAN semantics on every attached router (prune override etc.).
    world
        .node_mut::<PimRouter>(r_up)
        .engine_mut()
        .set_lan(lan_ifs[0]);
    world
        .node_mut::<PimRouter>(r_a)
        .engine_mut()
        .set_lan(lan_ifs[1]);
    world
        .node_mut::<PimRouter>(r_b)
        .engine_mut()
        .set_lan(lan_ifs[2]);

    // Host LANs.
    let sender = world.add_node(Box::new(HostNode::new(h_src)));
    let (_l, ifs) = world.add_lan(&[r_src, sender], Duration(1));
    world
        .node_mut::<PimRouter>(r_src)
        .attach_host_lan(ifs[0], &[h_src]);
    let host_a = world.add_node(Box::new(HostNode::new(h_a)));
    let (_l, ifs) = world.add_lan(&[r_a, host_a], Duration(1));
    world
        .node_mut::<PimRouter>(r_a)
        .attach_host_lan(ifs[0], &[h_a]);
    let host_b = world.add_node(Box::new(HostNode::new(h_b)));
    let (_l, ifs) = world.add_lan(&[r_b, host_b], Duration(1));
    world
        .node_mut::<PimRouter>(r_b)
        .attach_host_lan(ifs[0], &[h_b]);

    println!("== Multi-access LAN behaviors (paper §3.7) ==");
    println!("sender-[r_src]-[r_up=RP]==LAN==[r_a(hostA), r_b(hostB)]");
    println!();

    // Both hosts join; sender streams throughout.
    for (h, t) in [(host_a, 10u64), (host_b, 14)] {
        world.at(SimTime(t), move |w| {
            w.call_node(h, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, group);
            });
        });
    }
    for k in 0..80u64 {
        world.at(SimTime(100 + k * 25), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group);
            });
        });
    }

    world.run_until(SimTime(600));
    {
        let up: &PimRouter = world.node(r_up);
        let star = up
            .engine()
            .group_state(group)
            .and_then(|g| g.star.as_ref())
            .expect("(*,G) at the upstream");
        println!(
            "t=600   r_up's (*,G) oifs: {:?} — ONE oif covers the whole LAN, however",
            star.oifs.keys().collect::<Vec<_>>()
        );
        println!("        many routers joined through it.");
        let ra: &PimRouter = world.node(r_a);
        let rb: &PimRouter = world.node(r_b);
        println!("        DR election on the transit LAN: r_a is DR? {}  r_b is DR? {} (higher addr wins)",
            ra.engine().is_dr(IfaceId(0)), rb.engine().is_dr(IfaceId(0)));
    }

    // Host A leaves at t=700 (silently; its membership expires ~t=1000),
    // causing r_a to prune (*,G) on the LAN. r_b must override.
    world.at(SimTime(700), move |w| {
        w.node_mut::<HostNode>(host_a).leave(group);
    });
    println!();
    println!("t=700   hostA leaves (IGMPv1: silently). r_a's membership timer will lapse,");
    println!("        r_a will prune (*,G) onto the LAN — and r_b must override the prune.");

    world.run_until(SimTime(2100));
    let hb: &HostNode = world.node(host_b);
    let seqs = hb.seqs_from(h_src, group);
    println!();
    println!(
        "t=2100  hostB received {}/80 packets — no gap despite r_a's prune:",
        seqs.len()
    );
    let contiguous = seqs.windows(2).all(|w| w[1] == w[0] + 1);
    println!("        contiguous: {contiguous} (the §3.7 join-override protected the flow).");
    assert!(
        seqs.len() >= 79,
        "hostB must not lose packets to r_a's prune"
    );
    let ha: &HostNode = world.node(host_a);
    let a_count = ha.seqs_from(h_src, group).len();
    println!("        hostA stopped receiving after its leave (got {a_count}/80).");
    assert!(a_count < 80, "hostA left mid-stream");
}
