//! The aggregate-population contract: for small N, a [`PopulationNode`]
//! is indistinguishable from N explicit [`HostNode`]s as far as the
//! *router* on the LAN can tell, modulo host-local detail.
//!
//! Two worlds are built around the same scripted membership lifecycle —
//! staggered joins, a data burst, a mass leave — one with N explicit
//! hosts, one with a single population holding count N. The router-side
//! observables compared:
//!
//! * the membership lifecycle (`MemberJoined` at identical ticks, no
//!   spurious expiry while members exist, one expiry after the leave with
//!   latencies within the IGMP response-time jitter of each other);
//! * report traffic (the aggregate answers each query with *exactly one*
//!   report, per the sampling argument; explicit hosts emit at least one
//!   and at most N, so the aggregate never exceeds the explicit world);
//! * delivery counts (member-weighted receptions equal to N × packets in
//!   both worlds, exactly).
//!
//! Report *timing* inside the response window is where the two worlds
//! legitimately differ (different RNG draw sequences; explicit stragglers
//! can slip a second report before suppression arrives) — that is the
//! "host-local detail" the equivalence is modulo of.

use igmp::{Config, HostNode, PopulationNode, Querier, QuerierOutput};
use netsim::{Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use proptest::prelude::*;
use std::any::Any;
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

const JOIN_BASE: u64 = 10;
const JOIN_GAP: u64 = 7;
const SEND_BASE: u64 = 320;
const SEND_GAP: u64 = 5;
const LEAVE_AT: u64 = 600;
const END_AT: u64 = 1100;

/// A minimal router: one LAN interface running an IGMP [`Querier`],
/// logging what the membership protocol shows it. Ticks its querier every
/// simulated tick so periodic queries and expiry sweeps land on exact
/// deadlines in both worlds.
struct QuerierRouter {
    addr: Addr,
    querier: Querier,
    joined: Vec<(u64, Group)>,
    expired: Vec<(u64, Group)>,
    reports_heard: u64,
    queries_sent: u64,
}

impl QuerierRouter {
    fn new(addr: Addr) -> QuerierRouter {
        QuerierRouter {
            addr,
            querier: Querier::new(addr, Config::default()),
            joined: Vec::new(),
            expired: Vec::new(),
            reports_heard: 0,
            queries_sent: 0,
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, outs: Vec<QuerierOutput>) {
        let now = ctx.now();
        for o in outs {
            match o {
                QuerierOutput::Send { dst, msg } => {
                    if matches!(msg, Message::HostQuery(_)) {
                        self.queries_sent += 1;
                    }
                    let header = Header {
                        proto: Protocol::Igmp,
                        ttl: 1,
                        src: self.addr,
                        dst,
                    };
                    ctx.send(IfaceId(0), header.encap(&msg.encode()));
                }
                QuerierOutput::MemberJoined(g) => self.joined.push((now.ticks(), g)),
                QuerierOutput::MemberExpired(g) => self.expired.push((now.ticks(), g)),
                QuerierOutput::RpMappingLearned(..) => {}
            }
        }
    }
}

impl Node for QuerierRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration(1), 0);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, packet: &[u8]) {
        let Ok((header, payload)) = Header::decap(packet) else {
            return;
        };
        if header.proto != Protocol::Igmp {
            return;
        }
        let Ok(msg) = Message::decode(payload) else {
            return;
        };
        if matches!(msg, Message::HostReport(_)) {
            self.reports_heard += 1;
        }
        let now = ctx.now();
        let outs = self.querier.on_message(now, header.src, &msg);
        self.handle(ctx, outs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        let outs = self.querier.tick(now);
        self.handle(ctx, outs);
        ctx.set_timer(Duration(1), 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Router-observable outcome of one world.
#[derive(Debug)]
struct Observed {
    joined: Vec<(u64, Group)>,
    expired: Vec<(u64, Group)>,
    reports_heard: u64,
    queries_sent: u64,
    member_receptions: u64,
}

fn router_addr() -> Addr {
    Addr::new(10, 0, 0, 1)
}

fn sender_addr() -> Addr {
    Addr::new(10, 0, 0, 200)
}

/// Shared script: the sender transmits `packets` data packets after every
/// member has joined, and the whole membership leaves at `LEAVE_AT`.
fn schedule_sends(world: &mut World, sender: NodeIdx, group: Group, packets: u64) {
    for k in 0..packets {
        world.at(SimTime(SEND_BASE + k * SEND_GAP), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("sender host")
                    .send_data(ctx, group);
            });
        });
    }
}

fn run_explicit(seed: u64, n: u64, group: Group, packets: u64) -> Observed {
    let mut world = World::new(seed);
    let router = world.add_node(Box::new(QuerierRouter::new(router_addr())));
    let hosts: Vec<NodeIdx> = (0..n)
        .map(|i| world.add_node(Box::new(HostNode::new(Addr::new(10, 0, 0, 10 + i as u8)))))
        .collect();
    let sender = world.add_node(Box::new(HostNode::new(sender_addr())));
    let mut all = vec![router];
    all.extend(&hosts);
    all.push(sender);
    world.add_lan(&all, Duration(1));

    for (i, &h) in hosts.iter().enumerate() {
        world.at(SimTime(JOIN_BASE + JOIN_GAP * i as u64), move |w| {
            w.call_node(h, |node, ctx| {
                node.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("member host")
                    .join(ctx, group);
            });
        });
    }
    schedule_sends(&mut world, sender, group, packets);
    let leave_hosts = hosts.clone();
    world.at(SimTime(LEAVE_AT), move |w| {
        for &h in &leave_hosts {
            w.call_node(h, |node, _ctx| {
                node.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("member host")
                    .leave(group);
            });
        }
    });
    world.run_until(SimTime(END_AT));

    let member_receptions = hosts
        .iter()
        .map(|&h| world.node::<HostNode>(h).received.len() as u64)
        .sum();
    let r: &QuerierRouter = world.node(router);
    Observed {
        joined: r.joined.clone(),
        expired: r.expired.clone(),
        reports_heard: r.reports_heard,
        queries_sent: r.queries_sent,
        member_receptions,
    }
}

fn run_aggregate(seed: u64, n: u64, group: Group, packets: u64) -> Observed {
    let mut world = World::new(seed);
    let router = world.add_node(Box::new(QuerierRouter::new(router_addr())));
    let pop = world.add_node(Box::new(PopulationNode::new(Addr::new(10, 0, 0, 10))));
    let sender = world.add_node(Box::new(HostNode::new(sender_addr())));
    world.add_lan(&[router, pop, sender], Duration(1));

    // Same join instants as the explicit world, one member at a time, so
    // the unsolicited-report refreshes line up tick for tick.
    for i in 0..n {
        world.at(SimTime(JOIN_BASE + JOIN_GAP * i), move |w| {
            w.call_node(pop, |node, ctx| {
                node.as_any_mut()
                    .downcast_mut::<PopulationNode>()
                    .expect("population")
                    .join_members(ctx, group, 1);
            });
        });
    }
    schedule_sends(&mut world, sender, group, packets);
    world.at(SimTime(LEAVE_AT), move |w| {
        w.call_node(pop, |node, _ctx| {
            node.as_any_mut()
                .downcast_mut::<PopulationNode>()
                .expect("population")
                .leave_members(group, n);
        });
    });
    world.run_until(SimTime(END_AT));

    let member_receptions = world.node::<PopulationNode>(pop).member_receptions();
    let r: &QuerierRouter = world.node(router);
    Observed {
        joined: r.joined.clone(),
        expired: r.expired.clone(),
        reports_heard: r.reports_heard,
        queries_sent: r.queries_sent,
        member_receptions,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aggregate_matches_explicit(
        seed in any::<u64>(),
        n in 1u64..7,
        packets in 1u64..12,
    ) {
        let group = Group::test(1);
        let explicit = run_explicit(seed, n, group, packets);
        let aggregate = run_aggregate(seed.wrapping_add(1), n, group, packets);

        // Periodic queries are deterministic and member-independent.
        prop_assert_eq!(explicit.queries_sent, aggregate.queries_sent);

        // Membership appears at the same instant in both worlds: the
        // first unsolicited report creates it, later joins only refresh.
        prop_assert_eq!(&explicit.joined, &aggregate.joined);
        prop_assert_eq!(explicit.joined.len(), 1);
        prop_assert_eq!(explicit.joined[0].1, group);

        // No spurious expiry while members exist, one real expiry after
        // the leave, and the leave latencies match within the response
        // window (report timing inside it is the host-local detail).
        prop_assert_eq!(explicit.expired.len(), 1);
        prop_assert_eq!(aggregate.expired.len(), 1);
        let (te, ge) = explicit.expired[0];
        let (ta, ga) = aggregate.expired[0];
        prop_assert_eq!(ge, group);
        prop_assert_eq!(ga, group);
        prop_assert!(te > LEAVE_AT && ta > LEAVE_AT);
        let max_resp = Config::default().max_resp_time.ticks();
        prop_assert!(
            te.abs_diff(ta) <= max_resp + 2,
            "leave latency diverged: explicit {te} vs aggregate {ta}"
        );

        // Suppression: the aggregate answers each query with exactly one
        // report, so it can never out-chatter the explicit hosts; with a
        // single member the two worlds emit identical report counts.
        prop_assert!(aggregate.reports_heard <= explicit.reports_heard);
        if n == 1 {
            prop_assert_eq!(aggregate.reports_heard, explicit.reports_heard);
        }

        // Delivery: every member receives every packet, exactly, in both
        // accountings (per-host logs vs member-weighted count).
        prop_assert_eq!(explicit.member_receptions, n * packets);
        prop_assert_eq!(aggregate.member_receptions, n * packets);
    }
}
