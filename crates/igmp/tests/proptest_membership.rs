//! Property tests for the membership protocol: hosts and queriers fed
//! arbitrary event sequences never panic, and membership state stays
//! coherent (a querier's member set reflects reports within the timeout,
//! a host's pending reports never outlive membership).

use igmp::{Config, Host, Querier, QuerierOutput};
use netsim::SimTime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wire::igmp::{HostQuery, HostReport};
use wire::{Addr, Group, Message};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Host state machine: joins/leaves/queries/foreign-reports in any
    /// order leave membership exactly equal to the join/leave ledger, and
    /// ticks only emit reports for current members.
    #[test]
    fn host_membership_coherent(
        ops in prop::collection::vec((0u8..4, 0u32..5, 0u64..50), 1..60),
        seed in any::<u64>(),
    ) {
        let mut host = Host::new(Config::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ledger = std::collections::BTreeSet::new();
        let mut now = 0u64;
        for (op, gi, dt) in ops {
            now += dt;
            let g = Group::test(gi);
            match op {
                0 => {
                    host.join(g);
                    ledger.insert(g);
                }
                1 => {
                    host.leave(g);
                    ledger.remove(&g);
                }
                2 => {
                    host.on_message(
                        SimTime(now),
                        &Message::HostQuery(HostQuery { max_resp_time: 10 }),
                        &mut rng,
                    );
                }
                _ => {
                    host.on_message(
                        SimTime(now),
                        &Message::HostReport(HostReport { group: g }),
                        &mut rng,
                    );
                }
            }
            for out in host.tick(SimTime(now + 11)) {
                let igmp::HostOutput::Send { msg, .. } = out;
                if let Message::HostReport(r) = msg {
                    prop_assert!(
                        ledger.contains(&r.group),
                        "report for a group the host is not in"
                    );
                }
            }
            prop_assert_eq!(host.groups().count(), ledger.len());
            for &g in &ledger {
                prop_assert!(host.is_member(g));
            }
        }
    }

    /// Querier: reports create members exactly once, expiry fires exactly
    /// once per lapsed group, and `has_member` matches the event history.
    #[test]
    fn querier_member_accounting(
        reports in prop::collection::vec((0u32..4, 0u64..100), 1..40),
    ) {
        let cfg = Config::default();
        let mut q = Querier::new(Addr::new(10, 0, 0, 1), cfg);
        let mut last_report = std::collections::BTreeMap::new();
        let mut now = 0u64;
        for (gi, dt) in reports {
            now += dt;
            let g = Group::test(gi);
            let outs = q.on_message(
                SimTime(now),
                Addr::new(10, 0, 0, 50),
                &Message::HostReport(HostReport { group: g }),
            );
            let was_member = last_report
                .get(&g)
                .is_some_and(|&t| now < t + cfg.membership_timeout.ticks());
            if was_member {
                prop_assert!(outs.is_empty(), "refresh must not re-announce");
            } else {
                prop_assert_eq!(outs, vec![QuerierOutput::MemberJoined(g)]);
            }
            last_report.insert(g, now);
            // Expire anything that lapsed before this report arrived.
            let expired = q.tick(SimTime(now));
            for e in expired {
                if let QuerierOutput::MemberExpired(g2) = e {
                    let t = last_report.get(&g2).copied().unwrap_or(0);
                    prop_assert!(
                        now >= t + cfg.membership_timeout.ticks(),
                        "premature expiry of {g2}"
                    );
                }
            }
        }
        // Far future: everything must lapse.
        q.tick(SimTime(now + 10 * cfg.membership_timeout.ticks()));
        prop_assert_eq!(q.groups().count(), 0);
    }
}
