//! The host group-membership protocol (IGMP, RFC 1112 flavor).
//!
//! "A group membership protocol is used for routers to learn the existence
//! of members on their directly attached subnetworks" (paper §1.1). This
//! crate provides both halves, as sans-IO state machines:
//!
//! * [`Host`] — joins/leaves groups, answers membership queries with
//!   randomized-delay reports, suppresses its report when another member of
//!   the same group answers first (classic IGMPv1 suppression), and can
//!   advertise G → RP(s) mappings to its local routers (the paper's
//!   proposed new host message, §3.1 footnote 9);
//! * [`Querier`] — one per router interface: participates in querier
//!   election (lowest address queries), sends periodic queries, tracks
//!   per-group membership with soft-state timers, and surfaces
//!   joined/expired/RP-mapping events to the multicast routing protocol
//!   above it.

#![warn(missing_docs)]

pub mod host;
pub mod population;

pub use host::{HostNode, Received};
pub use population::{Churn, PopulationNode};

use netsim::{Duration, SimTime};
use rand::Rng;
use std::collections::HashMap;
use wire::igmp::{HostQuery, HostReport, RpMapping};
use wire::{Addr, Group, Message};

/// Timing constants shared by hosts and queriers.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Interval between general queries sent by the elected querier.
    pub query_interval: Duration,
    /// Maximum randomized delay before a host answers a query.
    pub max_resp_time: Duration,
    /// How long a router keeps a group alive with no reports. Must exceed
    /// `query_interval + max_resp_time` (two missed queries by default).
    pub membership_timeout: Duration,
    /// If we hear no query from a lower-addressed router for this long,
    /// (re)assume the querier role.
    pub other_querier_timeout: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            query_interval: Duration(125),
            max_resp_time: Duration(10),
            membership_timeout: Duration(280),
            other_querier_timeout: Duration(300),
        }
    }
}

/// An action requested by a [`Host`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostOutput {
    /// Transmit `msg` with destination `dst` on the host's subnetwork.
    Send {
        /// Destination address (reports go *to the group itself* so other
        /// members can suppress; RP mappings go to all PIM routers).
        dst: Addr,
        /// The message.
        msg: Message,
    },
}

/// The host side of IGMP for one subnetwork attachment.
#[derive(Debug)]
pub struct Host {
    /// Joined groups → pending randomized report time, if a query is
    /// outstanding.
    joined: HashMap<Group, Option<SimTime>>,
    /// G → RPs mappings this host advertises (the paper's host RP-mapping
    /// message).
    rp_mappings: HashMap<Group, Vec<Addr>>,
}

impl Host {
    /// New host with no memberships. (Hosts take all their timing from
    /// the querier's messages; `_cfg` is accepted for symmetry.)
    pub fn new(_cfg: Config) -> Host {
        Host {
            joined: HashMap::new(),
            rp_mappings: HashMap::new(),
        }
    }

    /// The groups currently joined.
    pub fn groups(&self) -> impl Iterator<Item = Group> + '_ {
        self.joined.keys().copied()
    }

    /// Is this host currently a member of `g`?
    pub fn is_member(&self, g: Group) -> bool {
        self.joined.contains_key(&g)
    }

    /// Configure the RP set this host will advertise for `g` alongside its
    /// reports.
    pub fn set_rp_mapping(&mut self, g: Group, rps: Vec<Addr>) {
        self.rp_mappings.insert(g, rps);
    }

    /// Join `g`: sends an unsolicited report immediately (and the RP
    /// mapping, if configured).
    pub fn join(&mut self, g: Group) -> Vec<HostOutput> {
        self.joined.insert(g, None);
        let mut out = vec![HostOutput::Send {
            dst: g.addr(),
            msg: Message::HostReport(HostReport { group: g }),
        }];
        if let Some(rps) = self.rp_mappings.get(&g) {
            out.push(HostOutput::Send {
                dst: Addr::ALL_PIM_ROUTERS,
                msg: Message::RpMapping(RpMapping {
                    group: g,
                    rps: rps.clone(),
                }),
            });
        }
        out
    }

    /// Leave `g`. IGMPv1 leaves are silent: the router's membership timer
    /// expires on its own.
    pub fn leave(&mut self, g: Group) {
        self.joined.remove(&g);
    }

    /// A message arrived on the subnetwork.
    pub fn on_message(
        &mut self,
        now: SimTime,
        msg: &Message,
        rng: &mut impl Rng,
    ) -> Vec<HostOutput> {
        match msg {
            Message::HostQuery(HostQuery { max_resp_time }) => {
                let max = (*max_resp_time as u64).max(1);
                for pending in self.joined.values_mut() {
                    if pending.is_none() {
                        *pending = Some(now + Duration(rng.gen_range(0..max)));
                    }
                }
                Vec::new()
            }
            Message::HostReport(HostReport { group }) => {
                // Another member answered: suppress our own pending report.
                if let Some(pending) = self.joined.get_mut(group) {
                    *pending = None;
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// When the next pending report fires, if any. `None` means the host is
    /// fully idle: no timer needs to be armed until a query arrives.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.joined.values().filter_map(|p| *p).min()
    }

    /// Emit any reports whose randomized delay has elapsed. Call at least
    /// once per tick of the subnetwork's owner.
    pub fn tick(&mut self, now: SimTime) -> Vec<HostOutput> {
        let mut out = Vec::new();
        for (&g, pending) in self.joined.iter_mut() {
            if let Some(at) = *pending {
                if now >= at {
                    *pending = None;
                    out.push(HostOutput::Send {
                        dst: g.addr(),
                        msg: Message::HostReport(HostReport { group: g }),
                    });
                    if let Some(rps) = self.rp_mappings.get(&g) {
                        out.push(HostOutput::Send {
                            dst: Addr::ALL_PIM_ROUTERS,
                            msg: Message::RpMapping(RpMapping {
                                group: g,
                                rps: rps.clone(),
                            }),
                        });
                    }
                }
            }
        }
        out
    }
}

/// An event surfaced by a [`Querier`] to the multicast routing protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerierOutput {
    /// Transmit `msg` with destination `dst` on this interface's
    /// subnetwork.
    Send {
        /// Destination address.
        dst: Addr,
        /// The message.
        msg: Message,
    },
    /// A first report for `0` arrived: a member now exists on this
    /// subnetwork. PIM reacts per §3.1.
    MemberJoined(Group),
    /// The last member of `0` timed out (IGMPv1 silent leave).
    MemberExpired(Group),
    /// A host advertised the RPs for `0` (§3.1 footnote 9).
    RpMappingLearned(Group, Vec<Addr>),
}

/// The router side of IGMP for one interface.
#[derive(Debug)]
pub struct Querier {
    cfg: Config,
    my_addr: Addr,
    /// Are we the elected querier on this subnetwork?
    is_querier: bool,
    /// When the current other-querier claim lapses.
    other_querier_until: Option<SimTime>,
    next_query: SimTime,
    /// Live groups → membership expiry.
    members: HashMap<Group, SimTime>,
}

impl Querier {
    /// New querier state for an interface of the router at `my_addr`.
    /// Starts assuming the querier role until a lower address is heard.
    pub fn new(my_addr: Addr, cfg: Config) -> Querier {
        Querier {
            cfg,
            my_addr,
            is_querier: true,
            other_querier_until: None,
            next_query: SimTime::ZERO,
            members: HashMap::new(),
        }
    }

    /// Are we currently the elected querier?
    pub fn is_querier(&self) -> bool {
        self.is_querier
    }

    /// Groups with live local members.
    pub fn groups(&self) -> impl Iterator<Item = Group> + '_ {
        self.members.keys().copied()
    }

    /// Is there a live local member of `g`?
    pub fn has_member(&self, g: Group) -> bool {
        self.members.contains_key(&g)
    }

    /// A message arrived on this interface from `src`.
    pub fn on_message(&mut self, now: SimTime, src: Addr, msg: &Message) -> Vec<QuerierOutput> {
        match msg {
            Message::HostQuery(_) => {
                // Querier election: lowest address wins.
                if src < self.my_addr {
                    self.is_querier = false;
                    self.other_querier_until = Some(now + self.cfg.other_querier_timeout);
                }
                Vec::new()
            }
            Message::HostReport(HostReport { group }) => {
                let expiry = now + self.cfg.membership_timeout;
                // A lapsed entry that merely hasn't been swept by tick()
                // yet counts as a fresh join, so the routing protocol is
                // re-notified.
                let was_live = self
                    .members
                    .insert(*group, expiry)
                    .is_some_and(|old| now < old);
                if was_live {
                    Vec::new()
                } else {
                    vec![QuerierOutput::MemberJoined(*group)]
                }
            }
            Message::RpMapping(RpMapping { group, rps }) => {
                vec![QuerierOutput::RpMappingLearned(*group, rps.clone())]
            }
            _ => Vec::new(),
        }
    }

    /// When this querier next needs a `tick` call: the next scheduled query
    /// (or querier-role reclaim when standing down), or the earliest
    /// membership expiry.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let role = if self.is_querier {
            Some(self.next_query)
        } else {
            self.other_querier_until
        };
        netsim::earliest(role, self.members.values().copied().min())
    }

    /// Periodic maintenance: query on schedule (if querier), reclaim the
    /// querier role if the incumbent went silent, expire members.
    pub fn tick(&mut self, now: SimTime) -> Vec<QuerierOutput> {
        let mut out = Vec::new();
        if let Some(until) = self.other_querier_until {
            if now >= until {
                self.is_querier = true;
                self.other_querier_until = None;
            }
        }
        if self.is_querier && now >= self.next_query {
            out.push(QuerierOutput::Send {
                dst: Addr::ALL_HOSTS,
                msg: Message::HostQuery(HostQuery {
                    max_resp_time: self.cfg.max_resp_time.ticks().min(255) as u8,
                }),
            });
            self.next_query = now + self.cfg.query_interval;
        }
        let expired: Vec<Group> = self
            .members
            .iter()
            .filter(|(_, &at)| now >= at)
            .map(|(&g, _)| g)
            .collect();
        for g in expired {
            self.members.remove(&g);
            out.push(QuerierOutput::MemberExpired(g));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g(i: u32) -> Group {
        Group::test(i)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn join_sends_unsolicited_report() {
        let mut h = Host::new(Config::default());
        let out = h.join(g(1));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            HostOutput::Send { dst, msg: Message::HostReport(r) }
                if *dst == g(1).addr() && r.group == g(1)
        ));
        assert!(h.is_member(g(1)));
    }

    #[test]
    fn join_with_rp_mapping_advertises_it() {
        let mut h = Host::new(Config::default());
        let rp = Addr::new(10, 0, 0, 9);
        h.set_rp_mapping(g(1), vec![rp]);
        let out = h.join(g(1));
        assert_eq!(out.len(), 2);
        assert!(matches!(
            &out[1],
            HostOutput::Send { dst, msg: Message::RpMapping(m) }
                if *dst == Addr::ALL_PIM_ROUTERS && m.rps == vec![rp]
        ));
    }

    #[test]
    fn query_schedules_delayed_report() {
        let mut h = Host::new(Config::default());
        h.join(g(1));
        let mut r = rng();
        h.on_message(
            SimTime(100),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
            &mut r,
        );
        // The report fires somewhere within max_resp_time.
        let mut total = h.tick(SimTime(100));
        total.extend(h.tick(SimTime(110)));
        assert!(
            total.iter().any(|o| matches!(
                o,
                HostOutput::Send { msg: Message::HostReport(r), .. } if r.group == g(1)
            )),
            "report must fire within max response time"
        );
    }

    #[test]
    fn anothers_report_suppresses_ours() {
        let mut h = Host::new(Config::default());
        h.join(g(1));
        let mut r = rng();
        h.on_message(
            SimTime(100),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
            &mut r,
        );
        h.on_message(
            SimTime(101),
            &Message::HostReport(HostReport { group: g(1) }),
            &mut r,
        );
        assert!(h.tick(SimTime(200)).is_empty(), "report must be suppressed");
    }

    #[test]
    fn leave_is_silent() {
        let mut h = Host::new(Config::default());
        h.join(g(1));
        h.leave(g(1));
        assert!(!h.is_member(g(1)));
        let mut r = rng();
        h.on_message(
            SimTime(100),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
            &mut r,
        );
        assert!(h.tick(SimTime(200)).is_empty());
    }

    #[test]
    fn querier_emits_periodic_queries() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 1), Config::default());
        let out = q.tick(SimTime(0));
        assert!(matches!(
            &out[0],
            QuerierOutput::Send { dst, msg: Message::HostQuery(_) } if *dst == Addr::ALL_HOSTS
        ));
        assert!(q.tick(SimTime(50)).is_empty());
        assert!(!q.tick(SimTime(125)).is_empty());
    }

    #[test]
    fn querier_election_lowest_wins() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 5), Config::default());
        q.tick(SimTime(0));
        // Hear a query from a lower address: stand down.
        q.on_message(
            SimTime(1),
            Addr::new(10, 0, 0, 1),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
        );
        assert!(!q.is_querier());
        assert!(
            q.tick(SimTime(125)).is_empty(),
            "non-querier must not query"
        );
        // Higher address does not preempt us once the incumbent lapses.
        let out = q.tick(SimTime(1 + 300));
        assert!(q.is_querier());
        assert!(!out.is_empty());
    }

    #[test]
    fn higher_addressed_querier_does_not_preempt() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 5), Config::default());
        q.on_message(
            SimTime(1),
            Addr::new(10, 0, 0, 9),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
        );
        assert!(q.is_querier());
    }

    #[test]
    fn membership_lifecycle() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 1), Config::default());
        let out = q.on_message(
            SimTime(0),
            Addr::new(10, 0, 0, 20),
            &Message::HostReport(HostReport { group: g(3) }),
        );
        assert_eq!(out, vec![QuerierOutput::MemberJoined(g(3))]);
        assert!(q.has_member(g(3)));
        // A second report for the same group is not a new join.
        let out = q.on_message(
            SimTime(10),
            Addr::new(10, 0, 0, 21),
            &Message::HostReport(HostReport { group: g(3) }),
        );
        assert!(out.is_empty());
        // Refreshed at t=10, so alive at t=285 (10+280 > 285)...
        let out = q.tick(SimTime(285));
        assert!(!out.contains(&QuerierOutput::MemberExpired(g(3))));
        // ...but expired at t=290.
        let out = q.tick(SimTime(290));
        assert!(out.contains(&QuerierOutput::MemberExpired(g(3))));
        assert!(!q.has_member(g(3)));
    }

    #[test]
    fn host_deadline_tracks_pending_reports() {
        let mut h = Host::new(Config::default());
        assert_eq!(h.next_deadline(), None);
        h.join(g(1));
        // An unsolicited report fires immediately from join(); nothing pends.
        assert_eq!(h.next_deadline(), None);
        let mut r = rng();
        h.on_message(
            SimTime(100),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
            &mut r,
        );
        let d = h.next_deadline().expect("query must schedule a report");
        assert!((SimTime(100)..SimTime(110)).contains(&d));
        h.tick(d);
        assert_eq!(h.next_deadline(), None, "fired report clears the deadline");
    }

    #[test]
    fn querier_deadline_covers_query_election_and_expiry() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 5), Config::default());
        // Fresh querier: first query is due immediately.
        assert_eq!(q.next_deadline(), Some(SimTime::ZERO));
        q.tick(SimTime(0));
        assert_eq!(q.next_deadline(), Some(SimTime(125)));
        // A member expiry earlier than the next query wins... (report at t=0
        // expires at t=280, next query at t=125, so the query still wins; a
        // stand-down pushes the deadline to the reclaim time instead.)
        q.on_message(
            SimTime(0),
            Addr::new(10, 0, 0, 20),
            &Message::HostReport(HostReport { group: g(3) }),
        );
        assert_eq!(q.next_deadline(), Some(SimTime(125)));
        q.on_message(
            SimTime(1),
            Addr::new(10, 0, 0, 1),
            &Message::HostQuery(HostQuery { max_resp_time: 10 }),
        );
        assert!(!q.is_querier());
        // Now the deadline is min(member expiry 280, reclaim-at 301).
        assert_eq!(q.next_deadline(), Some(SimTime(280)));
        q.tick(SimTime(280));
        assert_eq!(q.next_deadline(), Some(SimTime(301)));
    }

    #[test]
    fn rp_mapping_surfaces() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 1), Config::default());
        let rp = Addr::new(10, 0, 0, 9);
        let out = q.on_message(
            SimTime(0),
            Addr::new(10, 0, 0, 20),
            &Message::RpMapping(RpMapping {
                group: g(3),
                rps: vec![rp],
            }),
        );
        assert_eq!(out, vec![QuerierOutput::RpMappingLearned(g(3), vec![rp])]);
    }

    #[test]
    fn report_refresh_keeps_member_alive_indefinitely() {
        let mut q = Querier::new(Addr::new(10, 0, 0, 1), Config::default());
        for t in (0..1000).step_by(100) {
            q.on_message(
                SimTime(t),
                Addr::new(10, 0, 0, 20),
                &Message::HostReport(HostReport { group: g(3) }),
            );
            let out = q.tick(SimTime(t + 50));
            assert!(!out.contains(&QuerierOutput::MemberExpired(g(3))));
        }
        assert!(q.has_member(g(3)));
    }
}
