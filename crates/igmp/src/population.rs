//! Aggregate host populations: counts and timers instead of N `HostNode`s.
//!
//! The paper's scaling argument is about *millions* of group members, and
//! simulating each one as a [`crate::HostNode`] puts a node, an RNG
//! stream, and a timer slot behind every single member. A
//! [`PopulationNode`] collapses an entire LAN's membership into one node
//! holding a member *count* per group. What the router on the LAN
//! observes is the same:
//!
//! * **Query responses follow the IGMP sampling argument exactly.** N
//!   members would each draw an integer delay uniformly from
//!   `0..max_resp_time` and the first to fire suppresses the rest, so the
//!   router sees one report at `min(d_1..d_N)`. The population samples
//!   that minimum directly through its inverse CDF
//!   (`P(min >= k) = ((max-k)/max)^N`) and emits exactly one report —
//!   the same distribution without N draws or N timers.
//! * **Joins refresh like a batch of unsolicited reports.** A join batch
//!   emits one unsolicited report: N same-tick reports are idempotent at
//!   the router (each would refresh the same membership timer), so only
//!   the first is observable.
//! * **Leaves are silent** (IGMPv1), so leave latency is the router's
//!   membership timeout from the last refresh — identical to explicit
//!   hosts.
//! * **Membership churn is a deterministic rate process**: once per
//!   configured interval the population sheds `leave_per_mille`/1000 of
//!   its members and admits a fixed number of arrivals, O(1) work however
//!   large the population. Determinism keeps the parallel core's
//!   byte-identity contract intact.
//!
//! Delivery is accounted per population: each data packet received while
//! the group has M members counts as M member-receptions (one log entry,
//! weight M), which is what the delivery oracle checks against.

use crate::Received;
use netsim::{Ctx, Duration, IfaceId, Node, SimTime, TimerId};
use rand::Rng;
use std::any::Any;
use std::collections::BTreeMap;
use wire::igmp::{HostQuery, HostReport, RpMapping};
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

const TOKEN_WAKE: u64 = 1;
const DATA_TTL: u8 = 32;

/// Deterministic membership churn for one group of a population,
/// evaluated once per `interval` as an expected-value rate process.
#[derive(Clone, Copy, Debug)]
pub struct Churn {
    /// How often the rate process is evaluated.
    pub interval: Duration,
    /// Per-interval departure rate, in members per thousand (applied as
    /// `members * leave_per_mille / 1000`, integer arithmetic).
    pub leave_per_mille: u32,
    /// New members admitted per interval.
    pub joins_per_interval: u64,
}

/// Per-group aggregate membership state.
#[derive(Debug)]
struct Membership {
    members: u64,
    /// Sampled min-of-N report delay for an outstanding query, if any.
    pending_report: Option<SimTime>,
    churn: Option<(Churn, SimTime)>,
}

/// Sample `min(d_1..d_n)` where each `d_i` is uniform on `0..max`,
/// inverting the survival function `P(min >= k) = ((max-k)/max)^n` with a
/// single uniform draw. `max` is a handful of ticks (the IGMP max
/// response time), so the loop is short.
fn min_of_n_uniform(max: u64, n: u64, rng: &mut impl Rng) -> u64 {
    debug_assert!(max >= 1 && n >= 1);
    let u: f64 = rng.gen();
    let mut k = 0;
    while k + 1 < max {
        let survival = (((max - (k + 1)) as f64) / max as f64).powi(n.min(i32::MAX as u64) as i32);
        if u < survival {
            k += 1;
        } else {
            break;
        }
    }
    k
}

/// An aggregate host population on one LAN. Like [`crate::HostNode`] it
/// has exactly one interface (0); unlike it, `members` per group is a
/// count, not a node set.
pub struct PopulationNode {
    addr: Addr,
    memberships: BTreeMap<Group, Membership>,
    rp_mappings: BTreeMap<Group, Vec<Addr>>,
    /// Data packets received for joined groups, one entry per packet
    /// (weight = member count at arrival, accumulated in
    /// [`PopulationNode::member_receptions`]).
    pub received: Vec<Received>,
    member_receptions: u64,
    reports_sent: u64,
    next_seq: u64,
    wakeup: Option<(SimTime, TimerId)>,
}

impl PopulationNode {
    /// New, empty population answering from `addr`.
    pub fn new(addr: Addr) -> PopulationNode {
        PopulationNode {
            addr,
            memberships: BTreeMap::new(),
            rp_mappings: BTreeMap::new(),
            received: Vec::new(),
            member_receptions: 0,
            reports_sent: 0,
            next_seq: 0,
            wakeup: None,
        }
    }

    /// The population's spokesman address (source of its reports/data).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Current member count for `group`.
    pub fn members(&self, group: Group) -> u64 {
        self.memberships.get(&group).map_or(0, |m| m.members)
    }

    /// Total member-weighted data receptions (Σ over packets of the member
    /// count at arrival) — the aggregate analogue of "every member's
    /// reception log length" summed.
    pub fn member_receptions(&self) -> u64 {
        self.member_receptions
    }

    /// IGMP reports this population has transmitted.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Configure the RP mapping advertised when `group` gains members.
    pub fn set_rp_mapping(&mut self, group: Group, rps: Vec<Addr>) {
        self.rp_mappings.insert(group, rps);
    }

    /// Admit `n` members to `group`. A batch going 0 → positive (or any
    /// nonempty batch) emits one unsolicited report — the only
    /// router-observable part of N simultaneous unsolicited reports.
    /// Call via `World::call_node` so the report is transmitted.
    pub fn join_members(&mut self, ctx: &mut Ctx<'_>, group: Group, n: u64) {
        if n == 0 {
            return;
        }
        let m = self.memberships.entry(group).or_insert(Membership {
            members: 0,
            pending_report: None,
            churn: None,
        });
        m.members += n;
        self.send_report(ctx, group);
    }

    /// Remove `n` members from `group` (saturating). Silent, as IGMPv1
    /// leaves are: the router's membership timer lapses on its own.
    pub fn leave_members(&mut self, group: Group, n: u64) {
        if let Some(m) = self.memberships.get_mut(&group) {
            m.members = m.members.saturating_sub(n);
            if m.members == 0 {
                m.pending_report = None;
            }
        }
    }

    /// Install a churn rate process for `group`, first evaluated one
    /// interval from now.
    pub fn set_churn(&mut self, ctx: &mut Ctx<'_>, group: Group, churn: Churn) {
        assert!(churn.interval.ticks() >= 1, "churn interval must advance");
        let now = ctx.now();
        let m = self.memberships.entry(group).or_insert(Membership {
            members: 0,
            pending_report: None,
            churn: None,
        });
        m.churn = Some((churn, now + churn.interval));
        self.reschedule(ctx, now);
    }

    /// Send one data packet to `group` from the population's address;
    /// returns the sequence number used (shared counter across groups,
    /// like [`crate::HostNode::send_data`]).
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>, group: Group) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let header = Header {
            proto: Protocol::Data,
            ttl: DATA_TTL,
            src: self.addr,
            dst: group.addr(),
        };
        ctx.send(IfaceId(0), header.encap(&seq.to_be_bytes()));
        seq
    }

    /// Drain the reception log without copying.
    pub fn take_received(&mut self) -> Vec<Received> {
        std::mem::take(&mut self.received)
    }

    /// Sequence numbers received from `source` for `group`, in arrival
    /// order.
    pub fn seqs_from(&self, source: Addr, group: Group) -> Vec<u64> {
        self.received
            .iter()
            .filter(|r| r.source == source && r.group == group)
            .map(|r| r.seq)
            .collect()
    }

    fn send_report(&mut self, ctx: &mut Ctx<'_>, group: Group) {
        self.reports_sent += 1;
        let header = Header {
            proto: Protocol::Igmp,
            ttl: 1,
            src: self.addr,
            dst: group.addr(),
        };
        let msg = Message::HostReport(HostReport { group });
        ctx.send(IfaceId(0), header.encap(&msg.encode()));
        if let Some(rps) = self.rp_mappings.get(&group) {
            let header = Header {
                proto: Protocol::Igmp,
                ttl: 1,
                src: self.addr,
                dst: Addr::ALL_PIM_ROUTERS,
            };
            let msg = Message::RpMapping(RpMapping {
                group,
                rps: rps.clone(),
            });
            ctx.send(IfaceId(0), header.encap(&msg.encode()));
        }
    }

    /// Arm one wakeup at the earliest pending report or churn evaluation.
    fn reschedule(&mut self, ctx: &mut Ctx<'_>, floor: SimTime) {
        let next = self
            .memberships
            .values()
            .flat_map(|m| {
                m.pending_report
                    .into_iter()
                    .chain(m.churn.map(|(_, at)| at))
            })
            .min();
        let Some(d) = next else {
            if let Some((_, id)) = self.wakeup.take() {
                ctx.cancel_timer(id);
            }
            return;
        };
        let at = d.max(floor);
        if let Some((t, id)) = self.wakeup {
            if t == at {
                return;
            }
            ctx.cancel_timer(id);
        }
        let id = ctx.set_timer_at(at, TOKEN_WAKE);
        self.wakeup = Some((at, id));
    }
}

impl Node for PopulationNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, packet: &[u8]) {
        let Ok((header, payload)) = Header::decap(packet) else {
            return;
        };
        match header.proto {
            Protocol::Igmp => {
                let Ok(msg) = Message::decode(payload) else {
                    return;
                };
                let now = ctx.now();
                match msg {
                    Message::HostQuery(HostQuery { max_resp_time }) => {
                        let max = (max_resp_time as u64).max(1);
                        for m in self.memberships.values_mut() {
                            if m.members > 0 && m.pending_report.is_none() {
                                let d = min_of_n_uniform(max, m.members, ctx.rng());
                                m.pending_report = Some(now + Duration(d));
                            }
                        }
                    }
                    Message::HostReport(HostReport { group }) => {
                        // Another responder on the LAN beat our sampled
                        // minimum: every member here is suppressed.
                        if let Some(m) = self.memberships.get_mut(&group) {
                            m.pending_report = None;
                        }
                    }
                    _ => {}
                }
                self.reschedule(ctx, now);
            }
            Protocol::Data => {
                let Some(group) = Group::new(header.dst) else {
                    return;
                };
                if header.src == self.addr {
                    return; // our own transmission echoed on the LAN
                }
                let members = self.members(group);
                if members == 0 {
                    return;
                }
                let seq = payload
                    .get(..8)
                    .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
                    .unwrap_or(u64::MAX);
                self.received.push(Received {
                    at: ctx.now(),
                    source: header.src,
                    group,
                    seq,
                });
                self.member_receptions += members;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_WAKE {
            return;
        }
        self.wakeup = None;
        let now = ctx.now();
        // Due query responses: one report per group, per the sampling
        // argument.
        let due_reports: Vec<Group> = self
            .memberships
            .iter()
            .filter(|(_, m)| m.pending_report.is_some_and(|at| now >= at))
            .map(|(&g, _)| g)
            .collect();
        for g in due_reports {
            if let Some(m) = self.memberships.get_mut(&g) {
                m.pending_report = None;
            }
            self.send_report(ctx, g);
        }
        // Due churn evaluations: leaves scale with the population, joins
        // arrive at a fixed rate; a group resurrected from zero announces
        // itself with one unsolicited report.
        let due_churn: Vec<Group> = self
            .memberships
            .iter()
            .filter(|(_, m)| m.churn.is_some_and(|(_, at)| now >= at))
            .map(|(&g, _)| g)
            .collect();
        for g in due_churn {
            let mut announce = false;
            if let Some(m) = self.memberships.get_mut(&g) {
                let (churn, at) = m.churn.expect("filtered on is_some");
                let was = m.members;
                let leaves = m.members * churn.leave_per_mille as u64 / 1000;
                m.members = m.members.saturating_sub(leaves) + churn.joins_per_interval;
                if m.members == 0 {
                    m.pending_report = None;
                }
                announce = was == 0 && m.members > 0;
                m.churn = Some((churn, at + churn.interval));
            }
            if announce {
                self.send_report(ctx, g);
            }
        }
        self.reschedule(ctx, now + Duration(1));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The inverse-CDF sampler must match the empirical distribution of
    /// an actual min over N uniform draws.
    #[test]
    fn min_of_n_matches_explicit_minimum() {
        let max = 10u64;
        for n in [1u64, 2, 5, 20] {
            let mut direct = StdRng::seed_from_u64(100 + n);
            let mut inverse = StdRng::seed_from_u64(200 + n);
            let trials = 20_000;
            let mut hist_direct = vec![0u64; max as usize];
            let mut hist_inverse = vec![0u64; max as usize];
            for _ in 0..trials {
                let m = (0..n).map(|_| direct.gen_range(0..max)).min().unwrap();
                hist_direct[m as usize] += 1;
                let s = min_of_n_uniform(max, n, &mut inverse);
                hist_inverse[s as usize] += 1;
            }
            for k in 0..max as usize {
                let a = hist_direct[k] as f64 / trials as f64;
                let b = hist_inverse[k] as f64 / trials as f64;
                assert!(
                    (a - b).abs() < 0.02,
                    "n={n} k={k}: direct {a:.3} vs inverse {b:.3}"
                );
            }
        }
    }

    #[test]
    fn min_of_one_is_uniform_and_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let s = min_of_n_uniform(10, 1, &mut rng);
            assert!(s < 10);
        }
        // Degenerate max: the only possible delay is zero.
        for _ in 0..10 {
            assert_eq!(min_of_n_uniform(1, 5, &mut rng), 0);
        }
        // Huge populations answer almost immediately and never panic.
        for _ in 0..100 {
            assert!(min_of_n_uniform(10, 1_000_000, &mut rng) <= 1);
        }
    }
}
