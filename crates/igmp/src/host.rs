//! A simulated end host: IGMP membership on its attached subnetwork, data
//! transmission, and reception accounting.
//!
//! Hosts never speak PIM — the paper's receiver/sender separation is
//! preserved: "the separation of senders and receivers allows any host —
//! member or non-member — to send to a group" (§1.1).

use crate::{Host, HostOutput};
use netsim::{Ctx, IfaceId, Node, SimTime, TimerId};
use std::any::Any;
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

const TOKEN_WAKE: u64 = 1;
const DATA_TTL: u8 = 32;

/// One received data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Received {
    /// Arrival time.
    pub at: SimTime,
    /// Original source host.
    pub source: Addr,
    /// Group the packet was addressed to.
    pub group: Group,
    /// Sender-assigned sequence number.
    pub seq: u64,
}

/// A host node. It has exactly one interface (0), attached to its LAN.
pub struct HostNode {
    addr: Addr,
    igmp: Host,
    /// Data packets received for groups this host is a member of.
    pub received: Vec<Received>,
    next_seq: u64,
    /// The single armed wakeup for a pending randomized report, if any.
    wakeup: Option<(SimTime, TimerId)>,
}

impl HostNode {
    /// New host with the given address.
    pub fn new(addr: Addr) -> HostNode {
        HostNode {
            addr,
            igmp: Host::new(crate::Config::default()),
            received: Vec::new(),
            next_seq: 0,
            wakeup: None,
        }
    }

    /// The host's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Configure the RP mapping this host advertises when joining `group`
    /// (the paper's host RP-mapping message, §3.1 footnote 9).
    pub fn set_rp_mapping(&mut self, group: Group, rps: Vec<Addr>) {
        self.igmp.set_rp_mapping(group, rps);
    }

    /// Join `group` (unsolicited IGMP report goes out immediately). Call
    /// via `World::call_node` so outputs are transmitted.
    pub fn join(&mut self, ctx: &mut Ctx<'_>, group: Group) {
        let outs = self.igmp.join(group);
        self.emit(ctx, outs);
    }

    /// Leave `group` (silent in IGMPv1: the router's timer will lapse).
    pub fn leave(&mut self, group: Group) {
        self.igmp.leave(group);
    }

    /// Is this host currently a member of `group`?
    pub fn is_member(&self, group: Group) -> bool {
        self.igmp.is_member(group)
    }

    /// Send one data packet to `group`; returns the sequence number used.
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>, group: Group) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let header = Header {
            proto: Protocol::Data,
            ttl: DATA_TTL,
            src: self.addr,
            dst: group.addr(),
        };
        ctx.send(IfaceId(0), header.encap(&seq.to_be_bytes()));
        seq
    }

    /// Drain the reception log, returning it without copying. For
    /// post-run inspection when the world is about to be dropped —
    /// cloning `received` there is pure waste.
    pub fn take_received(&mut self) -> Vec<Received> {
        std::mem::take(&mut self.received)
    }

    /// Sequence numbers received from `source` for `group`, in arrival
    /// order.
    pub fn seqs_from(&self, source: Addr, group: Group) -> Vec<u64> {
        self.received
            .iter()
            .filter(|r| r.source == source && r.group == group)
            .map(|r| r.seq)
            .collect()
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, outs: Vec<HostOutput>) {
        for o in outs {
            match o {
                HostOutput::Send { dst, msg } => {
                    let header = Header {
                        proto: Protocol::Igmp,
                        ttl: 1,
                        src: self.addr,
                        dst,
                    };
                    ctx.send(IfaceId(0), header.encap(&msg.encode()));
                }
            }
        }
    }

    /// Arm one wakeup at the earliest pending report, or cancel it when
    /// the host goes idle. Hosts are quiescent between queries — no timer
    /// exists at all unless a randomized report is outstanding.
    fn reschedule(&mut self, ctx: &mut Ctx<'_>, floor: SimTime) {
        let Some(d) = self.igmp.next_deadline() else {
            if let Some((_, id)) = self.wakeup.take() {
                ctx.cancel_timer(id);
            }
            return;
        };
        let at = d.max(floor);
        if let Some((t, id)) = self.wakeup {
            if t == at {
                return;
            }
            ctx.cancel_timer(id);
        }
        let id = ctx.set_timer_at(at, TOKEN_WAKE);
        self.wakeup = Some((at, id));
    }
}

impl Node for HostNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, packet: &[u8]) {
        let Ok((header, payload)) = Header::decap(packet) else {
            return;
        };
        match header.proto {
            Protocol::Igmp => {
                if let Ok(msg) = Message::decode(payload) {
                    let now = ctx.now();
                    let outs = self.igmp.on_message(now, &msg, ctx.rng());
                    self.emit(ctx, outs);
                    // A query may have scheduled a randomized report; a
                    // neighbor's report may have suppressed ours.
                    self.reschedule(ctx, now);
                }
            }
            Protocol::Data => {
                let Some(group) = Group::new(header.dst) else {
                    return;
                };
                if header.src == self.addr {
                    return; // our own transmission echoed on the LAN
                }
                if !self.igmp.is_member(group) {
                    return;
                }
                let seq = payload
                    .get(..8)
                    .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
                    .unwrap_or(u64::MAX);
                self.received.push(Received {
                    at: ctx.now(),
                    source: header.src,
                    group,
                    seq,
                });
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_WAKE {
            return;
        }
        self.wakeup = None;
        let now = ctx.now();
        let outs = self.igmp.tick(now);
        self.emit(ctx, outs);
        self.reschedule(ctx, now + netsim::Duration(1));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
