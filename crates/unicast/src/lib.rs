//! Unicast routing substrates.
//!
//! The defining property of PIM is in its name: *Protocol Independent*
//! Multicast. The paper's requirement (§2): "the protocol should rely on
//! existing unicast routing functionality ... but at the same time be
//! independent of the particular protocol employed. We accomplish this by
//! letting the multicast protocol make use of the unicast routing tables,
//! independent of how those tables are computed."
//!
//! This crate enforces that independence with a trait boundary: the PIM
//! engine only ever sees [`Rib`] (route lookups) and is handed route-change
//! notifications; it cannot observe *how* routes were computed. Three
//! interchangeable engines are provided:
//!
//! * [`OracleRib`] — routes precomputed from the global topology; zero
//!   control traffic. Used for Monte-Carlo-scale experiments.
//! * [`dv::DvEngine`] — a RIP-like distance-vector protocol with split
//!   horizon, poisoned reverse, triggered updates, and route timeout /
//!   garbage collection.
//! * [`ls::LsEngine`] — an OSPF-like link-state protocol with per-interface
//!   hellos, sequence-numbered LSA flooding, and Dijkstra recomputation.
//!
//! The integration tests run the identical PIM scenario over all three and
//! assert the same distribution trees emerge.

#![warn(missing_docs)]

pub mod dv;
pub mod ls;
pub mod oracle;

pub use oracle::OracleRib;

use netsim::{Duration, IfaceId, SimTime};
use wire::{Addr, Message};

/// A resolved route to a destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteEntry {
    /// The interface to send out of.
    pub iface: IfaceId,
    /// The next-hop router's address ("the best next hop toward the new
    /// source", §3.3) — equal to the destination itself when directly
    /// connected.
    pub next_hop: Addr,
    /// Total metric to the destination.
    pub metric: u32,
}

/// Read-only routing-table interface — everything PIM is allowed to know
/// about unicast routing.
pub trait Rib {
    /// This router's own unicast address.
    fn local_addr(&self) -> Addr;

    /// Look up the route toward `dst`. `None` means unreachable, or `dst`
    /// is one of this router's own addresses.
    fn route(&self, dst: Addr) -> Option<RouteEntry>;

    /// The RPF interface for `src`: the interface this router would use to
    /// send unicast packets *to* `src`. Multicast packets from `src` are
    /// only accepted on this interface (the incoming-interface check the
    /// paper insists on for all multicast data packets, footnote 4).
    fn rpf_iface(&self, src: Addr) -> Option<IfaceId> {
        self.route(src).map(|r| r.iface)
    }
}

/// An action requested by a unicast routing engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Transmit `msg` out of `iface` with destination `dst` (TTL 1 —
    /// routing chatter is always link-local).
    Send {
        /// Interface to transmit on.
        iface: IfaceId,
        /// Destination address for the network header.
        dst: Addr,
        /// The routing message.
        msg: Message,
    },
    /// The route toward `dst` changed (next hop, interface, or
    /// reachability). PIM reacts per §3.8: update iifs, join on the new
    /// path, prune on the old.
    RouteChanged {
        /// The destination whose route changed.
        dst: Addr,
    },
}

/// A unicast routing engine: a [`Rib`] that also speaks a routing protocol.
///
/// Engines are sans-IO: the router adapter delivers parsed messages and
/// periodic ticks, and carries out the returned [`Output`]s.
pub trait Engine: Rib + Send {
    /// Called once at simulation start; typically emits initial
    /// hellos/updates.
    fn on_start(&mut self, now: SimTime) -> Vec<Output>;

    /// A routing message arrived on `iface` from `src`.
    fn on_message(&mut self, now: SimTime, iface: IfaceId, src: Addr, msg: &Message)
        -> Vec<Output>;

    /// Periodic maintenance; the adapter calls this every
    /// [`Engine::tick_interval`].
    fn tick(&mut self, now: SimTime) -> Vec<Output>;

    /// How often [`Engine::tick`] wants to run.
    fn tick_interval(&self) -> Duration;

    /// The absolute time of this engine's next pending timer event, if any.
    /// `None` means the engine is quiescent: no `tick` call is needed until
    /// new input arrives. Adapters schedule their wakeups from this instead
    /// of polling on a fixed granularity.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Number of routing-table entries currently held (state-overhead
    /// metric).
    fn table_size(&self) -> usize;

    /// A directly attached host came up behind this router: originate
    /// reachability for it (DV advertises it at metric 0; LS adds a stub
    /// link). The oracle ignores this — its tables are precomputed.
    fn attach_local(&mut self, _host: Addr, _cost: u32) {}

    /// The router grew an interface after construction (host LANs are
    /// wired after the backbone). Keeps per-interface cost tables aligned.
    fn grow_iface(&mut self, _cost: u32) {}

    /// Crash with state loss: forget every learned route/adjacency while
    /// keeping static configuration (local address, interface costs,
    /// attached-host originations). The oracle's default is a no-op — its
    /// precomputed tables play the role of static config.
    fn reset(&mut self) {}
}

/// Compare two optional routes for "has the PIM-visible route changed"
/// purposes: interface or next hop differ, or reachability flipped. Metric
/// changes alone do not move multicast state.
pub(crate) fn route_changed(old: Option<RouteEntry>, new: Option<RouteEntry>) -> bool {
    match (old, new) {
        (None, None) => false,
        (Some(a), Some(b)) => a.iface != b.iface || a.next_hop != b.next_hop,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_changed_semantics() {
        let r = |iface, nh: u32| RouteEntry {
            iface: IfaceId(iface),
            next_hop: Addr(nh),
            metric: 1,
        };
        assert!(!route_changed(None, None));
        assert!(route_changed(None, Some(r(0, 1))));
        assert!(route_changed(Some(r(0, 1)), None));
        assert!(!route_changed(Some(r(0, 1)), Some(r(0, 1))));
        assert!(route_changed(Some(r(0, 1)), Some(r(1, 1))));
        assert!(route_changed(Some(r(0, 1)), Some(r(0, 2))));
        // Metric-only changes are not PIM-visible.
        let mut b = r(0, 1);
        b.metric = 99;
        assert!(!route_changed(Some(r(0, 1)), Some(b)));
    }
}
