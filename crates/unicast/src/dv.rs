//! A RIP-like distance-vector unicast routing engine.
//!
//! Classic Bellman-Ford with the standard loop mitigations:
//!
//! * **split horizon with poisoned reverse** — routes learned through an
//!   interface are advertised back out of it with infinity;
//! * **triggered updates** — metric changes are advertised immediately, not
//!   only at the next periodic update;
//! * **route timeout + garbage collection** — a route not refreshed within
//!   `route_timeout` is poisoned (advertised at infinity) and deleted after
//!   `gc_timeout` more.
//!
//! The engine is sans-IO: it receives parsed [`DvUpdate`]s and periodic
//! ticks, and returns [`Output`]s. DVMRP ("an extension to a RIP-like
//! distance-vector unicast protocol", paper §1.1) and PIM both consume it
//! through the [`Rib`] trait.

use crate::{route_changed, Engine, Output, Rib, RouteEntry};
use netsim::build::NodePlan;
use netsim::{Duration, IfaceId, SimTime};
use std::collections::HashMap;
use wire::unicast::{DvRoute, DvUpdate, INFINITY_METRIC};
use wire::{Addr, Message};

/// Tunables for [`DvEngine`]. Defaults follow RIP's 30/180/120-second
/// ratios, scaled to simulator ticks.
#[derive(Clone, Copy, Debug)]
pub struct DvConfig {
    /// Period between full-table advertisements.
    pub update_interval: Duration,
    /// A route unrefreshed for this long is poisoned.
    pub route_timeout: Duration,
    /// A poisoned route is deleted this long after poisoning.
    pub gc_timeout: Duration,
    /// Metrics at or above this are unreachable.
    pub infinity: u32,
}

impl Default for DvConfig {
    fn default() -> Self {
        DvConfig {
            update_interval: Duration(30),
            route_timeout: Duration(180),
            gc_timeout: Duration(120),
            infinity: 64 * 1024, // generous for delay-valued metrics
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct DvRouteState {
    metric: u32,
    iface: IfaceId,
    next_hop: Addr,
    /// When the route was last confirmed by an update (or created).
    refreshed_at: SimTime,
    /// Set when poisoned; the route is deleted at this time.
    gc_at: Option<SimTime>,
}

/// The distance-vector engine for one router.
pub struct DvEngine {
    cfg: DvConfig,
    local: Addr,
    /// Addresses this router originates (its own address plus directly
    /// attached hosts), advertised at metric 0.
    local_dests: Vec<Addr>,
    /// Interface output cost, indexed by `IfaceId`.
    iface_cost: Vec<u32>,
    table: HashMap<Addr, DvRouteState>,
    next_update: SimTime,
}

impl DvEngine {
    /// Create an engine for the router described by `plan`.
    pub fn new(plan: &NodePlan, cfg: DvConfig) -> DvEngine {
        DvEngine {
            cfg,
            local: plan.addr,
            local_dests: vec![plan.addr],
            iface_cost: plan.ifaces.iter().map(|p| p.metric.max(1)).collect(),
            table: HashMap::new(),
            next_update: SimTime::ZERO,
        }
    }

    /// Create an engine from raw parts (unit-test helper): local address
    /// and per-interface costs.
    pub fn from_parts(local: Addr, iface_cost: Vec<u32>, cfg: DvConfig) -> DvEngine {
        DvEngine {
            cfg,
            local,
            local_dests: vec![local],
            iface_cost,
            table: HashMap::new(),
            next_update: SimTime::ZERO,
        }
    }

    /// Additionally originate `addr` (e.g. a directly attached host).
    pub fn add_local_dest(&mut self, addr: Addr) {
        if !self.local_dests.contains(&addr) {
            self.local_dests.push(addr);
        }
    }

    /// Register a host-facing interface added after construction (cost
    /// applies if routes are ever learned through it; hosts don't speak DV,
    /// so this mainly keeps `iface_cost` index-aligned with the node's real
    /// interface list).
    pub fn add_iface(&mut self, cost: u32) {
        self.iface_cost.push(cost.max(1));
    }

    fn is_local(&self, dst: Addr) -> bool {
        self.local_dests.contains(&dst)
    }

    /// Build the update to send out `iface`, applying split horizon with
    /// poisoned reverse. Public for inspection in tests and tooling.
    pub fn update_for_iface(&self, iface: IfaceId) -> DvUpdate {
        let mut routes: Vec<DvRoute> = self
            .local_dests
            .iter()
            .map(|&dst| DvRoute { dst, metric: 0 })
            .collect();
        for (&dst, st) in &self.table {
            // Poisoned reverse: routes learned over `iface` go back as
            // unreachable, as do routes already at infinity.
            let metric = if st.iface == iface || st.metric >= self.cfg.infinity {
                INFINITY_METRIC
            } else {
                st.metric
            };
            routes.push(DvRoute { dst, metric });
        }
        routes.sort_by_key(|r| r.dst);
        DvUpdate { routes }
    }

    fn broadcast_updates(&self) -> Vec<Output> {
        (0..self.iface_cost.len())
            .map(|i| {
                let iface = IfaceId(i as u32);
                Output::Send {
                    iface,
                    dst: Addr::ALL_ROUTERS,
                    msg: Message::DvUpdate(self.update_for_iface(iface)),
                }
            })
            .collect()
    }

    fn entry(&self, dst: Addr) -> Option<RouteEntry> {
        self.table.get(&dst).and_then(|st| {
            (st.metric < self.cfg.infinity).then_some(RouteEntry {
                iface: st.iface,
                next_hop: st.next_hop,
                metric: st.metric,
            })
        })
    }

    fn process_update(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        from: Addr,
        update: &DvUpdate,
    ) -> Vec<Output> {
        let cost = self.iface_cost.get(iface.index()).copied().unwrap_or(1);
        let mut changed: Vec<Addr> = Vec::new();
        for r in &update.routes {
            if self.is_local(r.dst) {
                continue;
            }
            let new_metric = r.metric.saturating_add(cost).min(self.cfg.infinity);
            let old = self.entry(r.dst);
            match self.table.get_mut(&r.dst) {
                Some(st) if st.next_hop == from && st.iface == iface => {
                    // Update from the current next hop is authoritative,
                    // better or worse.
                    st.refreshed_at = now;
                    if new_metric != st.metric {
                        st.metric = new_metric;
                        st.gc_at =
                            (new_metric >= self.cfg.infinity).then(|| now + self.cfg.gc_timeout);
                    } else if new_metric < self.cfg.infinity {
                        st.gc_at = None;
                    }
                }
                Some(st) if new_metric < st.metric => {
                    *st = DvRouteState {
                        metric: new_metric,
                        iface,
                        next_hop: from,
                        refreshed_at: now,
                        gc_at: None,
                    };
                }
                Some(_) => {} // equal-or-worse via a different neighbor
                None if new_metric < self.cfg.infinity => {
                    self.table.insert(
                        r.dst,
                        DvRouteState {
                            metric: new_metric,
                            iface,
                            next_hop: from,
                            refreshed_at: now,
                            gc_at: None,
                        },
                    );
                }
                None => {}
            }
            if route_changed(old, self.entry(r.dst)) {
                changed.push(r.dst);
            }
        }
        let mut out: Vec<Output> = changed
            .iter()
            .map(|&dst| Output::RouteChanged { dst })
            .collect();
        if !changed.is_empty() {
            // Triggered update (undamped; the periodic refresh would repair
            // any burst anyway).
            out.extend(self.broadcast_updates());
        }
        out
    }
}

impl Rib for DvEngine {
    fn local_addr(&self) -> Addr {
        self.local
    }

    fn route(&self, dst: Addr) -> Option<RouteEntry> {
        if self.is_local(dst) {
            return None;
        }
        self.entry(dst)
    }
}

impl Engine for DvEngine {
    fn on_start(&mut self, now: SimTime) -> Vec<Output> {
        self.next_update = now + self.cfg.update_interval;
        self.broadcast_updates()
    }

    fn on_message(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        msg: &Message,
    ) -> Vec<Output> {
        match msg {
            Message::DvUpdate(u) => self.process_update(now, iface, src, u),
            _ => Vec::new(),
        }
    }

    fn tick(&mut self, now: SimTime) -> Vec<Output> {
        let mut changed = Vec::new();
        // Expire and garbage-collect.
        let mut to_delete = Vec::new();
        for (&dst, st) in self.table.iter_mut() {
            if st.metric < self.cfg.infinity && now.since(st.refreshed_at) >= self.cfg.route_timeout
            {
                st.metric = self.cfg.infinity;
                st.gc_at = Some(now + self.cfg.gc_timeout);
                changed.push(dst);
            }
            if let Some(gc) = st.gc_at {
                if now >= gc {
                    to_delete.push(dst);
                }
            }
        }
        for dst in to_delete {
            self.table.remove(&dst);
        }
        let mut out: Vec<Output> = changed
            .iter()
            .map(|&dst| Output::RouteChanged { dst })
            .collect();
        if now >= self.next_update || !changed.is_empty() {
            out.extend(self.broadcast_updates());
            if now >= self.next_update {
                self.next_update = now + self.cfg.update_interval;
            }
        }
        out
    }

    fn tick_interval(&self) -> Duration {
        self.cfg.update_interval
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let mut best = Some(self.next_update);
        for st in self.table.values() {
            if st.metric < self.cfg.infinity {
                best = netsim::earliest(best, Some(st.refreshed_at + self.cfg.route_timeout));
            }
            best = netsim::earliest(best, st.gc_at);
        }
        best
    }

    fn table_size(&self) -> usize {
        self.table.len()
    }

    fn attach_local(&mut self, host: Addr, _cost: u32) {
        self.add_local_dest(host);
    }

    fn grow_iface(&mut self, cost: u32) {
        self.add_iface(cost);
    }

    fn reset(&mut self) {
        // Learned routes are volatile; local originations and interface
        // costs are configuration and survive. `on_start` after the restart
        // re-announces and re-arms the periodic update.
        self.table.clear();
        self.next_update = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DvConfig {
        DvConfig::default()
    }

    fn addr(n: u8) -> Addr {
        Addr::new(10, 0, n, 1)
    }

    fn update(routes: &[(Addr, u32)]) -> DvUpdate {
        DvUpdate {
            routes: routes
                .iter()
                .map(|&(dst, metric)| DvRoute { dst, metric })
                .collect(),
        }
    }

    /// Engine with two interfaces of cost 1 and 4.
    fn engine() -> DvEngine {
        DvEngine::from_parts(addr(0), vec![1, 4], cfg())
    }

    #[test]
    fn learns_routes_and_prefers_cheaper() {
        let mut e = engine();
        e.on_start(SimTime(0));
        // Neighbor B on iface 1 (cost 4) advertises X at 1.
        let out = e.on_message(
            SimTime(1),
            IfaceId(1),
            addr(2),
            &Message::DvUpdate(update(&[(addr(9), 1)])),
        );
        assert!(out.contains(&Output::RouteChanged { dst: addr(9) }));
        assert_eq!(e.route(addr(9)).unwrap().metric, 5);
        // Neighbor A on iface 0 (cost 1) advertises X at 2 → total 3, better.
        e.on_message(
            SimTime(2),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        let r = e.route(addr(9)).unwrap();
        assert_eq!(r.metric, 3);
        assert_eq!(r.iface, IfaceId(0));
        assert_eq!(r.next_hop, addr(1));
    }

    #[test]
    fn worse_metric_from_current_next_hop_is_believed() {
        let mut e = engine();
        e.on_message(
            SimTime(1),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        assert_eq!(e.route(addr(9)).unwrap().metric, 3);
        e.on_message(
            SimTime(2),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 10)])),
        );
        assert_eq!(e.route(addr(9)).unwrap().metric, 11);
    }

    #[test]
    fn poisoned_route_from_next_hop_removes_reachability() {
        let mut e = engine();
        e.on_message(
            SimTime(1),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        let out = e.on_message(
            SimTime(2),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), INFINITY_METRIC)])),
        );
        assert!(e.route(addr(9)).is_none());
        assert!(out.contains(&Output::RouteChanged { dst: addr(9) }));
    }

    #[test]
    fn split_horizon_poisons_reverse() {
        let mut e = engine();
        e.on_message(
            SimTime(1),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        let back = e.update_for_iface(IfaceId(0));
        let r9 = back.routes.iter().find(|r| r.dst == addr(9)).unwrap();
        assert_eq!(r9.metric, INFINITY_METRIC);
        let side = e.update_for_iface(IfaceId(1));
        let r9 = side.routes.iter().find(|r| r.dst == addr(9)).unwrap();
        assert_eq!(r9.metric, 3);
    }

    #[test]
    fn advertises_local_dests_at_zero() {
        let mut e = engine();
        e.add_local_dest(Addr::new(10, 0, 0, 10));
        let u = e.update_for_iface(IfaceId(0));
        assert!(u.routes.iter().any(|r| r.dst == addr(0) && r.metric == 0));
        assert!(u
            .routes
            .iter()
            .any(|r| r.dst == Addr::new(10, 0, 0, 10) && r.metric == 0));
        // Local destinations have no route (they're us).
        assert!(e.route(Addr::new(10, 0, 0, 10)).is_none());
    }

    #[test]
    fn route_times_out_then_garbage_collected() {
        let mut e = engine();
        e.on_message(
            SimTime(0),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        // Not yet expired.
        let out = e.tick(SimTime(100));
        assert!(!out.iter().any(|o| matches!(o, Output::RouteChanged { .. })));
        assert!(e.route(addr(9)).is_some());
        // Past route_timeout: poisoned.
        let out = e.tick(SimTime(181));
        assert!(out.contains(&Output::RouteChanged { dst: addr(9) }));
        assert!(e.route(addr(9)).is_none());
        assert_eq!(e.table_size(), 1); // still present for poisoning
                                       // Past gc: gone entirely.
        e.tick(SimTime(181 + 121));
        assert_eq!(e.table_size(), 0);
    }

    #[test]
    fn refresh_prevents_timeout() {
        let mut e = engine();
        for t in [0u64, 100, 200, 300] {
            e.on_message(
                SimTime(t),
                IfaceId(0),
                addr(1),
                &Message::DvUpdate(update(&[(addr(9), 2)])),
            );
        }
        e.tick(SimTime(350));
        assert!(e.route(addr(9)).is_some());
    }

    #[test]
    fn triggered_update_on_change_only() {
        let mut e = engine();
        let out = e.on_message(
            SimTime(1),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        assert!(out.iter().any(|o| matches!(o, Output::Send { .. })));
        // Same update again: no change, no sends.
        let out = e.on_message(
            SimTime(2),
            IfaceId(0),
            addr(1),
            &Message::DvUpdate(update(&[(addr(9), 2)])),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn periodic_updates_on_schedule() {
        let mut e = engine();
        e.on_start(SimTime(0));
        assert!(e.tick(SimTime(10)).is_empty());
        let out = e.tick(SimTime(30));
        assert_eq!(
            out.iter()
                .filter(|o| matches!(o, Output::Send { .. }))
                .count(),
            2 // one per interface
        );
    }

    #[test]
    fn ignores_foreign_messages() {
        let mut e = engine();
        let out = e.on_message(
            SimTime(1),
            IfaceId(0),
            addr(1),
            &Message::PimQuery(wire::pim::Query { holdtime: 1 }),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn counting_to_infinity_is_bounded() {
        // Two engines pointing at each other for a dead destination
        // converge to unreachable rather than counting forever, because
        // metrics saturate at cfg.infinity.
        let mut e = DvEngine::from_parts(
            addr(0),
            vec![1, 4],
            DvConfig {
                infinity: 64,
                ..cfg()
            },
        );
        let mut m = 2u32;
        for step in 0..10_000 {
            e.on_message(
                SimTime(step),
                IfaceId(0),
                addr(1),
                &Message::DvUpdate(update(&[(addr(9), m)])),
            );
            let got = e.table.get(&addr(9)).unwrap().metric;
            m = got; // echoed back, simulating a 2-node loop
            if got >= e.cfg.infinity {
                break;
            }
        }
        assert!(e.route(addr(9)).is_none());
    }
}
