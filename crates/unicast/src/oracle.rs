//! The oracle RIB: routes precomputed from global topology knowledge.
//!
//! For Monte-Carlo-scale protocol experiments (hundreds of topologies ×
//! hundreds of groups) running a live routing protocol per topology wastes
//! time the paper's own simulations did not spend — their tree study
//! assumed converged unicast routing. `OracleRib` provides exactly that:
//! per-router tables computed centrally with Dijkstra, plus zero control
//! traffic. It still implements [`Engine`], so protocol adapters are
//! generic over "real protocol vs oracle".

use crate::{Engine, Output, Rib, RouteEntry};
use graph::algo::AllPairs;
use graph::{Graph, NodeId};
use netsim::build::Topology;
use netsim::{router_addr, Duration, IfaceId, SimTime};
use std::collections::HashMap;
use wire::{Addr, Message};

/// A routing table computed from global knowledge. One per router.
#[derive(Clone, Debug)]
pub struct OracleRib {
    local: Addr,
    table: HashMap<Addr, RouteEntry>,
}

impl OracleRib {
    /// Build the oracle table for router `me` from all-pairs shortest
    /// paths.
    ///
    /// Every other router's address is routed via the first hop of the
    /// shortest `me → dst` path; the outgoing interface comes from the
    /// topology plan.
    pub fn for_node(g: &Graph, topo: &Topology, ap: &AllPairs, me: NodeId) -> OracleRib {
        let plan = topo.plan(me);
        // Map each incident edge to its interface.
        let iface_of_edge: HashMap<usize, IfaceId> = plan
            .ifaces
            .iter()
            .map(|p| (p.edge.index(), p.iface))
            .collect();
        let sp = ap.from(me);
        let n = g.node_count();
        // First hop from `me` toward each destination, memoized over the
        // shortest-path tree: every node on a root-to-dst branch shares
        // the branch's first hop, so each tree node is walked once and
        // the whole table costs O(n) parent steps instead of
        // O(n · diameter).
        let mut first_hop: Vec<Option<(NodeId, graph::EdgeId)>> = vec![None; n];
        let mut chain: Vec<NodeId> = Vec::new();
        let mut table = HashMap::with_capacity(n.saturating_sub(1));
        for dst in g.nodes() {
            if dst == me {
                continue;
            }
            let Some(metric) = sp.dist_to(dst) else {
                continue;
            };
            if first_hop[dst.index()].is_none() {
                let mut cur = dst;
                let resolved = loop {
                    if let Some(hop) = first_hop[cur.index()] {
                        break hop;
                    }
                    let (parent, edge) = sp.parent_of(g, cur).expect("path must pass through me");
                    if parent == me {
                        break (cur, edge);
                    }
                    chain.push(cur);
                    cur = parent;
                };
                first_hop[cur.index()] = Some(resolved);
                for &v in &chain {
                    first_hop[v.index()] = Some(resolved);
                }
                chain.clear();
            }
            let (next_hop_node, edge) = first_hop[dst.index()].expect("resolved above");
            let iface = iface_of_edge[&edge.index()];
            table.insert(
                router_addr(dst),
                RouteEntry {
                    iface,
                    next_hop: router_addr(next_hop_node),
                    metric: metric as u32,
                },
            );
        }
        OracleRib {
            local: plan.addr,
            table,
        }
    }

    /// Build oracle RIBs for every router of `g` in node order.
    pub fn for_all(g: &Graph, topo: &Topology) -> Vec<OracleRib> {
        let ap = AllPairs::new(g);
        g.nodes().map(|n| Self::for_node(g, topo, &ap, n)).collect()
    }

    /// Create an empty RIB with just a local address (unit-test helper).
    pub fn empty(local: Addr) -> OracleRib {
        OracleRib {
            local,
            table: HashMap::new(),
        }
    }

    /// Register an additional destination (e.g. a directly attached host of
    /// a *different* router, or a host behind this router registered on
    /// other routers' oracles).
    pub fn insert(&mut self, dst: Addr, entry: RouteEntry) {
        self.table.insert(dst, entry);
    }

    /// Register `host` as reachable via the same route as `router` (hosts
    /// inherit their attachment router's path). No-op on the router itself.
    pub fn alias_host(&mut self, host: Addr, router: Addr) {
        if let Some(&e) = self.table.get(&router) {
            self.table.insert(host, e);
        }
    }
}

impl Rib for OracleRib {
    fn local_addr(&self) -> Addr {
        self.local
    }

    fn route(&self, dst: Addr) -> Option<RouteEntry> {
        self.table.get(&dst).copied()
    }
}

impl Engine for OracleRib {
    fn on_start(&mut self, _now: SimTime) -> Vec<Output> {
        Vec::new()
    }

    fn on_message(
        &mut self,
        _now: SimTime,
        _iface: IfaceId,
        _src: Addr,
        _msg: &Message,
    ) -> Vec<Output> {
        Vec::new()
    }

    fn tick(&mut self, _now: SimTime) -> Vec<Output> {
        Vec::new()
    }

    fn tick_interval(&self) -> Duration {
        // Effectively never; the adapter skips scheduling at u64::MAX.
        Duration(u64::MAX)
    }

    fn next_deadline(&self) -> Option<SimTime> {
        None // precomputed tables never need maintenance
    }

    fn table_size(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::algo::AllPairs;

    /// 0 --1-- 1 --1-- 2, plus a slow direct 0--2 edge of weight 5.
    fn line() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(0), NodeId(2), 5);
        g
    }

    #[test]
    fn routes_follow_shortest_paths() {
        let g = line();
        let topo = Topology::from_graph(&g);
        let ribs = OracleRib::for_all(&g, &topo);

        // Node 0 reaches node 2 via node 1 (cost 2), not the direct edge.
        let r = ribs[0].route(router_addr(NodeId(2))).unwrap();
        assert_eq!(r.next_hop, router_addr(NodeId(1)));
        assert_eq!(r.metric, 2);
        // Interface 0 of node 0 is the edge to node 1.
        assert_eq!(r.iface, IfaceId(0));

        // Node 1 reaches both ends directly.
        let r10 = ribs[1].route(router_addr(NodeId(0))).unwrap();
        assert_eq!(r10.next_hop, router_addr(NodeId(0)));
        assert_eq!(r10.metric, 1);
    }

    #[test]
    fn no_route_to_self() {
        let g = line();
        let topo = Topology::from_graph(&g);
        let ribs = OracleRib::for_all(&g, &topo);
        assert!(ribs[0].route(router_addr(NodeId(0))).is_none());
    }

    #[test]
    fn rpf_iface_matches_route() {
        let g = line();
        let topo = Topology::from_graph(&g);
        let ribs = OracleRib::for_all(&g, &topo);
        assert_eq!(
            ribs[2].rpf_iface(router_addr(NodeId(0))),
            Some(ribs[2].route(router_addr(NodeId(0))).unwrap().iface)
        );
    }

    #[test]
    fn host_aliasing() {
        let g = line();
        let topo = Topology::from_graph(&g);
        let mut ribs = OracleRib::for_all(&g, &topo);
        let host = Addr::new(10, 0, 2, 10);
        ribs[0].alias_host(host, router_addr(NodeId(2)));
        assert_eq!(ribs[0].route(host), ribs[0].route(router_addr(NodeId(2))));
        // Aliasing to an unknown router is a no-op.
        let mut empty = OracleRib::empty(Addr::new(10, 0, 0, 1));
        empty.alias_host(host, router_addr(NodeId(2)));
        assert!(empty.route(host).is_none());
    }

    #[test]
    fn engine_impl_is_silent() {
        let g = line();
        let topo = Topology::from_graph(&g);
        let ap = AllPairs::new(&g);
        let mut rib = OracleRib::for_node(&g, &topo, &ap, NodeId(0));
        assert!(rib.on_start(SimTime(0)).is_empty());
        assert!(rib.tick(SimTime(0)).is_empty());
        assert_eq!(rib.table_size(), 2);
    }
}
