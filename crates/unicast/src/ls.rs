//! An OSPF-like link-state unicast routing engine.
//!
//! * Per-interface [`Hello`]s discover and keep alive neighbor adjacencies;
//!   a lapsed neighbor triggers re-origination.
//! * Each router floods a sequence-numbered [`Lsa`] describing its current
//!   adjacencies (plus stub links to its directly attached hosts); LSAs are
//!   re-flooded out of every other interface when fresh, dropped when
//!   stale, and aged out if not refreshed.
//! * Routes are recomputed with Dijkstra over the link-state database on
//!   every topology-affecting event; the computation only uses links
//!   advertised by *both* ends (the OSPF bidirectionality check), except
//!   stub hosts, which don't originate LSAs.
//!
//! MOSPF is "an extension to the link-state unicast protocol OSPF" (paper
//! §1.1); PIM instead consumes this engine opaquely through [`Rib`].

use crate::{route_changed, Engine, Output, Rib, RouteEntry};
use netsim::build::NodePlan;
use netsim::{Duration, IfaceId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use wire::unicast::{Hello, Lsa, LsaLink};
use wire::{Addr, Message};

/// Tunables for [`LsEngine`].
#[derive(Clone, Copy, Debug)]
pub struct LsConfig {
    /// Period between hellos on each interface.
    pub hello_interval: Duration,
    /// A neighbor silent for this long is declared down.
    pub neighbor_holdtime: Duration,
    /// Period between LSA re-originations.
    pub lsa_refresh: Duration,
    /// An LSA unrefreshed for this long is flushed from the database.
    pub lsa_max_age: Duration,
}

impl Default for LsConfig {
    fn default() -> Self {
        LsConfig {
            hello_interval: Duration(10),
            neighbor_holdtime: Duration(35),
            lsa_refresh: Duration(100),
            lsa_max_age: Duration(350),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Neighbor {
    addr: Addr,
    expires_at: SimTime,
}

#[derive(Clone, Debug)]
struct LsaRecord {
    seq: u32,
    links: Vec<LsaLink>,
    expires_at: SimTime,
}

/// The link-state engine for one router.
pub struct LsEngine {
    cfg: LsConfig,
    local: Addr,
    /// Cost per interface, indexed by `IfaceId`.
    iface_cost: Vec<u32>,
    /// Live neighbor per interface (point-to-point model: one neighbor per
    /// interface; LAN interfaces would hold the DR in full OSPF).
    neighbors: Vec<Option<Neighbor>>,
    /// Stub destinations attached to this router (hosts), with costs.
    stubs: Vec<(Addr, u32)>,
    lsdb: HashMap<Addr, LsaRecord>,
    my_seq: u32,
    table: HashMap<Addr, RouteEntry>,
    next_hello: SimTime,
    next_refresh: SimTime,
}

impl LsEngine {
    /// Create an engine for the router described by `plan`.
    pub fn new(plan: &NodePlan, cfg: LsConfig) -> LsEngine {
        LsEngine::from_parts(
            plan.addr,
            plan.ifaces.iter().map(|p| p.metric.max(1)).collect(),
            cfg,
        )
    }

    /// Create an engine from raw parts (unit-test helper).
    pub fn from_parts(local: Addr, iface_cost: Vec<u32>, cfg: LsConfig) -> LsEngine {
        let n = iface_cost.len();
        LsEngine {
            cfg,
            local,
            iface_cost,
            neighbors: vec![None; n],
            stubs: Vec::new(),
            lsdb: HashMap::new(),
            my_seq: 0,
            table: HashMap::new(),
            next_hello: SimTime::ZERO,
            next_refresh: SimTime::ZERO,
        }
    }

    /// Register a host-facing interface; `host` becomes a stub link in this
    /// router's LSA.
    pub fn add_stub_host(&mut self, host: Addr, cost: u32) {
        self.stubs.push((host, cost.max(1)));
    }

    /// Register an extra interface (keeps cost table aligned with the
    /// node's real interface list).
    pub fn add_iface(&mut self, cost: u32) {
        self.iface_cost.push(cost.max(1));
        self.neighbors.push(None);
    }

    fn my_links(&self) -> Vec<LsaLink> {
        let mut links: Vec<LsaLink> = self
            .neighbors
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.map(|nb| LsaLink {
                    neighbor: nb.addr,
                    cost: self.iface_cost[i],
                })
            })
            .collect();
        links.extend(self.stubs.iter().map(|&(host, cost)| LsaLink {
            neighbor: host,
            cost,
        }));
        links
    }

    /// Re-originate our own LSA: bump the sequence number, install in the
    /// local database, and flood everywhere.
    fn originate(&mut self, now: SimTime) -> Vec<Output> {
        self.my_seq += 1;
        let lsa = Lsa {
            origin: self.local,
            seq: self.my_seq,
            links: self.my_links(),
        };
        self.lsdb.insert(
            self.local,
            LsaRecord {
                seq: self.my_seq,
                links: lsa.links.clone(),
                expires_at: now + self.cfg.lsa_max_age,
            },
        );
        self.flood(&lsa, None)
    }

    /// Flood `lsa` out of every interface except `except`.
    fn flood(&self, lsa: &Lsa, except: Option<IfaceId>) -> Vec<Output> {
        (0..self.iface_cost.len())
            .map(|i| IfaceId(i as u32))
            .filter(|&i| Some(i) != except)
            .map(|iface| Output::Send {
                iface,
                dst: Addr::ALL_ROUTERS,
                msg: Message::Lsa(lsa.clone()),
            })
            .collect()
    }

    fn hellos(&self) -> Vec<Output> {
        (0..self.iface_cost.len())
            .map(|i| Output::Send {
                iface: IfaceId(i as u32),
                dst: Addr::ALL_ROUTERS,
                msg: Message::Hello(Hello {
                    holdtime: self.cfg.neighbor_holdtime.ticks().min(u16::MAX as u64) as u16,
                }),
            })
            .collect()
    }

    /// Dijkstra over the LSDB. A router-to-router edge is used only if
    /// advertised by both endpoints (bidirectionality check); an edge to an
    /// address with no LSA (a stub host) is accepted one-way.
    fn recompute(&mut self) -> Vec<Output> {
        let mut dist: HashMap<Addr, u32> = HashMap::new();
        // first_hop[dst] = the neighbor of `self.local` the path leaves by.
        let mut first_hop: HashMap<Addr, Addr> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u32, u32, Addr)>> = BinaryHeap::new();
        dist.insert(self.local, 0);
        heap.push(Reverse((0, 0, self.local)));

        let advertises = |from: Addr, to: Addr| -> Option<u32> {
            self.lsdb
                .get(&from)?
                .links
                .iter()
                .find(|l| l.neighbor == to)
                .map(|l| l.cost)
        };

        while let Some(Reverse((d, _tie, u))) = heap.pop() {
            if dist.get(&u) != Some(&d) {
                continue;
            }
            let Some(rec) = self.lsdb.get(&u) else {
                continue; // stub endpoint: no outgoing links
            };
            for link in &rec.links {
                let v = link.neighbor;
                // Bidirectionality: v must advertise u back, unless v has
                // no LSA at all (stub host).
                let back = advertises(v, u);
                if self.lsdb.contains_key(&v) && back.is_none() {
                    continue;
                }
                let nd = d.saturating_add(link.cost);
                let better = match dist.get(&v) {
                    None => true,
                    Some(&old) if nd < old => true,
                    Some(&old) if nd == old => {
                        // Deterministic tie-break on first-hop address so
                        // all routers agree with the oracle's convention.
                        let new_fh = if u == self.local { v } else { first_hop[&u] };
                        first_hop.get(&v).is_some_and(|&old_fh| new_fh < old_fh)
                    }
                    _ => false,
                };
                if better {
                    dist.insert(v, nd);
                    let fh = if u == self.local { v } else { first_hop[&u] };
                    first_hop.insert(v, fh);
                    heap.push(Reverse((nd, fh.0, v)));
                }
            }
        }

        // Translate to a routing table: first hop must be a live neighbor.
        let hop_iface: HashMap<Addr, IfaceId> = self
            .neighbors
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|nb| (nb.addr, IfaceId(i as u32))))
            .collect();
        let mut new_table = HashMap::new();
        for (dst, d) in &dist {
            if *dst == self.local {
                continue;
            }
            if self.stubs.iter().any(|&(h, _)| h == *dst) {
                continue; // our own hosts are local, not routed
            }
            let fh = first_hop[dst];
            if let Some(&iface) = hop_iface.get(&fh) {
                new_table.insert(
                    *dst,
                    RouteEntry {
                        iface,
                        next_hop: fh,
                        metric: *d,
                    },
                );
            }
        }

        // Diff for PIM notifications.
        let mut changed = Vec::new();
        for (&dst, &new) in &new_table {
            if route_changed(self.table.get(&dst).copied(), Some(new)) {
                changed.push(dst);
            }
        }
        for &dst in self.table.keys() {
            if !new_table.contains_key(&dst) {
                changed.push(dst);
            }
        }
        self.table = new_table;
        changed
            .into_iter()
            .map(|dst| Output::RouteChanged { dst })
            .collect()
    }

    fn on_hello(&mut self, now: SimTime, iface: IfaceId, src: Addr, hello: &Hello) -> Vec<Output> {
        let slot = &mut self.neighbors[iface.index()];
        let is_new = slot.map(|n| n.addr) != Some(src);
        *slot = Some(Neighbor {
            addr: src,
            expires_at: now + Duration(hello.holdtime as u64),
        });
        if is_new {
            let mut out = self.originate(now);
            out.extend(self.recompute());
            out
        } else {
            Vec::new()
        }
    }

    fn on_lsa(&mut self, now: SimTime, iface: IfaceId, lsa: &Lsa) -> Vec<Output> {
        if lsa.origin == self.local {
            // Our own LSA echoed back, possibly from before a restart; if
            // its sequence number is ahead of ours, jump past it.
            if lsa.seq >= self.my_seq {
                self.my_seq = lsa.seq;
                return self.originate(now);
            }
            return Vec::new();
        }
        let fresh = match self.lsdb.get(&lsa.origin) {
            Some(rec) => lsa.seq > rec.seq,
            None => true,
        };
        if !fresh {
            return Vec::new();
        }
        self.lsdb.insert(
            lsa.origin,
            LsaRecord {
                seq: lsa.seq,
                links: lsa.links.clone(),
                expires_at: now + self.cfg.lsa_max_age,
            },
        );
        let mut out = self.flood(lsa, Some(iface));
        out.extend(self.recompute());
        out
    }
}

impl Rib for LsEngine {
    fn local_addr(&self) -> Addr {
        self.local
    }

    fn route(&self, dst: Addr) -> Option<RouteEntry> {
        self.table.get(&dst).copied()
    }
}

impl Engine for LsEngine {
    fn on_start(&mut self, now: SimTime) -> Vec<Output> {
        self.next_hello = now + self.cfg.hello_interval;
        self.next_refresh = now + self.cfg.lsa_refresh;
        let mut out = self.hellos();
        out.extend(self.originate(now));
        out
    }

    fn on_message(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        msg: &Message,
    ) -> Vec<Output> {
        match msg {
            Message::Hello(h) => self.on_hello(now, iface, src, h),
            Message::Lsa(l) => self.on_lsa(now, iface, l),
            _ => Vec::new(),
        }
    }

    fn tick(&mut self, now: SimTime) -> Vec<Output> {
        let mut out = Vec::new();
        // Expire neighbors.
        let mut lost = false;
        for slot in &mut self.neighbors {
            if let Some(n) = slot {
                if now >= n.expires_at {
                    *slot = None;
                    lost = true;
                }
            }
        }
        // Age out LSAs.
        let before = self.lsdb.len();
        let local = self.local;
        self.lsdb
            .retain(|&origin, rec| origin == local || now < rec.expires_at);
        let aged = self.lsdb.len() != before;

        if lost {
            out.extend(self.originate(now));
        }
        if lost || aged {
            out.extend(self.recompute());
        }
        if now >= self.next_hello {
            out.extend(self.hellos());
            self.next_hello = now + self.cfg.hello_interval;
        }
        if now >= self.next_refresh {
            out.extend(self.originate(now));
            self.next_refresh = now + self.cfg.lsa_refresh;
        }
        out
    }

    fn tick_interval(&self) -> Duration {
        self.cfg.hello_interval
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let mut best = Some(self.next_hello.min(self.next_refresh));
        for n in self.neighbors.iter().flatten() {
            best = netsim::earliest(best, Some(n.expires_at));
        }
        for (origin, rec) in &self.lsdb {
            if *origin != self.local {
                best = netsim::earliest(best, Some(rec.expires_at));
            }
        }
        best
    }

    fn table_size(&self) -> usize {
        self.table.len()
    }

    fn attach_local(&mut self, host: Addr, cost: u32) {
        self.add_stub_host(host, cost);
    }

    fn grow_iface(&mut self, cost: u32) {
        self.add_iface(cost);
    }

    fn reset(&mut self) {
        // Adjacencies, the LSDB, and the computed table are volatile;
        // interface costs and stub originations are configuration. `my_seq`
        // survives so our first post-restart LSA outranks the stale copy
        // neighbors still hold (standing in for OSPF's sequence-number
        // recovery procedure).
        for n in self.neighbors.iter_mut() {
            *n = None;
        }
        self.lsdb.clear();
        self.table.clear();
        self.next_hello = SimTime::ZERO;
        self.next_refresh = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Addr {
        Addr::new(10, 0, n, 1)
    }

    fn cfg() -> LsConfig {
        LsConfig::default()
    }

    /// Drive two engines' mutual discovery by hand: a <-> b over one link,
    /// a iface 0 <-> b iface 0, cost 1 each way.
    fn converge_pair() -> (LsEngine, LsEngine) {
        let mut a = LsEngine::from_parts(addr(1), vec![1], cfg());
        let mut b = LsEngine::from_parts(addr(2), vec![1], cfg());
        let t = SimTime(0);
        a.on_start(t);
        b.on_start(t);
        // Exchange hellos.
        let hello = Hello { holdtime: 35 };
        a.on_message(t, IfaceId(0), addr(2), &Message::Hello(hello));
        b.on_message(t, IfaceId(0), addr(1), &Message::Hello(hello));
        // Exchange resulting LSAs until quiescent (bounded).
        for _ in 0..4 {
            let la = Lsa {
                origin: addr(1),
                seq: a.my_seq,
                links: a.my_links(),
            };
            let lb = Lsa {
                origin: addr(2),
                seq: b.my_seq,
                links: b.my_links(),
            };
            a.on_message(t, IfaceId(0), addr(2), &Message::Lsa(lb));
            b.on_message(t, IfaceId(0), addr(1), &Message::Lsa(la));
        }
        (a, b)
    }

    #[test]
    fn two_routers_learn_each_other() {
        let (a, b) = converge_pair();
        let ra = a.route(addr(2)).unwrap();
        assert_eq!(ra.next_hop, addr(2));
        assert_eq!(ra.metric, 1);
        let rb = b.route(addr(1)).unwrap();
        assert_eq!(rb.next_hop, addr(1));
    }

    #[test]
    fn stub_hosts_are_advertised_and_routed() {
        let mut a = LsEngine::from_parts(addr(1), vec![1], cfg());
        a.add_stub_host(Addr::new(10, 0, 1, 10), 1);
        assert!(a
            .my_links()
            .iter()
            .any(|l| l.neighbor == Addr::new(10, 0, 1, 10)));

        // b learns a's stub through a's LSA.
        let (a2, b) = {
            let mut a2 = a;
            let mut b = LsEngine::from_parts(addr(2), vec![1], cfg());
            let t = SimTime(0);
            a2.on_start(t);
            b.on_start(t);
            let hello = Hello { holdtime: 35 };
            a2.on_message(t, IfaceId(0), addr(2), &Message::Hello(hello));
            b.on_message(t, IfaceId(0), addr(1), &Message::Hello(hello));
            for _ in 0..4 {
                let la = Lsa {
                    origin: addr(1),
                    seq: a2.my_seq,
                    links: a2.my_links(),
                };
                let lb = Lsa {
                    origin: addr(2),
                    seq: b.my_seq,
                    links: b.my_links(),
                };
                a2.on_message(t, IfaceId(0), addr(2), &Message::Lsa(lb));
                b.on_message(t, IfaceId(0), addr(1), &Message::Lsa(la));
            }
            (a2, b)
        };
        let r = b.route(Addr::new(10, 0, 1, 10)).unwrap();
        assert_eq!(r.next_hop, addr(1));
        assert_eq!(r.metric, 2);
        // The host is local at a, so a has no route to it.
        assert!(a2.route(Addr::new(10, 0, 1, 10)).is_none());
    }

    #[test]
    fn stale_lsa_not_refloods() {
        let (mut a, _) = converge_pair();
        let stale = Lsa {
            origin: addr(2),
            seq: 0, // older than what a holds
            links: vec![],
        };
        let out = a.on_message(SimTime(1), IfaceId(0), addr(2), &Message::Lsa(stale));
        assert!(out.is_empty());
        assert!(a.route(addr(2)).is_some(), "stale LSA must not clobber");
    }

    #[test]
    fn neighbor_timeout_withdraws_routes() {
        let (mut a, _) = converge_pair();
        assert!(a.route(addr(2)).is_some());
        let out = a.tick(SimTime(100)); // past holdtime 35
        assert!(out
            .iter()
            .any(|o| matches!(o, Output::RouteChanged { dst } if *dst == addr(2))));
        assert!(a.route(addr(2)).is_none());
    }

    #[test]
    fn own_lsa_echo_with_higher_seq_bumps() {
        let (mut a, _) = converge_pair();
        let seq_before = a.my_seq;
        let echo = Lsa {
            origin: addr(1),
            seq: seq_before + 10,
            links: vec![],
        };
        let out = a.on_message(SimTime(1), IfaceId(0), addr(2), &Message::Lsa(echo));
        assert!(a.my_seq > seq_before + 10);
        assert!(out.iter().any(|o| matches!(o, Output::Send { .. })));
    }

    #[test]
    fn periodic_hellos_and_refresh() {
        let mut a = LsEngine::from_parts(addr(1), vec![1, 1], cfg());
        a.on_start(SimTime(0));
        let out = a.tick(SimTime(10));
        let hellos = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Output::Send {
                        msg: Message::Hello(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(hellos, 2);
        let out = a.tick(SimTime(100));
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::Lsa(_),
                ..
            }
        )));
    }

    #[test]
    fn bidirectionality_check_blocks_one_way_links() {
        // c claims a link to d, but d's LSA doesn't reciprocate: no route.
        let mut a = LsEngine::from_parts(addr(1), vec![1], cfg());
        a.on_start(SimTime(0));
        a.on_message(
            SimTime(0),
            IfaceId(0),
            addr(3),
            &Message::Hello(Hello { holdtime: 100 }),
        );
        a.on_message(
            SimTime(0),
            IfaceId(0),
            addr(3),
            &Message::Lsa(Lsa {
                origin: addr(3),
                seq: 1,
                links: vec![
                    LsaLink {
                        neighbor: addr(1),
                        cost: 1,
                    },
                    LsaLink {
                        neighbor: addr(4),
                        cost: 1,
                    },
                ],
            }),
        );
        a.on_message(
            SimTime(0),
            IfaceId(0),
            addr(3),
            &Message::Lsa(Lsa {
                origin: addr(4),
                seq: 1,
                links: vec![], // does not point back at c
            }),
        );
        assert!(a.route(addr(3)).is_some());
        assert!(a.route(addr(4)).is_none(), "one-way link must be ignored");
    }
}
