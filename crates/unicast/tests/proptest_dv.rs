//! Property tests for the distance-vector engine: arbitrary update
//! streams never panic and never violate table invariants (no route to a
//! local destination, metrics bounded by infinity, split horizon always
//! poisons, adopted routes never worse than what was offered).

use netsim::{IfaceId, SimTime};
use proptest::prelude::*;
use unicast::dv::{DvConfig, DvEngine};
use unicast::{Engine, Rib};
use wire::unicast::{DvRoute, DvUpdate, INFINITY_METRIC};
use wire::{Addr, Message};

fn me() -> Addr {
    Addr::new(10, 0, 0, 1)
}

fn neighbor(i: u8) -> Addr {
    Addr::new(10, 0, 1, i + 1)
}

fn dest(i: u8) -> Addr {
    Addr::new(10, 9, 0, i + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dv_invariants_under_arbitrary_updates(
        updates in prop::collection::vec(
            (
                0u32..3,                                  // arrival iface
                0u8..3,                                   // sending neighbor
                prop::collection::vec((0u8..6, 0u32..200), 0..6), // (dest, metric)
                0u64..40,                                 // dt
            ),
            1..50
        )
    ) {
        let cfg = DvConfig { infinity: 64, ..DvConfig::default() };
        let mut e = DvEngine::from_parts(me(), vec![1, 3, 7], cfg);
        e.add_local_dest(dest(5)); // one destination is ours
        let mut now = 0u64;
        for (iface, nb, routes, dt) in updates {
            now += dt;
            let update = DvUpdate {
                routes: routes
                    .iter()
                    .map(|&(d, m)| DvRoute { dst: dest(d), metric: m })
                    .collect(),
            };
            e.on_message(
                SimTime(now),
                IfaceId(iface),
                neighbor(nb),
                &Message::DvUpdate(update),
            );
            e.tick(SimTime(now));

            // Invariants:
            prop_assert!(e.route(me()).is_none(), "route to self");
            prop_assert!(e.route(dest(5)).is_none(), "route to a local dest");
            for d in 0..6u8 {
                if let Some(r) = e.route(dest(d)) {
                    prop_assert!(r.metric < 64, "unreachable metric leaked");
                    prop_assert!((r.iface.0) < 3, "phantom interface");
                }
            }
            // Split horizon with poisoned reverse on every interface.
            for i in 0..3u32 {
                let adv = e.update_for_iface(IfaceId(i));
                for r in &adv.routes {
                    if let Some(cur) = e.route(r.dst) {
                        if cur.iface == IfaceId(i) {
                            prop_assert_eq!(
                                r.metric,
                                INFINITY_METRIC,
                                "reverse not poisoned on if{}", i
                            );
                        }
                    }
                }
            }
        }
        // Total silence: every learned route must eventually vanish.
        // First tick poisons (metric → ∞, arming the GC timer); a second
        // tick after the GC timeout removes the carcass.
        let horizon = now + 10 * cfg.route_timeout.ticks();
        e.tick(SimTime(horizon));
        e.tick(SimTime(horizon + cfg.gc_timeout.ticks() + 1));
        prop_assert_eq!(e.table_size(), 0, "routes must drain without refreshes");
    }
}
