//! Criterion micro-benchmarks for the performance-critical paths:
//!
//! * wire encode/decode (every packet on every simulated link pays this);
//! * the PIM engine's data-forwarding fast path and join/prune processing;
//! * the graph machinery behind the Figure-2 Monte-Carlo study (Dijkstra,
//!   all-pairs, optimal-center search, flow counting);
//! * a complete end-to-end protocol simulation (the unit of cost of the
//!   overhead experiment).
//!
//! Run: `cargo bench -p bench`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::{cbt_link_flows, optimal_center_tree, spt_link_flows, GroupSpec};
use netsim::{IfaceId, SimTime};
use pim::{Engine, PimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unicast::{OracleRib, RouteEntry};
use wire::pim::{GroupEntry, JoinPrune, SourceEntry};
use wire::{Addr, Group, Message};

fn bench_wire(c: &mut Criterion) {
    let msg = Message::PimJoinPrune(JoinPrune {
        upstream_neighbor: Addr::new(10, 0, 0, 1),
        holdtime: 180,
        groups: (0..8)
            .map(|i| GroupEntry {
                group: Group::test(i),
                joins: vec![
                    SourceEntry::shared_tree(Addr::new(10, 0, 0, 9)),
                    SourceEntry::source(Addr::new(10, 0, 7, 10)),
                ],
                prunes: vec![SourceEntry::source_on_rp_tree(Addr::new(10, 0, 8, 10))],
            })
            .collect(),
    });
    c.bench_function("wire/join_prune_encode", |b| {
        b.iter(|| black_box(&msg).encode())
    });
    let buf = msg.encode();
    c.bench_function("wire/join_prune_decode", |b| {
        b.iter(|| Message::decode(black_box(&buf)).expect("valid"))
    });
    let header = wire::ip::Header {
        proto: wire::ip::Protocol::Data,
        ttl: 32,
        src: Addr::new(10, 0, 1, 10),
        dst: Group::test(1).addr(),
    };
    let pkt = header.encap(&[0u8; 64]);
    c.bench_function("wire/ip_decap", |b| {
        b.iter(|| wire::ip::Header::decap(black_box(&pkt)).expect("valid"))
    });
}

/// A PIM engine warmed up with a shared tree + an SPT entry, for
/// forwarding-path benchmarks.
fn warmed_engine() -> (Engine, OracleRib, Addr, Group) {
    let me = Addr::new(10, 0, 1, 1);
    let rp = Addr::new(10, 0, 9, 1);
    let src = Addr::new(10, 0, 7, 10);
    let group = Group::test(1);
    let mut rib = OracleRib::empty(me);
    rib.insert(
        rp,
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp,
            metric: 1,
        },
    );
    rib.insert(
        src,
        RouteEntry {
            iface: IfaceId(2),
            next_hop: Addr::new(10, 0, 7, 1),
            metric: 1,
        },
    );
    let mut e = Engine::new(me, 4, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(group, vec![rp]);
    e.local_member_joined(SimTime(0), group, IfaceId(0), &rib);
    // Create and confirm the SPT entry.
    e.on_data(SimTime(1), IfaceId(1), src, group, b"x", &rib);
    e.on_data(SimTime(2), IfaceId(2), src, group, b"x", &rib);
    (e, rib, src, group)
}

fn bench_engine(c: &mut Criterion) {
    let (mut e, rib, src, group) = warmed_engine();
    let payload = [0u8; 64];
    c.bench_function("pim/on_data_spt_fastpath", |b| {
        let mut t = 10u64;
        b.iter(|| {
            t += 1;
            e.on_data(
                SimTime(t),
                IfaceId(2),
                src,
                group,
                black_box(&payload),
                &rib,
            )
        })
    });

    let jp = JoinPrune {
        upstream_neighbor: Addr::new(10, 0, 1, 1),
        holdtime: 180,
        groups: vec![GroupEntry::join(
            group,
            SourceEntry::shared_tree(Addr::new(10, 0, 9, 1)),
        )],
    };
    let (mut e2, rib2, _, _) = warmed_engine();
    c.bench_function("pim/on_join_prune_refresh", |b| {
        let mut t = 10u64;
        b.iter(|| {
            t += 1;
            e2.on_join_prune(
                SimTime(t),
                IfaceId(3),
                Addr::new(10, 0, 2, 1),
                black_box(&jp),
                &rib2,
            )
        })
    });

    let (mut e3, rib3, _, _) = warmed_engine();
    c.bench_function("pim/tick_idle", |b| {
        let mut t = 10u64;
        b.iter(|| {
            t += 1; // sub-refresh cadence: timers scanned, nothing fires
            e3.tick(SimTime(t), &rib3)
        })
    });
}

fn bench_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 50,
            avg_degree: 4.0,
            delay_range: (1, 10),
        },
        &mut rng,
    );
    c.bench_function("graph/dijkstra_50n", |b| {
        b.iter(|| graph::algo::dijkstra(black_box(&g), NodeId(0)))
    });
    c.bench_function("graph/all_pairs_50n", |b| {
        b.iter(|| AllPairs::new(black_box(&g)))
    });

    let ap = AllPairs::new(&g);
    let spec = GroupSpec::random(50, 10, 10, &mut rng);
    c.bench_function("mctree/optimal_center_50n_10m", |b| {
        b.iter(|| optimal_center_tree(black_box(&g), &ap, &spec.members))
    });

    let groups: Vec<GroupSpec> = (0..20)
        .map(|_| GroupSpec::random(50, 40, 32, &mut rng))
        .collect();
    c.bench_function("mctree/spt_flows_20groups", |b| {
        b.iter(|| spt_link_flows(black_box(&g), &ap, &groups))
    });
    c.bench_function("mctree/cbt_flows_20groups", |b| {
        b.iter(|| {
            cbt_link_flows(black_box(&g), &ap, &groups, |spec| {
                mctree::flows::one_center(&g, &ap, &spec.members)
            })
        })
    });
}

fn bench_sim(c: &mut Criterion) {
    // One full protocol scenario end to end (build + run), the unit of
    // cost for the overhead experiment.
    let mut rng = StdRng::seed_from_u64(3);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 20,
            avg_degree: 3.5,
            delay_range: (1, 5),
        },
        &mut rng,
    );
    c.bench_function("sim/pim_scenario_20n", |b| {
        b.iter(|| {
            bench::run_protocol_sim(
                black_box(&g),
                bench::Proto::PimSpt,
                &[bench::Workload {
                    group: Group::test(1),
                    members: vec![NodeId(2), NodeId(9), NodeId(17)],
                    senders: vec![NodeId(9)],
                    rendezvous: NodeId(0),
                    population: 1,
                }],
                5,
                1,
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wire, bench_engine, bench_graph, bench_sim
);
criterion_main!(benches);
