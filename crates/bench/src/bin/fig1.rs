//! **Figure 1** — the motivating three-domain example (§1.3).
//!
//! Three domains A, B, C joined by an expensive backbone; one group
//! member in each domain; sources in all three domains.
//!
//! * Fig 1(a)/(b): with DVMRP, a source's packets are periodically
//!   broadcast through the entire internet and pruned back — count how
//!   many links carry data vs how many are actually on the member tree.
//! * Fig 1(c): with CBT, every source's traffic funnels through the core
//!   in domain A — the bold "traffic concentration" path. Compare the
//!   hottest link's load against PIM's source-specific trees, and the
//!   inter-domain (Y→Z style) latency of CBT vs PIM-SPT.
//!
//! Run: `cargo run -p bench --release --bin fig1 [--seed N]`

use bench::{cli, run_protocol_sim, Proto, Workload};
use graph::gen::three_domains;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wire::Group;

const DOMAIN_SIZE: usize = 6;
const PACKETS: u64 = 12;

fn main() {
    let args = cli::parse(1);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let (g, members, backbone_rp) = three_domains(DOMAIN_SIZE, &mut rng);
    println!(
        "# Figure 1: three-domain internet ({} routers, {} links).",
        g.node_count(),
        g.edge_count()
    );
    println!(
        "# One member per domain (routers {:?}); every member's site also sends;",
        members
    );
    println!("# RP/core on backbone router {backbone_rp} (domain A's border, as in Fig 1(c)).");
    println!();

    let w = Workload {
        group: Group::test(1),
        members: members.to_vec(),
        senders: members.to_vec(),
        rendezvous: backbone_rp,
        population: 1,
    };

    println!(
        "{:<11} {:>6} {:>7} {:>7} {:>6} {:>6} {:>11} {:>8} {:>7} {:>6}",
        "protocol", "state", "ctrl", "data", "links", "hot", "dlv/exp", "events", "timers", "stale"
    );
    let mut results = Vec::new();
    for proto in [Proto::Dvmrp, Proto::Cbt, Proto::PimShared, Proto::PimSpt] {
        let r = run_protocol_sim(&g, proto, std::slice::from_ref(&w), PACKETS, args.seed);
        println!(
            "{:<11} {:>6} {:>7} {:>7} {:>6} {:>6} {:>5}/{:<5} {:>8} {:>7} {:>6}",
            proto.name(),
            r.state_entries,
            r.control_pkts,
            r.data_pkts,
            r.data_links_used,
            r.max_link_data,
            r.deliveries,
            r.expected_deliveries,
            r.events_dispatched,
            r.timers_fired,
            r.timers_skipped_stale
        );
        results.push((proto, r));
    }
    println!();
    println!("# Event loop: `events` = all dispatches (packet deliveries + timer wakeups");
    println!("# + script steps), `timers` = wakeups fired, `stale` = cancelled/rescheduled");
    println!("# heap entries skipped. Wakeups are deadline-driven, so events track protocol");
    println!("# work, not simulated wall-clock.");
    println!();

    let total_links = g.edge_count();
    let dvmrp = &results[0].1;
    let cbt = &results[1].1;
    let pim_spt = &results[3].1;
    // The Fig 1(c) bold path runs across the backbone triangle —
    // three_domains() adds those three links first, so they are edges
    // 0, 1, 2. (Domain border links carry send+receive load that is
    // identical under every tree shape; the triangle is where tree
    // shape shows.)
    let backbone_hot = |r: &bench::SimResult| r.link_data[..3].iter().copied().max().unwrap_or(0);
    println!(
        "# Fig 1(a)->(b): DVMRP put data on {} of {} router-router links (broadcast +",
        dvmrp.data_links_used, total_links
    );
    println!(
        "#   periodic grow-back re-floods), versus {} links for PIM-SPT: sparse-mode savings.",
        pim_spt.data_links_used
    );
    println!("# Fig 1(c): CBT funnels all senders through the core: the hottest inter-domain");
    println!(
        "#   backbone link carried {} data packets under CBT vs {} under PIM-SPT,",
        backbone_hot(cbt),
        backbone_hot(pim_spt)
    );
    println!("#   the traffic-concentration effect on the bold path of Fig 1(c).");
}
