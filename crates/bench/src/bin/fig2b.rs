//! **Figure 2(b)** — traffic concentration: maximum number of traffic
//! flows on any link, shortest-path trees vs center-based trees.
//!
//! Paper setup (§1.3): "In each network, there were 300 active groups all
//! having 40 members, of which 32 members were also senders. We measured
//! the number of traffic flows on each link of the network, then recorded
//! the maximum number within the network. For each node degree between
//! three and eight, 500 random networks were generated, and the measured
//! maximum number of traffic flows were averaged. ... It is clear from
//! this experiment that CBT exhibits greater traffic concentrations."
//!
//! Run: `cargo run -p bench --release --bin fig2b [--trials N] [--seed N]
//! [--threads N] [--groups N] [--smoke] [--json PATH]`
//! (The full 500×6 sweep takes a while; `--quick` runs 50×6 and `--smoke`
//! runs 3×6 with 60 groups.)
//!
//! Trials fan out over a deterministic scoped-thread pool: trial `t` of
//! degree `d` draws from `StdRng::seed_from_u64(par::mix(seed, d, t))`,
//! so stdout is bit-identical for every `--threads` value.

use bench::{cli, perf, stats};
use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use mctree::flows::{max_flows, one_center};
use mctree::{cbt_link_flows, spt_link_flows, GroupSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 50;
const MEMBERS: usize = 40;
const SENDERS: usize = 32;

/// One Monte-Carlo network: (max SPT flows, max CBT flows).
fn trial(seed: u64, degree: u32, trial_idx: usize, groups: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, degree as u64, trial_idx as u64));
    let g = random_connected(
        &RandomGraphParams {
            nodes: NODES,
            avg_degree: degree as f64,
            delay_range: (1, 10),
        },
        &mut rng,
    );
    let ap = AllPairs::new(&g);
    let specs: Vec<GroupSpec> = (0..groups)
        .map(|_| GroupSpec::random(NODES, MEMBERS, SENDERS, &mut rng))
        .collect();
    let spt = spt_link_flows(&g, &ap, &specs);
    let cbt = cbt_link_flows(&g, &ap, &specs, |spec| one_center(&g, &ap, &spec.members));
    (max_flows(&spt) as f64, max_flows(&cbt) as f64)
}

/// The full degree sweep; returns the printable rows.
fn sweep(args: &cli::Args, threads: usize, groups: usize) -> Vec<String> {
    (3..=8u32)
        .map(|degree| {
            let pairs = par::run_trials(threads, args.trials, |t| {
                trial(args.seed, degree, t, groups)
            });
            let spt_max: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let cbt_max: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let s = stats(&spt_max);
            let c = stats(&cbt_max);
            format!(
                "{:<8} {:>8} {:>12.1} {:>10.1} {:>12.1} {:>10.1} {:>8.3}",
                degree,
                args.trials,
                s.mean,
                s.sd,
                c.mean,
                c.sd,
                c.mean / s.mean
            )
        })
        .collect()
}

fn main() {
    let args = cli::parse_smoke(500, 3);
    let groups = args.groups.unwrap_or(if args.smoke { 60 } else { 300 });
    println!("# Figure 2(b): max traffic flows on any link, SPT vs center-based tree");
    println!(
        "# {NODES}-node networks, {groups} groups x {MEMBERS} members ({SENDERS} senders), {} networks per degree, seed {}",
        args.trials, args.seed
    );
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "degree", "trials", "spt_mean", "spt_sd", "cbt_mean", "cbt_sd", "cbt/spt"
    );
    let (rows, wall_ms) = perf::time(|| sweep(&args, args.threads, groups));
    for row in &rows {
        println!("{row}");
    }
    println!("# Paper's shape: center-based trees concentrate noticeably more flows on the");
    println!("# hottest link at every degree, with both curves falling as degree rises.");

    if let Some(path) = &args.json {
        let (rows_1t, wall_ms_1t) = if args.threads == 1 {
            (rows.clone(), wall_ms)
        } else {
            perf::time(|| sweep(&args, 1, groups))
        };
        assert_eq!(rows, rows_1t, "thread fan-out changed the results");
        let json = format!(
            "{{\n  \"bench\": \"fig2b\", \"seed\": {}, \"groups\": {groups}, {}\n}}\n",
            args.seed,
            perf::timing_fields(args.threads, args.trials * 6, wall_ms, wall_ms_1t),
        );
        perf::write_json(path, &json);
    }
}
