//! **Figure 2(b)** — traffic concentration: maximum number of traffic
//! flows on any link, shortest-path trees vs center-based trees.
//!
//! Paper setup (§1.3): "In each network, there were 300 active groups all
//! having 40 members, of which 32 members were also senders. We measured
//! the number of traffic flows on each link of the network, then recorded
//! the maximum number within the network. For each node degree between
//! three and eight, 500 random networks were generated, and the measured
//! maximum number of traffic flows were averaged. ... It is clear from
//! this experiment that CBT exhibits greater traffic concentrations."
//!
//! Run: `cargo run -p bench --release --bin fig2b [--trials N] [--seed N]`
//! (The full 500×6 sweep takes a few minutes; `--quick` runs 50×6.)

use bench::{cli, stats};
use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use mctree::flows::{max_flows, one_center};
use mctree::{cbt_link_flows, spt_link_flows, GroupSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 50;
const GROUPS: usize = 300;
const MEMBERS: usize = 40;
const SENDERS: usize = 32;

fn main() {
    let args = cli::parse(500);
    println!("# Figure 2(b): max traffic flows on any link, SPT vs center-based tree");
    println!(
        "# {NODES}-node networks, {GROUPS} groups x {MEMBERS} members ({SENDERS} senders), {} networks per degree, seed {}",
        args.trials, args.seed
    );
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "degree", "trials", "spt_mean", "spt_sd", "cbt_mean", "cbt_sd", "cbt/spt"
    );
    for degree in 3..=8u32 {
        let mut rng = StdRng::seed_from_u64(args.seed ^ (degree as u64) << 32);
        let mut spt_max = Vec::with_capacity(args.trials);
        let mut cbt_max = Vec::with_capacity(args.trials);
        for _ in 0..args.trials {
            let g = random_connected(
                &RandomGraphParams {
                    nodes: NODES,
                    avg_degree: degree as f64,
                    delay_range: (1, 10),
                },
                &mut rng,
            );
            let ap = AllPairs::new(&g);
            let groups: Vec<GroupSpec> = (0..GROUPS)
                .map(|_| GroupSpec::random(NODES, MEMBERS, SENDERS, &mut rng))
                .collect();
            let spt = spt_link_flows(&g, &ap, &groups);
            let cbt = cbt_link_flows(&g, &ap, &groups, |spec| one_center(&g, &ap, &spec.members));
            spt_max.push(max_flows(&spt) as f64);
            cbt_max.push(max_flows(&cbt) as f64);
        }
        let s = stats(&spt_max);
        let c = stats(&cbt_max);
        println!(
            "{:<8} {:>8} {:>12.1} {:>10.1} {:>12.1} {:>10.1} {:>8.3}",
            degree,
            args.trials,
            s.mean,
            s.sd,
            c.mean,
            c.sd,
            c.mean / s.mean
        );
    }
    println!("# Paper's shape: center-based trees concentrate noticeably more flows on the");
    println!("# hottest link at every degree, with both curves falling as degree rises.");
}
