//! **OVH** — the §1/§2 efficiency claims, measured end-to-end through the
//! protocol implementations: "Efficiency is measured in terms of the
//! state, control message processing, and data packet processing required
//! across the entire network in order to deliver data packets to the
//! members of the group."
//!
//! One sparse group lives on a 50-node internet while the member count
//! sweeps from 2 to 40 routers. For each density and each protocol
//! (PIM-SPT, PIM shared-tree-only, DVMRP, CBT) the harness reports:
//!
//! * `state`  — multicast forwarding entries summed over all routers,
//!   sampled while traffic flows (dense mode puts state *everywhere*);
//! * `ctrl`   — control packets transmitted network-wide;
//! * `data`   — data-packet link transits (dense mode floods + re-floods);
//! * `links`  — distinct links that carried data (tree footprint);
//! * `hot`    — data packets on the hottest link (traffic concentration);
//! * `dlv/exp`— packets delivered vs expected, and `dup` — duplicate
//!   receptions. PIM may lose or duplicate a packet inside the
//!   register→native transition window (§3.3's "minimizes the chance of
//!   losing data packets during the transition"); steady state is exactly
//!   lossless for every protocol.
//! * `events`/`timers` — simulator event-loop dispatches and timer wakeups
//!   (deadline-driven, so these track protocol work, not wall-clock).
//!
//! A second table attributes `ctrl` to its control sub-protocol
//! (multicast routing vs IGMP vs the unicast substrate), classified
//! once at tx time by [`netsim::CtrlProto`] — the paper's per-protocol
//! control-cost axis.
//!
//! With `--congestion` every router-router link is capped (rate
//! [`CONGESTED_RATE`] bytes/tick, queue [`CONGESTED_QUEUE`] bytes,
//! control priority on) and the table gains the shed-load columns:
//! `qdrop` (data/control tail drops), `ecn` (congestion marks), and
//! `peakq` (deepest queue in bytes). Control drops staying 0 under
//! overload is the no-starvation property, measured per protocol.
//!
//! Run: `cargo run -p bench --release --bin overhead [--trials N]
//! [--seed N] [--congestion]`

use bench::{cli, run_protocol_sim_opts, stats, Proto, SimOptions, Workload};
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::GroupSpec;
use netsim::{CtrlProto, LinkCapacity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wire::Group;

const NODES: usize = 50;
const PACKETS: u64 = 12;
/// `--congestion`: per-tick byte rate of every router-router link.
const CONGESTED_RATE: u64 = 4;
/// `--congestion`: transmit-queue bound in bytes.
const CONGESTED_QUEUE: u64 = 96;

fn main() {
    let args = cli::parse(10);
    let capacity = if args.congestion {
        LinkCapacity {
            bytes_per_tick: CONGESTED_RATE,
            queue_bytes: CONGESTED_QUEUE,
            ecn_bytes: CONGESTED_QUEUE / 2,
            ctrl_priority: true,
        }
    } else {
        LinkCapacity::UNLIMITED
    };
    println!("# Overhead comparison on a {NODES}-node internet, one group, {PACKETS} pkts/sender,");
    println!(
        "# averaged over {} topologies (seed {}).",
        args.trials, args.seed
    );
    if args.congestion {
        println!(
            "# links capped at {CONGESTED_RATE} B/tick, queue {CONGESTED_QUEUE} B, \
             ctrl priority on (--congestion)."
        );
    }
    println!(
        "{:<10} {:<11} {:>8} {:>9} {:>9} {:>7} {:>7} {:>11} {:>5} {:>9} {:>8} {:>9} {:>5} {:>6}",
        "members",
        "protocol",
        "state",
        "ctrl",
        "data",
        "links",
        "hot",
        "dlv/exp",
        "dup",
        "events",
        "timers",
        "qdrop",
        "ecn",
        "peakq"
    );
    let mut attribution: Vec<(usize, &'static str, [u64; 6])> = Vec::new();
    for &members in &[2usize, 5, 10, 20, 40] {
        let senders = members.min(4);
        for proto in [Proto::PimSpt, Proto::PimShared, Proto::Cbt, Proto::Dvmrp] {
            let mut state = Vec::new();
            let mut ctrl = Vec::new();
            let mut data = Vec::new();
            let mut links = Vec::new();
            let mut hot = Vec::new();
            let mut dlv = 0u64;
            let mut exp = 0u64;
            let mut dup = 0u64;
            let mut events = Vec::new();
            let mut timers = Vec::new();
            let mut ctrl_by = [0u64; 6];
            let mut qdrop_data = 0u64;
            let mut qdrop_ctrl = 0u64;
            let mut ecn = 0u64;
            let mut peakq = 0u64;
            for trial in 0..args.trials {
                let mut rng =
                    StdRng::seed_from_u64(args.seed ^ ((members as u64) << 24) ^ trial as u64);
                let g = random_connected(
                    &RandomGraphParams {
                        nodes: NODES,
                        avg_degree: 4.0,
                        delay_range: (1, 10),
                    },
                    &mut rng,
                );
                let spec = GroupSpec::random(NODES, members, senders, &mut rng);
                let w = Workload {
                    group: Group::test(1),
                    members: spec.members.clone(),
                    senders: spec.senders.clone(),
                    rendezvous: NodeId(rng.gen_range(0..NODES as u32)),
                    population: 1,
                };
                let r = run_protocol_sim_opts(
                    &g,
                    proto,
                    &[w],
                    &SimOptions {
                        packets_per_sender: PACKETS,
                        seed: args.seed ^ trial as u64,
                        capacity,
                        ..SimOptions::default()
                    },
                );
                state.push(r.state_entries as f64);
                ctrl.push(r.control_pkts as f64);
                data.push(r.data_pkts as f64);
                links.push(r.data_links_used as f64);
                hot.push(r.max_link_data as f64);
                dlv += r.deliveries;
                exp += r.expected_deliveries;
                dup += r.duplicates;
                events.push(r.events_dispatched as f64);
                timers.push(r.timers_fired as f64);
                for (slot, (_, n)) in ctrl_by.iter_mut().zip(r.control_breakdown) {
                    *slot += n;
                }
                qdrop_data += r.queue_drops_data;
                qdrop_ctrl += r.queue_drops_ctrl;
                ecn += r.ecn_marks;
                peakq = peakq.max(r.peak_queue_bytes);
            }
            attribution.push((members, proto.name(), ctrl_by));
            println!(
                "{:<10} {:<11} {:>8.1} {:>9.0} {:>9.0} {:>7.1} {:>7.1} {:>5}/{:<5} {:>5} {:>9.0} {:>8.0} {:>4}/{:<4} {:>5} {:>6}",
                members,
                proto.name(),
                stats(&state).mean,
                stats(&ctrl).mean,
                stats(&data).mean,
                stats(&links).mean,
                stats(&hot).mean,
                dlv,
                exp,
                dup,
                stats(&events).mean,
                stats(&timers).mean,
                qdrop_data,
                qdrop_ctrl,
                ecn,
                peakq
            );
        }
        println!();
    }
    println!("# Control-cost attribution (mean pkts/run by sub-protocol, tx-time classified):");
    print!("{:<10} {:<11}", "members", "protocol");
    for p in CtrlProto::ALL {
        print!(" {:>8}", p.name());
    }
    println!();
    for (members, proto, ctrl_by) in &attribution {
        print!("{members:<10} {proto:<11}");
        for n in ctrl_by {
            print!(" {:>8.0}", *n as f64 / args.trials as f64);
        }
        println!();
    }
    println!();
    println!("# Expected shape (paper §1.2): for sparse membership DVMRP pays data packets and");
    println!("# state on links/routers that lead to no members (flood + periodic re-flood),");
    println!("# while PIM's explicit joins keep data and state on the distribution tree only.");
    println!("# CBT and PIM-shared concentrate traffic (higher `hot`) vs PIM-SPT.");
    println!("# PIM may miss/duplicate a packet in the register->native transition window —");
    println!("# the paper's own caveat (section 3.3: the SPT bit *minimizes* the chance of");
    println!("# losing packets during the transition; footnote 7). Steady state is lossless.");
}
