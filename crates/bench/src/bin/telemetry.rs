//! **TEL** — telemetry sink overhead on the simulator event loop.
//!
//! The telemetry layer's contract is *zero overhead when disabled*: a
//! disabled [`telemetry::Telem`] handle reduces every emission site to
//! one `None` branch and never constructs an event. This harness
//! measures that claim end-to-end: the full scenario stack (all three
//! protocols × the explorer's topology zoo, with fault schedules and
//! data trains) runs under four sink configurations —
//!
//! * `disabled` — no sink attached (the production default);
//! * `flight`   — bounded per-node ring buffer of rendered events;
//! * `jsonl`    — JSON-lines stream into an in-memory buffer;
//! * `coverage` — the coverage-map fold driving `scenario::search`;
//! * `trace`    — the causal-index fold behind `trace why` (provenance
//!   DAG over every dispatch, silent ones included);
//! * `full`     — flight + jsonl + metrics + coverage + trace fanned
//!   out (what `scenario::run_case` attaches).
//!
//! Reported metric: simulator events dispatched per wall-clock second,
//! mean ± sd over trials, plus each mode's relative slowdown vs
//! `disabled`. Results land in `BENCH_telemetry.json` — the perf
//! trajectory baseline later PRs must not regress. Wall-clock time is
//! used *only* here, in the measurement harness; nothing inside the
//! simulation ever reads it.
//!
//! Run: `cargo run -p bench --release --bin telemetry [--trials N] [--seed N]`

use bench::{cli, stats};
use netsim::{NodeIdx, SimTime};
use scenario::{build_net, random_schedule, topologies, Protocol, Substrate};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use telemetry::{
    CausalIndex, CoverageSink, Fanout, FlightRecorder, JsonlSink, MetricsAggregator, SharedSink,
    FLIGHT_RECORDER_CAP,
};
use wire::Group;

/// When the measured run stops (the explorer's quiescence checkpoint).
const RUN_UNTIL: u64 = 6000;
/// Pre-fault data-train length — heavier than the explorer's so the
/// event loop, not setup, dominates the measurement.
const TRAIN: u64 = 100;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Disabled,
    Flight,
    Jsonl,
    Coverage,
    Trace,
    Full,
}

impl Mode {
    const ALL: [Mode; 6] = [
        Mode::Disabled,
        Mode::Flight,
        Mode::Jsonl,
        Mode::Coverage,
        Mode::Trace,
        Mode::Full,
    ];

    fn name(self) -> &'static str {
        match self {
            Mode::Disabled => "disabled",
            Mode::Flight => "flight",
            Mode::Jsonl => "jsonl",
            Mode::Coverage => "coverage",
            Mode::Trace => "trace",
            Mode::Full => "full",
        }
    }

    fn sink(self) -> Option<SharedSink> {
        match self {
            Mode::Disabled => None,
            Mode::Flight => Some(Arc::new(Mutex::new(FlightRecorder::new(
                FLIGHT_RECORDER_CAP,
            )))),
            Mode::Jsonl => Some(Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())))),
            Mode::Coverage => Some(Arc::new(Mutex::new(CoverageSink::new(0)))),
            Mode::Trace => Some(Arc::new(Mutex::new(CausalIndex::new()))),
            Mode::Full => {
                let mut fan = Fanout::new();
                fan.push(Arc::new(Mutex::new(FlightRecorder::new(
                    FLIGHT_RECORDER_CAP,
                ))));
                fan.push(Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new()))));
                fan.push(Arc::new(Mutex::new(MetricsAggregator::new())));
                fan.push(Arc::new(Mutex::new(CoverageSink::new(0))));
                fan.push(Arc::new(Mutex::new(CausalIndex::new())));
                Some(Arc::new(Mutex::new(fan)))
            }
        }
    }
}

/// Run the whole suite (every topology × every protocol) once under
/// `mode`, returning (events dispatched, wall seconds). The seeds are
/// identical across modes, so every mode executes the same simulation
/// work — only the sink differs.
fn run_suite(mode: Mode, seed: u64) -> (u64, f64) {
    let group = Group::test(1);
    let mut events = 0u64;
    let mut secs = 0.0f64;
    for topo in &topologies() {
        let schedule = random_schedule(topo, seed, false);
        for protocol in Protocol::ALL {
            let mut net = build_net(
                &topo.graph,
                protocol,
                Substrate::Oracle,
                group,
                topo.rendezvous,
                &topo.host_routers,
                seed,
            );
            if let Some(sink) = mode.sink() {
                net.attach_telemetry(sink);
            }
            let host_nodes: Vec<NodeIdx> = net.hosts.iter().map(|&(n, _)| n).collect();
            schedule.install(&mut net.world, &host_nodes, group);
            net.send_at(0, 100, TRAIN, 10);

            let t0 = Instant::now();
            net.world.run_until(SimTime(RUN_UNTIL));
            secs += t0.elapsed().as_secs_f64();
            events += net.world.counters().events_dispatched();
        }
    }
    (events, secs)
}

fn main() {
    let args = cli::parse(20);
    println!(
        "# Telemetry sink overhead: {} trials x (3 topologies x 3 protocols), seed {}.",
        args.trials, args.seed
    );
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>10}",
        "sink", "events/s", "sd", "wall ms", "vs off"
    );

    let mut rates: Vec<(Mode, Vec<f64>, Vec<f64>)> = Vec::new();
    for mode in Mode::ALL {
        let mut eps = Vec::new();
        let mut wall_ms = Vec::new();
        for trial in 0..args.trials {
            let (events, secs) = run_suite(mode, args.seed + trial as u64);
            eps.push(events as f64 / secs);
            wall_ms.push(secs * 1e3);
        }
        rates.push((mode, eps, wall_ms));
    }

    let base = stats(&rates[0].1).mean;
    let mut json = String::from("{\n  \"bench\": \"telemetry-sink-overhead\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"trials\": {}, \"seed\": {}, \"run_until\": {RUN_UNTIL}, \
         \"train\": {TRAIN}, \"suites\": \"3 topologies x 3 protocols per trial\"}},\n",
        args.trials, args.seed
    ));
    json.push_str("  \"results\": [\n");
    for (i, (mode, eps, wall_ms)) in rates.iter().enumerate() {
        let s = stats(eps);
        let w = stats(wall_ms);
        let rel = s.mean / base - 1.0;
        println!(
            "{:<10} {:>14.0} {:>12.0} {:>12.2} {:>+9.1}%",
            mode.name(),
            s.mean,
            s.sd,
            w.mean,
            rel * 100.0
        );
        json.push_str(&format!(
            "    {{\"sink\": \"{}\", \"events_per_sec_mean\": {:.0}, \
             \"events_per_sec_sd\": {:.0}, \"wall_ms_mean\": {:.3}, \
             \"slowdown_vs_disabled\": {:.4}}}{}\n",
            mode.name(),
            s.mean,
            s.sd,
            w.mean,
            rel,
            if i + 1 == rates.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    // "No measurable regression" gate: with no sink attached, every
    // emission site is one `None` branch, so the disabled mode must be
    // the fastest up to sampling noise (two standard deviations).
    let off = stats(&rates[0].1);
    let best = rates
        .iter()
        .map(|(_, eps, _)| stats(eps).mean)
        .fold(0.0f64, f64::max);
    json.push_str(&format!(
        "  \"disabled_within_noise\": {}\n}}\n",
        off.mean >= best - 2.0 * off.sd
    ));

    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    println!("# wrote BENCH_telemetry.json");
}
