//! **Ablations** of the two design choices the paper defends in
//! footnote 4:
//!
//! 1. **Soft state vs explicit reliability.** PIM "uses periodic refreshes
//!    as its primary means of reliability ... it can introduce additional
//!    message protocol overhead"; CBT uses hop-by-hop acks. Sweep the
//!    control-plane loss rate and compare delivery and control cost for
//!    PIM-shared vs CBT (the protocols with comparable tree shapes).
//! 2. **The refresh period.** Faster refresh = more control packets but
//!    faster recovery of lost state. Sweep PIM's refresh period under
//!    fixed 15% loss.
//!
//! Run: `cargo run -p bench --release --bin ablation [--trials N]
//! [--seed N] [--threads N]`
//!
//! Trials fan out over a deterministic scoped-thread pool. Trial `t`
//! always uses scenario seed `par::mix(seed, 0, t)` and world seed
//! `par::mix(seed, 1, t)` — shared across every sweep point so the same
//! internets and schedules are compared under each knob, and output is
//! bit-identical for every `--threads` value.

use bench::{cli, run_protocol_sim_opts, stats, Proto, SimOptions, Workload};
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::GroupSpec;
use netsim::Duration;
use pim::PimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wire::Group;

const NODES: usize = 30;
const MEMBERS: usize = 6;
const PACKETS: u64 = 20;

fn scenario(seed: u64, trial: u64) -> (graph::Graph, Workload) {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 0, trial));
    let g = random_connected(
        &RandomGraphParams {
            nodes: NODES,
            avg_degree: 3.5,
            delay_range: (1, 6),
        },
        &mut rng,
    );
    let spec = GroupSpec::random(NODES, MEMBERS, 2, &mut rng);
    let w = Workload {
        group: Group::test(1),
        members: spec.members.clone(),
        senders: spec.senders.clone(),
        rendezvous: NodeId(rng.gen_range(0..NODES as u32)),
        population: 1,
    };
    (g, w)
}

/// Per-trial result, aggregated after the fan-out joins.
struct TrialOut {
    delivered: u64,
    expected: u64,
    ctrl: f64,
}

/// Run one sweep point (`trials` simulations) through the deterministic
/// fan-out and fold the results.
fn run_point(args: &cli::Args, proto: Proto, loss: f64, pim: PimConfig) -> (u64, u64, Vec<f64>) {
    let outs = par::run_trials(args.threads, args.trials, |t| {
        let trial = t as u64;
        let (g, w) = scenario(args.seed, trial);
        let r = run_protocol_sim_opts(
            &g,
            proto,
            &[w],
            &SimOptions {
                packets_per_sender: PACKETS,
                seed: par::mix(args.seed, 1, trial),
                link_loss: loss,
                pim,
                threads: 1,
                profile: false,
                ..SimOptions::default()
            },
        );
        TrialOut {
            delivered: r.deliveries,
            expected: r.expected_deliveries,
            ctrl: r.control_pkts as f64,
        }
    });
    let delivered = outs.iter().map(|o| o.delivered).sum();
    let expected = outs.iter().map(|o| o.expected).sum();
    let ctrl = outs.iter().map(|o| o.ctrl).collect();
    (delivered, expected, ctrl)
}

fn main() {
    let args = cli::parse(8);
    println!("# Ablation 1 (footnote 4): soft state (PIM-shared) vs explicit acks (CBT)");
    println!(
        "# under link loss. {NODES}-node internets, {MEMBERS} members/2 senders, {PACKETS} pkts,"
    );
    println!("# {} trials (seed {}).", args.trials, args.seed);
    println!(
        "{:<8} {:<11} {:>10} {:>9} {:>10}",
        "loss", "protocol", "delivered", "ctrl", "ctrl/pkt"
    );
    for loss in [0.0f64, 0.05, 0.15, 0.30] {
        for proto in [Proto::PimShared, Proto::Cbt] {
            let (delivered, expected, ctrl) = run_point(&args, proto, loss, PimConfig::default());
            println!(
                "{:<8} {:<11} {:>6.1}% {:>11.0} {:>10.2}",
                format!("{:.0}%", loss * 100.0),
                proto.name(),
                100.0 * delivered as f64 / expected as f64,
                stats(&ctrl).mean,
                stats(&ctrl).mean / (PACKETS as f64 * 2.0)
            );
        }
    }

    println!();
    println!("# Ablation 2: PIM refresh period under 15% loss — overhead vs resilience.");
    println!("{:<10} {:>10} {:>9}", "refresh", "delivered", "ctrl");
    for refresh in [20u64, 60, 120, 240] {
        let pim = PimConfig {
            refresh_period: Duration(refresh),
            holdtime: Duration(refresh * 3),
            entry_linger: Duration(refresh * 3),
            ..PimConfig::default()
        };
        let (delivered, expected, ctrl) = run_point(&args, Proto::PimShared, 0.15, pim);
        println!(
            "{:<10} {:>6.1}% {:>11.0}",
            format!("{refresh}t"),
            100.0 * delivered as f64 / expected as f64,
            stats(&ctrl).mean
        );
    }
    println!();
    println!("# Reading the numbers: delivered%% tracks raw per-packet link survival —");
    println!("# a data packet crossing ~5 lossy links survives (1-loss)^5 of the time —");
    println!("# for BOTH protocols, i.e. the *control* plane repaired itself perfectly under");
    println!("# loss in both designs; they differ in cost: PIM's periodic refresh is ~5x");
    println!("# CBT's ack/echo traffic and flat in loss (footnote 4's trade, quantified).");
    println!("# Ablation 2: at this trial count delivery is flat in the refresh period");
    println!("# (loss dominates); the robust signal is cost — control traffic rises");
    println!("# steadily as the refresh shortens (~15%% more at 20t than at 240t).");
}
