//! **SPTSW** — the §3.3/§3.10 shared-tree → shortest-path-tree
//! transition, measured packet by packet.
//!
//! A receiver and a high-rate source sit on opposite sides of a diamond
//! whose direct path is shorter than the path through the RP. The
//! experiment sends a numbered packet stream and reports, per switchover
//! policy (§3.3: immediate / after m packets in n seconds / never):
//!
//! * per-packet latency — showing the drop at the moment the transition
//!   completes;
//! * loss and duplication across the transition — the paper's SPT-bit
//!   machinery exists precisely so that "the chance of losing data
//!   packets during the transition" is minimized (§3.3, footnote 7).
//!
//! Run: `cargo run -p bench --release --bin spt_switch [--seed N]`

use bench::cli;
use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, NodeIdx, SimTime, Topology};
use pim::{Engine, PimConfig, PimRouter, SptPolicy};
use unicast::OracleRib;
use wire::Group;

const PACKETS: u64 = 24;
const GAP: u64 = 20;
const SEND_START: u64 = 200;

fn run(policy: SptPolicy, seed: u64) -> Vec<(u64, Option<u64>, usize)> {
    // The e2e diamond: receiver behind n0, source behind n3, RP at n2;
    // direct n0-n3 link (delay 2) beats the RP path (delay 3).
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    g.add_edge(NodeId(0), NodeId(3), 2);
    let topo = Topology::from_graph(&g);
    let rp = router_addr(NodeId(2));
    let group = Group::test(1);
    let r_addr = host_addr(NodeId(0), 0);
    let s_addr = host_addr(NodeId(3), 0);

    let mut ribs = OracleRib::for_all(&g, &topo);
    for (i, rib) in ribs.iter_mut().enumerate() {
        if i != 0 {
            rib.alias_host(r_addr, router_addr(NodeId(0)));
        }
        if i != 3 {
            rib.alias_host(s_addr, router_addr(NodeId(3)));
        }
    }
    let mut it = ribs.into_iter();
    let cfg = PimConfig {
        spt_policy: policy,
        ..PimConfig::default()
    };
    let (mut world, _) = topo.build_world(&g, seed, |plan| {
        let e = Engine::new(plan.addr, plan.ifaces.len(), cfg);
        let mut r = PimRouter::new(e, Box::new(it.next().expect("rib per plan")));
        r.engine_mut().set_rp_mapping(group, vec![rp]);
        Box::new(r)
    });
    let rh = world.add_node(Box::new(HostNode::new(r_addr)));
    let (_l, ifs) = world.add_lan(&[NodeIdx(0), rh], Duration(1));
    world
        .node_mut::<PimRouter>(NodeIdx(0))
        .attach_host_lan(ifs[0], &[r_addr]);
    let sh = world.add_node(Box::new(HostNode::new(s_addr)));
    let (_l, ifs) = world.add_lan(&[NodeIdx(3), sh], Duration(1));
    world
        .node_mut::<PimRouter>(NodeIdx(3))
        .attach_host_lan(ifs[0], &[s_addr]);

    world.at(SimTime(20), move |w| {
        w.call_node(rh, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group);
        });
    });
    for k in 0..PACKETS {
        world.at(SimTime(SEND_START + k * GAP), move |w| {
            w.call_node(sh, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group);
            });
        });
    }
    world.run_until(SimTime(SEND_START + PACKETS * GAP + 500));

    let host: &HostNode = world.node(rh);
    (0..PACKETS)
        .map(|seq| {
            let arrivals: Vec<_> = host
                .received
                .iter()
                .filter(|r| r.seq == seq && r.source == s_addr)
                .collect();
            let latency = arrivals
                .iter()
                .map(|r| r.at.ticks() - (SEND_START + seq * GAP))
                .min();
            (seq, latency, arrivals.len())
        })
        .collect()
}

fn main() {
    let args = cli::parse(1);
    println!("# SPT switchover (paper section 3.3): per-packet latency through the transition.");
    println!("# Diamond topology: RP path delay 5, shortest path delay 4.");
    let policies: [(&str, SptPolicy); 3] = [
        ("immediate", SptPolicy::Immediate),
        (
            "after 6 pkts in 1000t",
            SptPolicy::AfterPackets {
                packets: 6,
                within: Duration(1000),
            },
        ),
        ("never (shared only)", SptPolicy::Never),
    ];
    for (name, policy) in policies {
        let rows = run(policy, args.seed);
        let lat: Vec<String> = rows
            .iter()
            .map(|(_, l, _)| l.map_or("LOST".into(), |v| v.to_string()))
            .collect();
        let lost = rows.iter().filter(|(_, l, _)| l.is_none()).count();
        let dups: usize = rows.iter().map(|(_, _, n)| n.saturating_sub(1)).sum();
        println!();
        println!("policy: {name}");
        println!("  per-packet latency: [{}]", lat.join(", "));
        println!("  lost: {lost}   duplicates: {dups}");
    }
    println!();
    println!("# Expected: 'immediate' shows latency 5 for the first packet(s), then 4 after");
    println!("# the (S,G) join lands; 'after m' switches later; 'never' stays at 5. Zero");
    println!("# loss and zero duplicates in every policy — the SPT-bit transition rules at");
    println!("# work (section 3.5's two exception actions).");
}
