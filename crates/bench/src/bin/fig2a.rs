//! **Figure 2(a)** — ratio of maximum group delay: optimal center-based
//! tree vs shortest-path trees.
//!
//! Paper setup (§1.3): "For each node degree, we tried 500 different
//! 50-node graphs with 10-member groups chosen randomly. ... the maximum
//! delays of core-based trees with optimal core placement are up to 1.4
//! times of the shortest-path trees."
//!
//! Run: `cargo run -p bench --release --bin fig2a [--trials N] [--seed N]`
//!
//! Output: one row per node degree with the mean ratio and its standard
//! deviation (the paper's error bars). Footnote 2 of the paper applies
//! here too: no individual ratio is ever below 1 (see the `min` column);
//! error bars dipping below 1 are symmetric-bar artifacts.

use bench::{cli, stats};
use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use mctree::{optimal_center_tree, spt_max_delay, GroupSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 50;
const MEMBERS: usize = 10;

fn main() {
    let args = cli::parse(500);
    println!("# Figure 2(a): max-delay ratio, optimal center-based tree / shortest-path trees");
    println!(
        "# {NODES}-node random graphs, {MEMBERS}-member groups, {} graphs per degree, seed {}",
        args.trials, args.seed
    );
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "degree", "trials", "mean_ratio", "sd", "min", "max"
    );
    for degree in 3..=8u32 {
        let mut rng = StdRng::seed_from_u64(args.seed ^ (degree as u64) << 32);
        let mut ratios = Vec::with_capacity(args.trials);
        for _ in 0..args.trials {
            let g = random_connected(
                &RandomGraphParams {
                    nodes: NODES,
                    avg_degree: degree as f64,
                    delay_range: (1, 10),
                },
                &mut rng,
            );
            let ap = AllPairs::new(&g);
            let spec = GroupSpec::random(NODES, MEMBERS, MEMBERS, &mut rng);
            let spt = spt_max_delay(&ap, &spec.members) as f64;
            let (_, center) = optimal_center_tree(&g, &ap, &spec.members);
            ratios.push(center as f64 / spt);
        }
        let s = stats(&ratios);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<8} {:>8} {:>12.4} {:>10.4} {:>8.3} {:>8.3}",
            degree, args.trials, s.mean, s.sd, min, max
        );
    }
    println!("# Paper's shape: ratio > 1 everywhere, rising toward ~1.2-1.4 at higher degrees;");
    println!("# no real data point below 1 (footnote 2).");
}
