//! **Figure 2(a)** — ratio of maximum group delay: optimal center-based
//! tree vs shortest-path trees.
//!
//! Paper setup (§1.3): "For each node degree, we tried 500 different
//! 50-node graphs with 10-member groups chosen randomly. ... the maximum
//! delays of core-based trees with optimal core placement are up to 1.4
//! times of the shortest-path trees."
//!
//! Run: `cargo run -p bench --release --bin fig2a [--trials N] [--seed N]
//! [--threads N] [--smoke] [--json PATH]`
//!
//! Trials fan out over a deterministic scoped-thread pool: trial `t` of
//! degree `d` always draws from `StdRng::seed_from_u64(par::mix(seed, d,
//! t))`, so stdout is bit-identical for every `--threads` value.
//!
//! Output: one row per node degree with the mean ratio and its standard
//! deviation (the paper's error bars). Footnote 2 of the paper applies
//! here too: no individual ratio is ever below 1 (see the `min` column);
//! error bars dipping below 1 are symmetric-bar artifacts.

use bench::{cli, perf, stats};
use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use mctree::{optimal_center_delay, optimal_center_tree_exhaustive, spt_max_delay, GroupSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 50;
const MEMBERS: usize = 10;

/// One Monte-Carlo trial: the center/SPT max-delay ratio for a fresh
/// random graph and group. All randomness comes from the per-trial seed.
fn trial(seed: u64, degree: u32, trial_idx: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, degree as u64, trial_idx as u64));
    let g = random_connected(
        &RandomGraphParams {
            nodes: NODES,
            avg_degree: degree as f64,
            delay_range: (1, 10),
        },
        &mut rng,
    );
    let ap = AllPairs::new(&g);
    let spec = GroupSpec::random(NODES, MEMBERS, MEMBERS, &mut rng);
    let spt = spt_max_delay(&ap, &spec.members) as f64;
    let (_, center) = optimal_center_delay(&g, &ap, &spec.members);
    center as f64 / spt
}

/// The full degree sweep; returns the printable rows.
fn sweep(args: &cli::Args, threads: usize) -> Vec<String> {
    (3..=8u32)
        .map(|degree| {
            let ratios = par::run_trials(threads, args.trials, |t| trial(args.seed, degree, t));
            let s = stats(&ratios);
            let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = ratios.iter().cloned().fold(0.0f64, f64::max);
            format!(
                "{:<8} {:>8} {:>12.4} {:>10.4} {:>8.3} {:>8.3}",
                degree, args.trials, s.mean, s.sd, min, max
            )
        })
        .collect()
}

/// Time the pruned core search against the retained exhaustive reference
/// on a few representative trials — the single-thread algorithmic win the
/// JSON record tracks alongside the fan-out speedup.
fn core_search_comparison(seed: u64) -> (f64, f64) {
    let probes = 8usize;
    let setups: Vec<_> = (0..probes)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(par::mix(seed, 6, t as u64));
            let g = random_connected(
                &RandomGraphParams {
                    nodes: NODES,
                    avg_degree: 6.0,
                    delay_range: (1, 10),
                },
                &mut rng,
            );
            let ap = AllPairs::new(&g);
            let spec = GroupSpec::random(NODES, MEMBERS, MEMBERS, &mut rng);
            (g, ap, spec)
        })
        .collect();
    let (_, exhaustive_ms) = perf::time(|| {
        for (g, ap, spec) in &setups {
            std::hint::black_box(optimal_center_tree_exhaustive(g, ap, &spec.members));
        }
    });
    let (_, pruned_ms) = perf::time(|| {
        for (g, ap, spec) in &setups {
            std::hint::black_box(optimal_center_delay(g, ap, &spec.members));
        }
    });
    (exhaustive_ms / probes as f64, pruned_ms / probes as f64)
}

fn main() {
    let args = cli::parse_smoke(500, 24);
    println!("# Figure 2(a): max-delay ratio, optimal center-based tree / shortest-path trees");
    println!(
        "# {NODES}-node random graphs, {MEMBERS}-member groups, {} graphs per degree, seed {}",
        args.trials, args.seed
    );
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "degree", "trials", "mean_ratio", "sd", "min", "max"
    );
    let (rows, wall_ms) = perf::time(|| sweep(&args, args.threads));
    for row in &rows {
        println!("{row}");
    }
    println!("# Paper's shape: ratio > 1 everywhere, rising toward ~1.2-1.4 at higher degrees;");
    println!("# no real data point below 1 (footnote 2).");

    if let Some(path) = &args.json {
        // Re-run single-threaded for the speedup denominator; the rows
        // must match bit-for-bit (the determinism contract).
        let (rows_1t, wall_ms_1t) = if args.threads == 1 {
            (rows.clone(), wall_ms)
        } else {
            perf::time(|| sweep(&args, 1))
        };
        assert_eq!(rows, rows_1t, "thread fan-out changed the results");
        let (exhaustive_ms, pruned_ms) = core_search_comparison(args.seed);
        let json = format!(
            "{{\n  \"bench\": \"fig2a\", \"seed\": {}, {},\n  \
             \"core_search_ms_per_trial\": {{\"exhaustive\": {exhaustive_ms:.3}, \
             \"pruned\": {pruned_ms:.3}, \"speedup\": {:.2}}}\n}}\n",
            args.seed,
            perf::timing_fields(args.threads, args.trials * 6, wall_ms, wall_ms_1t),
            exhaustive_ms / pruned_ms
        );
        perf::write_json(path, &json);
    }
}
