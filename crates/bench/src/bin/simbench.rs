//! **Simulator microbenchmarks** — the netsim hot paths the protocol
//! experiments lean on, timed in isolation:
//!
//! 1. **LAN fan-out**: one sender and many receivers on a single
//!    multi-access link. Every transmit schedules one delivery per
//!    receiver; with the `Arc<[u8]>` payload this is a refcount bump per
//!    receiver instead of a buffer copy, and this bench is where that
//!    shows up. A FNV-1a fingerprint of every reception (time, iface,
//!    payload) is printed so payload-representation changes can be proven
//!    behavior-preserving.
//! 2. **End-to-end protocol run**: a full PIM source-tree simulation over
//!    a random internet, the workload `scenario`/`ablation` execute
//!    thousands of times.
//! 3. **Node-count scaling sweep**: the same PIM workload over Waxman
//!    internets of growing size (default 20/50/100/200 routers), the
//!    wall-clock-vs-node-count table that tracks how the region-
//!    partitioned event core scales with topology size. Each point also
//!    reports how many regions the auto-partitioner produced at the
//!    requested `--threads`.
//!
//! Run: `cargo run -p bench --release --bin simbench [--trials N]
//! [--seed N] [--smoke] [--threads N] [--nodes N,N,...] [--json PATH]`
//! (`--trials` = LAN packets).

use bench::{cli, perf, run_protocol_sim_opts, Proto, SimOptions, Workload};
use graph::gen::{random_connected, waxman, RandomGraphParams, WaxmanParams};
use graph::NodeId;
use mctree::GroupSpec;
use netsim::{Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use pim::PimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use wire::Group;

const RECEIVERS: usize = 32;
const PAYLOAD: usize = 1024;

/// Sends `total` packets on interface 0, one per tick.
struct Blaster {
    payload: Vec<u8>,
    total: u64,
    sent: u64,
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration(1), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _packet: &[u8]) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent < self.total {
            // Vary the first byte so the fingerprint covers payload bytes,
            // not just counts.
            self.payload[0] = (self.sent & 0xFF) as u8;
            ctx.send(IfaceId(0), self.payload.clone());
            self.sent += 1;
            ctx.set_timer(Duration(1), 0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts receptions and folds every delivery into a FNV-1a fingerprint.
struct Sink {
    received: u64,
    fingerprint: u64,
}

impl Sink {
    fn new() -> Sink {
        Sink {
            received: 0,
            fingerprint: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn fold(&mut self, byte: u8) {
        self.fingerprint = (self.fingerprint ^ byte as u64).wrapping_mul(0x100_0000_01b3);
    }
}

impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        self.received += 1;
        for b in ctx.now().ticks().to_le_bytes() {
            self.fold(b);
        }
        self.fold(iface.index() as u8);
        for &b in packet {
            self.fold(b);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// LAN fan-out: returns (deliveries, combined fingerprint, wall ms).
fn lan_fanout(seed: u64, packets: u64) -> (u64, u64, f64) {
    let mut w = World::new(seed);
    let sender = w.add_node(Box::new(Blaster {
        payload: vec![0u8; PAYLOAD],
        total: packets,
        sent: 0,
    }));
    let sinks: Vec<NodeIdx> = (0..RECEIVERS)
        .map(|_| w.add_node(Box::new(Sink::new())))
        .collect();
    let mut all: Vec<NodeIdx> = vec![sender];
    all.extend(&sinks);
    w.add_lan(&all, Duration(1));
    let (_, wall_ms) = perf::time(|| w.run_until(SimTime(packets + 8)));
    let mut received = 0;
    let mut fingerprint = 0u64;
    for &s in &sinks {
        let sink: &Sink = w.node(s);
        received += sink.received;
        fingerprint ^= sink.fingerprint.rotate_left((s.0 % 64) as u32);
    }
    (received, fingerprint, wall_ms)
}

/// One end-to-end PIM source-tree run; returns (deliveries, wall ms).
fn protocol_run(seed: u64, threads: usize) -> (u64, f64) {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 2, 0));
    let g = random_connected(
        &RandomGraphParams {
            nodes: 30,
            avg_degree: 3.5,
            delay_range: (1, 6),
        },
        &mut rng,
    );
    let spec = GroupSpec::random(30, 6, 2, &mut rng);
    let w = Workload {
        group: Group::test(1),
        members: spec.members.clone(),
        senders: spec.senders.clone(),
        rendezvous: NodeId(rng.gen_range(0..30)),
    };
    let (r, wall_ms) = perf::time(|| {
        run_protocol_sim_opts(
            &g,
            Proto::PimSpt,
            &[w],
            &SimOptions {
                packets_per_sender: 40,
                seed: par::mix(seed, 3, 0),
                link_loss: 0.0,
                pim: PimConfig::default(),
                threads,
                profile: false,
            },
        )
    });
    (r.deliveries, wall_ms)
}

/// One row of the node-count scaling sweep.
struct SweepRow {
    nodes: usize,
    deliveries: u64,
    events: u64,
    regions: usize,
    wall_ms: f64,
    profile: Option<netsim::SimProfile>,
}

/// PIM source-tree runs over Waxman internets of growing size: the
/// wall-clock-vs-node-count table, each point profiled per region ×
/// event kind so the sweep says *which* phase bends as the topology
/// grows. Membership scales with the network (one member per ~5
/// routers, 2 senders) so larger points do proportionally more protocol
/// work, not just more idle topology.
fn node_sweep(sizes: &[usize], seed: u64, threads: usize) -> Vec<SweepRow> {
    sizes
        .iter()
        .map(|&nodes| {
            let mut rng = StdRng::seed_from_u64(par::mix(seed, 4, nodes as u64));
            let g = waxman(
                &WaxmanParams {
                    nodes,
                    ..WaxmanParams::default()
                },
                &mut rng,
            );
            let spec = GroupSpec::random(nodes, (nodes / 5).max(4), 2, &mut rng);
            let w = Workload {
                group: Group::test(1),
                members: spec.members.clone(),
                senders: spec.senders.clone(),
                rendezvous: NodeId(rng.gen_range(0..nodes as u32)),
            };
            let (r, wall_ms) = perf::time(|| {
                run_protocol_sim_opts(
                    &g,
                    Proto::PimSpt,
                    std::slice::from_ref(&w),
                    &SimOptions {
                        packets_per_sender: 30,
                        seed: par::mix(seed, 5, nodes as u64),
                        link_loss: 0.0,
                        pim: PimConfig::default(),
                        threads,
                        profile: true,
                    },
                )
            });
            SweepRow {
                nodes,
                deliveries: r.deliveries,
                events: r.events_dispatched,
                regions: r.regions,
                wall_ms,
                profile: r.profile,
            }
        })
        .collect()
}

fn main() {
    let args = cli::parse_smoke(20_000, 500);
    let packets = args.trials as u64;
    println!("# Simulator microbench: LAN fan-out + end-to-end protocol run");
    let (received, fingerprint, lan_ms) = lan_fanout(args.seed, packets);
    assert_eq!(received, packets * RECEIVERS as u64, "lost deliveries");
    println!(
        "lan_fanout   {packets} pkts x {RECEIVERS} receivers x {PAYLOAD}B: \
         {received} deliveries in {lan_ms:.1} ms ({:.0}/ms)",
        received as f64 / lan_ms
    );
    println!("lan_fanout   fingerprint {fingerprint:#018x}");
    let (deliveries, proto_ms) = protocol_run(args.seed, args.threads);
    println!("protocol_run pim-spt 30 nodes, 2 senders x 40 pkts: {deliveries} deliveries in {proto_ms:.1} ms");

    let sizes: Vec<usize> = args.nodes.clone().unwrap_or_else(|| {
        if args.smoke {
            vec![20, 50]
        } else {
            vec![20, 50, 100, 200]
        }
    });
    let rows = node_sweep(&sizes, args.seed, args.threads);
    println!(
        "node_sweep   pim-spt on Waxman internets, {} threads:",
        args.threads
    );
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>10} {:>8}",
        "nodes", "deliveries", "events", "regions", "wall ms", "serial%"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12} {:>12} {:>9} {:>10.1} {:>8}",
            r.nodes,
            r.deliveries,
            r.events,
            r.regions,
            r.wall_ms,
            r.profile
                .as_ref()
                .map(|p| format!("{:.1}", p.serial_pct()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    // Greppable one-liner for the CI gate: the auto-partitioner must be
    // live at the largest sweep point.
    let last = rows.last().expect("non-empty sweep");
    println!(
        "auto_partition regions={} nodes={} threads={}",
        last.regions, last.nodes, args.threads
    );
    // Where the event loop bends: per-region × event-kind attribution of
    // the largest sweep point (nanosecond columns are wall-clock and
    // vary run to run; event counts are deterministic).
    if let Some(p) = &last.profile {
        println!(
            "node_profile nodes={} ({} events dispatched):",
            last.nodes,
            p.events()
        );
        for l in p.render().lines() {
            println!("  {l}");
        }
    }

    if let Some(path) = &args.json {
        let mut sweep_json = String::new();
        for (i, r) in rows.iter().enumerate() {
            sweep_json.push_str(&format!(
                "    {{\"nodes\": {}, \"deliveries\": {}, \"events\": {}, \
                 \"regions\": {}, \"wall_ms\": {:.1}, \"serial_pct\": {}}}{}\n",
                r.nodes,
                r.deliveries,
                r.events,
                r.regions,
                r.wall_ms,
                r.profile
                    .as_ref()
                    .map(|p| format!("{:.1}", p.serial_pct()))
                    .unwrap_or_else(|| "null".into()),
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"simbench\", \"seed\": {}, \"threads\": {},\n  \
             \"lan_fanout\": {{\"packets\": {packets}, \"receivers\": {RECEIVERS}, \
             \"payload_bytes\": {PAYLOAD}, \"deliveries\": {received}, \
             \"fingerprint\": \"{fingerprint:#018x}\", \"wall_ms\": {lan_ms:.1}, \
             \"deliveries_per_ms\": {:.0}}},\n  \
             \"protocol_run\": {{\"proto\": \"pim-spt\", \"nodes\": 30, \
             \"deliveries\": {deliveries}, \"wall_ms\": {proto_ms:.1}}},\n  \
             \"node_sweep\": [\n{sweep_json}  ]\n}}\n",
            args.seed,
            args.threads,
            received as f64 / lan_ms,
        );
        perf::write_json(path, &json);
    }
}
