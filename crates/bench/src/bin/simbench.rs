//! **Simulator microbenchmarks** — the netsim hot paths the protocol
//! experiments lean on, timed in isolation:
//!
//! 1. **LAN fan-out**: one sender and many receivers on a single
//!    multi-access link. Every transmit schedules one delivery per
//!    receiver; with the `Arc<[u8]>` payload this is a refcount bump per
//!    receiver instead of a buffer copy, and this bench is where that
//!    shows up. A FNV-1a fingerprint of every reception (time, iface,
//!    payload) is printed so payload-representation changes can be proven
//!    behavior-preserving.
//! 2. **End-to-end protocol run**: a full PIM source-tree simulation over
//!    a random internet, the workload `scenario`/`ablation` execute
//!    thousands of times.
//! 3. **Node-count scaling sweep**: the same PIM workload over Waxman
//!    internets of growing size (default 20/50/100/200 routers), the
//!    wall-clock-vs-node-count table that tracks how the region-
//!    partitioned event core scales with topology size. Each point also
//!    reports how many regions the auto-partitioner produced at the
//!    requested `--threads`.
//! 4. **Hierarchical scale sweep**: PIM over backbone+stub-domain
//!    internets (500/1000/2000 routers) with one aggregate
//!    [`igmp::PopulationNode`] member site per domain, plus a membership
//!    sweep (10³…10⁶ total members at 1000 routers). Reports state and
//!    control overhead per router and per-event cost; each row's
//!    reception fingerprint is byte-identical across `--threads`, and
//!    the world is partitioned along domain boundaries.
//! 5. **Congestion sweep** (`--congestion`): the end-to-end PIM workload
//!    with every link capped at a shrinking per-tick byte rate and a
//!    bounded transmit queue — the graceful-degradation curve. Reports
//!    deliveries, tail drops by traffic class, ECN marks, and peak queue
//!    depth per rate; with control priority on, `dropc` staying 0 is the
//!    no-starvation claim in bench form.
//!
//! Run: `cargo run -p bench --release --bin simbench [--trials N]
//! [--seed N] [--smoke] [--threads N] [--nodes N,N,...] [--hier N,N,...]
//! [--members N,N,...] [--congestion] [--json PATH]`
//! (`--trials` = LAN packets).

use bench::{cli, perf, run_protocol_sim_hier, run_protocol_sim_opts, Proto, SimOptions, Workload};
use graph::gen::{
    hierarchical, random_connected, waxman, HierParams, RandomGraphParams, WaxmanParams,
};
use graph::NodeId;
use mctree::GroupSpec;
use netsim::{Ctx, Duration, IfaceId, LinkCapacity, Node, NodeIdx, SimTime, World};
use pim::PimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use wire::Group;

const RECEIVERS: usize = 32;
/// LAN fan-out payload sizes: a bare header, the classic 1 KiB datagram,
/// and a jumbo frame — the copy-vs-refcount cost curve.
const PAYLOADS: [usize; 3] = [64, 1024, 8192];

/// Sends `total` packets on interface 0, one per tick.
struct Blaster {
    payload: Vec<u8>,
    total: u64,
    sent: u64,
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration(1), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _packet: &[u8]) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent < self.total {
            // Vary the first byte so the fingerprint covers payload bytes,
            // not just counts.
            self.payload[0] = (self.sent & 0xFF) as u8;
            ctx.send(IfaceId(0), self.payload.clone());
            self.sent += 1;
            ctx.set_timer(Duration(1), 0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts receptions and folds every delivery into a FNV-1a fingerprint.
struct Sink {
    received: u64,
    fingerprint: u64,
}

impl Sink {
    fn new() -> Sink {
        Sink {
            received: 0,
            fingerprint: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn fold(&mut self, byte: u8) {
        self.fingerprint = (self.fingerprint ^ byte as u64).wrapping_mul(0x100_0000_01b3);
    }
}

impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        self.received += 1;
        for b in ctx.now().ticks().to_le_bytes() {
            self.fold(b);
        }
        self.fold(iface.index() as u8);
        for &b in packet {
            self.fold(b);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// LAN fan-out: returns (deliveries, combined fingerprint, wall ms).
fn lan_fanout(seed: u64, packets: u64, payload: usize) -> (u64, u64, f64) {
    let mut w = World::new(seed);
    let sender = w.add_node(Box::new(Blaster {
        payload: vec![0u8; payload],
        total: packets,
        sent: 0,
    }));
    let sinks: Vec<NodeIdx> = (0..RECEIVERS)
        .map(|_| w.add_node(Box::new(Sink::new())))
        .collect();
    let mut all: Vec<NodeIdx> = vec![sender];
    all.extend(&sinks);
    w.add_lan(&all, Duration(1));
    let (_, wall_ms) = perf::time(|| w.run_until(SimTime(packets + 8)));
    let mut received = 0;
    let mut fingerprint = 0u64;
    for &s in &sinks {
        let sink: &Sink = w.node(s);
        received += sink.received;
        fingerprint ^= sink.fingerprint.rotate_left((s.0 % 64) as u32);
    }
    (received, fingerprint, wall_ms)
}

/// One end-to-end PIM source-tree run; returns (deliveries, wall ms).
fn protocol_run(seed: u64, threads: usize) -> (u64, f64) {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 2, 0));
    let g = random_connected(
        &RandomGraphParams {
            nodes: 30,
            avg_degree: 3.5,
            delay_range: (1, 6),
        },
        &mut rng,
    );
    let spec = GroupSpec::random(30, 6, 2, &mut rng);
    let w = Workload {
        group: Group::test(1),
        members: spec.members.clone(),
        senders: spec.senders.clone(),
        rendezvous: NodeId(rng.gen_range(0..30)),
        population: 1,
    };
    let (r, wall_ms) = perf::time(|| {
        run_protocol_sim_opts(
            &g,
            Proto::PimSpt,
            &[w],
            &SimOptions {
                packets_per_sender: 40,
                seed: par::mix(seed, 3, 0),
                link_loss: 0.0,
                pim: PimConfig::default(),
                threads,
                profile: false,
                ..SimOptions::default()
            },
        )
    });
    (r.deliveries, wall_ms)
}

/// Transmit-queue bound for the congestion sweep, in bytes.
const CONGESTION_QUEUE: u64 = 96;
/// Per-tick link rates swept by `--congestion` (0 = unlimited baseline).
const CONGESTION_RATES: [u64; 5] = [0, 8, 4, 2, 1];

/// One row of the bounded-capacity congestion sweep.
struct CongestionRow {
    rate: u64,
    deliveries: u64,
    expected: u64,
    drops_data: u64,
    drops_ctrl: u64,
    ecn_marks: u64,
    peak_queue: u64,
    events: u64,
    fingerprint: u64,
    wall_ms: f64,
}

/// The same 30-node PIM workload as `protocol_run`, re-run with every
/// router-router link capped at a sweep of per-tick rates: the graceful-
/// degradation curve. Deliveries fall and tail drops rise as the cap
/// tightens, while the prioritized control plane keeps the tree alive
/// (`dropc` stays 0). The reception fingerprint per row is deterministic
/// and byte-identical across `--threads`.
fn congestion_sweep(seed: u64, threads: usize) -> Vec<CongestionRow> {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 2, 0));
    let g = random_connected(
        &RandomGraphParams {
            nodes: 30,
            avg_degree: 3.5,
            delay_range: (1, 6),
        },
        &mut rng,
    );
    let spec = GroupSpec::random(30, 6, 2, &mut rng);
    let w = Workload {
        group: Group::test(1),
        members: spec.members.clone(),
        senders: spec.senders.clone(),
        rendezvous: NodeId(rng.gen_range(0..30)),
        population: 1,
    };
    CONGESTION_RATES
        .iter()
        .map(|&rate| {
            let capacity = if rate == 0 {
                LinkCapacity::UNLIMITED
            } else {
                LinkCapacity {
                    bytes_per_tick: rate,
                    queue_bytes: CONGESTION_QUEUE,
                    ecn_bytes: CONGESTION_QUEUE / 2,
                    ctrl_priority: true,
                }
            };
            let (r, wall_ms) = perf::time(|| {
                run_protocol_sim_opts(
                    &g,
                    Proto::PimSpt,
                    std::slice::from_ref(&w),
                    &SimOptions {
                        packets_per_sender: 40,
                        seed: par::mix(seed, 13, rate),
                        threads,
                        capacity,
                        ..SimOptions::default()
                    },
                )
            });
            CongestionRow {
                rate,
                deliveries: r.deliveries,
                expected: r.expected_deliveries,
                drops_data: r.queue_drops_data,
                drops_ctrl: r.queue_drops_ctrl,
                ecn_marks: r.ecn_marks,
                peak_queue: r.peak_queue_bytes,
                events: r.events_dispatched,
                fingerprint: r.reception_fingerprint,
                wall_ms,
            }
        })
        .collect()
}

/// One row of the node-count scaling sweep.
struct SweepRow {
    nodes: usize,
    deliveries: u64,
    events: u64,
    regions: usize,
    wall_ms: f64,
    /// Event-loop time alone (`World::run_until`), excluding topology /
    /// oracle / world construction — the honest per-event denominator.
    run_ms: f64,
    profile: Option<netsim::SimProfile>,
}

impl SweepRow {
    fn us_per_event(&self) -> f64 {
        self.run_ms * 1e3 / self.events as f64
    }
}

/// PIM source-tree runs over Waxman internets of growing size: the
/// wall-clock-vs-node-count table, each point profiled per region ×
/// event kind so the sweep says *which* phase bends as the topology
/// grows. Membership scales with the network (one member per ~5
/// routers, 2 senders) so larger points do proportionally more protocol
/// work, not just more idle topology.
fn node_sweep(sizes: &[usize], seed: u64, threads: usize) -> Vec<SweepRow> {
    sizes
        .iter()
        .map(|&nodes| {
            let mut rng = StdRng::seed_from_u64(par::mix(seed, 4, nodes as u64));
            let g = waxman(
                &WaxmanParams {
                    nodes,
                    ..WaxmanParams::default()
                },
                &mut rng,
            );
            let spec = GroupSpec::random(nodes, (nodes / 5).max(4), 2, &mut rng);
            let w = Workload {
                group: Group::test(1),
                members: spec.members.clone(),
                senders: spec.senders.clone(),
                rendezvous: NodeId(rng.gen_range(0..nodes as u32)),
                population: 1,
            };
            let (r, wall_ms) = perf::time(|| {
                run_protocol_sim_opts(
                    &g,
                    Proto::PimSpt,
                    std::slice::from_ref(&w),
                    &SimOptions {
                        packets_per_sender: 30,
                        seed: par::mix(seed, 5, nodes as u64),
                        link_loss: 0.0,
                        pim: PimConfig::default(),
                        threads,
                        profile: true,
                        ..SimOptions::default()
                    },
                )
            });
            SweepRow {
                nodes,
                deliveries: r.deliveries,
                events: r.events_dispatched,
                regions: r.regions,
                wall_ms,
                run_ms: r.run_ms,
                profile: r.profile,
            }
        })
        .collect()
}

/// One row of the hierarchical scale sweep.
struct HierRow {
    routers: usize,
    domains: usize,
    members: u64,
    deliveries: u64,
    expected: u64,
    events: u64,
    state_entries: usize,
    control_pkts: u64,
    regions: usize,
    wall_ms: f64,
    run_ms: f64,
    fingerprint: u64,
    profile: Option<netsim::SimProfile>,
}

impl HierRow {
    /// Event-loop cost per event: `run_until` wall time over dispatched
    /// events. Excludes topology generation, the all-pairs oracle, and
    /// world build (the `wall ms` column includes them).
    fn us_per_event(&self) -> f64 {
        self.run_ms * 1e3 / self.events as f64
    }

    /// The deterministic content of the row, greppable by the CI gate's
    /// `--threads 1` vs `4` diff (the line contains "fingerprint").
    fn det_line(&self) -> String {
        format!(
            "hier_fingerprint routers={} members={} deliveries={} events={} \
             state={} ctrl={} fingerprint={:#018x}",
            self.routers,
            self.members,
            self.deliveries,
            self.events,
            self.state_entries,
            self.control_pkts,
            self.fingerprint
        )
    }
}

/// Shape a hierarchical internet of roughly `routers` routers: a Waxman
/// backbone of `routers / 10` and stub domains of 9 hung off it.
fn hier_params(routers: usize) -> HierParams {
    let backbone = (routers / 10).max(3);
    let domain_size = 9;
    let domains = (routers.saturating_sub(backbone) / domain_size).max(2);
    HierParams {
        backbone: WaxmanParams {
            nodes: backbone,
            ..WaxmanParams::default()
        },
        domains,
        domain_size,
        ..HierParams::default()
    }
}

/// One PIM run over a hierarchical internet with `total_members` aggregate
/// members spread over one [`igmp::PopulationNode`] site per stub domain.
fn hier_run(routers: usize, total_members: u64, seed: u64, threads: usize) -> HierRow {
    let params = hier_params(routers);
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 6, routers as u64 ^ total_members));
    let h = hierarchical(&params, &mut rng);
    let domains = params.domains;
    // One member site per domain — its leaf router, the farthest point
    // from the backbone — holding an equal share of the membership.
    let members: Vec<NodeId> = (0..domains).map(|d| h.leaf(d)).collect();
    let population = (total_members / domains as u64).max(2);
    let senders = vec![h.leaf(0), h.leaf(domains / 2)];
    let w = Workload {
        group: Group::test(1),
        members,
        senders,
        rendezvous: NodeId(0), // a backbone router as RP
        population,
    };
    let (r, wall_ms) = perf::time(|| {
        run_protocol_sim_hier(
            &h,
            Proto::PimSpt,
            std::slice::from_ref(&w),
            &SimOptions {
                packets_per_sender: 30,
                seed: par::mix(seed, 7, routers as u64 ^ total_members),
                threads,
                profile: true,
                ..SimOptions::default()
            },
        )
    });
    HierRow {
        routers: h.node_count(),
        domains,
        members: population * domains as u64,
        deliveries: r.deliveries,
        expected: r.expected_deliveries,
        events: r.events_dispatched,
        state_entries: r.state_entries,
        control_pkts: r.control_pkts,
        regions: r.regions,
        wall_ms,
        run_ms: r.run_ms,
        fingerprint: r.reception_fingerprint,
        profile: r.profile,
    }
}

fn print_hier_table(rows: &[HierRow]) {
    println!(
        "{:<8} {:>8} {:>9} {:>11} {:>6} {:>10} {:>10} {:>9} {:>8} {:>9} {:>8} {:>7}",
        "routers",
        "domains",
        "members",
        "deliveries",
        "del%",
        "events",
        "state/rtr",
        "ctrl/rtr",
        "regions",
        "wall ms",
        "run ms",
        "us/ev"
    );
    for r in rows {
        println!(
            "{:<8} {:>8} {:>9} {:>11} {:>6.1} {:>10} {:>10.2} {:>9.1} {:>8} {:>9.1} {:>8.1} {:>7.2}",
            r.routers,
            r.domains,
            r.members,
            r.deliveries,
            100.0 * r.deliveries as f64 / r.expected as f64,
            r.events,
            r.state_entries as f64 / r.routers as f64,
            r.control_pkts as f64 / r.routers as f64,
            r.regions,
            r.wall_ms,
            r.run_ms,
            r.us_per_event(),
        );
    }
    for r in rows {
        println!("{}", r.det_line());
    }
    // Per-event attribution of the largest row: how much of the wall
    // clock is event dispatch at all (the rest is world build + the
    // all-pairs unicast oracle).
    if let Some(r) = rows.last() {
        if let Some(p) = &r.profile {
            println!(
                "hier_profile routers={} ({} events dispatched):",
                r.routers,
                p.events()
            );
            for l in p.render().lines() {
                println!("  {l}");
            }
        }
    }
}

fn hier_json(rows: &[HierRow]) -> String {
    let mut s = String::new();
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"routers\": {}, \"domains\": {}, \"members\": {}, \
             \"deliveries\": {}, \"events\": {}, \"state_entries\": {}, \
             \"control_pkts\": {}, \"regions\": {}, \"wall_ms\": {:.1}, \
             \"run_ms\": {:.1}, \"us_per_event\": {:.3}, \"fingerprint\": \"{:#018x}\"}}{}\n",
            r.routers,
            r.domains,
            r.members,
            r.deliveries,
            r.events,
            r.state_entries,
            r.control_pkts,
            r.regions,
            r.wall_ms,
            r.run_ms,
            r.us_per_event(),
            r.fingerprint,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s
}

fn main() {
    let args = cli::parse_smoke(20_000, 500);
    let packets = args.trials as u64;
    println!("# Simulator microbench: LAN fan-out + end-to-end protocol run");
    let mut lan_rows = Vec::new();
    for payload in PAYLOADS {
        let (received, fingerprint, lan_ms) = lan_fanout(args.seed, packets, payload);
        assert_eq!(received, packets * RECEIVERS as u64, "lost deliveries");
        println!(
            "lan_fanout   {packets} pkts x {RECEIVERS} receivers x {payload}B: \
             {received} deliveries in {lan_ms:.1} ms ({:.0}/ms)",
            received as f64 / lan_ms
        );
        println!("lan_fanout   {payload}B fingerprint {fingerprint:#018x}");
        lan_rows.push((payload, received, fingerprint, lan_ms));
    }
    let (deliveries, proto_ms) = protocol_run(args.seed, args.threads);
    println!("protocol_run pim-spt 30 nodes, 2 senders x 40 pkts: {deliveries} deliveries in {proto_ms:.1} ms");

    let sizes: Vec<usize> = args.nodes.clone().unwrap_or_else(|| {
        if args.smoke {
            vec![20, 50]
        } else {
            vec![20, 50, 100, 200]
        }
    });
    let rows = node_sweep(&sizes, args.seed, args.threads);
    println!(
        "node_sweep   pim-spt on Waxman internets, {} threads:",
        args.threads
    );
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>10} {:>8} {:>7} {:>8}",
        "nodes", "deliveries", "events", "regions", "wall ms", "run ms", "us/ev", "serial%"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12} {:>12} {:>9} {:>10.1} {:>8.1} {:>7.2} {:>8}",
            r.nodes,
            r.deliveries,
            r.events,
            r.regions,
            r.wall_ms,
            r.run_ms,
            r.us_per_event(),
            r.profile
                .as_ref()
                .map(|p| format!("{:.1}", p.serial_pct()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    // Greppable one-liner for the CI gate: the auto-partitioner must be
    // live at the largest sweep point.
    let last = rows.last().expect("non-empty sweep");
    println!(
        "auto_partition regions={} nodes={} threads={}",
        last.regions, last.nodes, args.threads
    );
    // Where the event loop bends: per-region × event-kind attribution of
    // the largest sweep point (nanosecond columns are wall-clock and
    // vary run to run; event counts are deterministic).
    if let Some(p) = &last.profile {
        println!(
            "node_profile nodes={} ({} events dispatched):",
            last.nodes,
            p.events()
        );
        for l in p.render().lines() {
            println!("  {l}");
        }
    }

    // Hierarchical scale sweep: router counts at a fixed aggregate
    // membership, then a membership sweep at the largest default size.
    let hier_sizes: Vec<usize> = args.hier.clone().unwrap_or_else(|| {
        if args.smoke {
            vec![60]
        } else {
            vec![500, 1000, 2000]
        }
    });
    let hier_members = 10_000u64;
    println!(
        "hier_sweep   pim-spt on hierarchical internets ({} aggregate members), {} threads:",
        hier_members, args.threads
    );
    let hier_rows: Vec<HierRow> = hier_sizes
        .iter()
        .map(|&n| hier_run(n, hier_members, args.seed, args.threads))
        .collect();
    print_hier_table(&hier_rows);

    let member_totals: Vec<u64> = args.members.clone().unwrap_or_else(|| {
        if args.smoke {
            vec![]
        } else {
            vec![1_000, 10_000, 100_000, 1_000_000]
        }
    });
    let member_rows: Vec<HierRow> = if member_totals.is_empty() {
        Vec::new()
    } else {
        let routers = 1000;
        println!(
            "members_sweep pim-spt at {routers} routers, {} threads:",
            args.threads
        );
        let rows: Vec<HierRow> = member_totals
            .iter()
            .map(|&m| hier_run(routers, m, args.seed, args.threads))
            .collect();
        print_hier_table(&rows);
        rows
    };

    // Bounded-capacity congestion sweep (opt-in: it measures graceful
    // degradation, not throughput, so the default run stays unchanged).
    let congestion_rows = if args.congestion {
        let rows = congestion_sweep(args.seed, args.threads);
        println!(
            "congestion_sweep pim-spt at 30 nodes, queue={CONGESTION_QUEUE}B \
             ecn={}B ctrl-prio on, {} threads:",
            CONGESTION_QUEUE / 2,
            args.threads
        );
        println!(
            "{:<10} {:>11} {:>6} {:>7} {:>7} {:>6} {:>7} {:>10} {:>9}",
            "rate B/tk",
            "deliveries",
            "del%",
            "dropd",
            "dropc",
            "ecn",
            "peakq",
            "events",
            "wall ms"
        );
        for r in &rows {
            println!(
                "{:<10} {:>11} {:>6.1} {:>7} {:>7} {:>6} {:>7} {:>10} {:>9.1}",
                if r.rate == 0 {
                    "unlimited".to_string()
                } else {
                    r.rate.to_string()
                },
                r.deliveries,
                100.0 * r.deliveries as f64 / r.expected as f64,
                r.drops_data,
                r.drops_ctrl,
                r.ecn_marks,
                r.peak_queue,
                r.events,
                r.wall_ms,
            );
        }
        for r in &rows {
            println!(
                "congestion_fingerprint rate={} deliveries={} dropd={} dropc={} \
                 fingerprint={:#018x}",
                r.rate, r.deliveries, r.drops_data, r.drops_ctrl, r.fingerprint
            );
        }
        rows
    } else {
        Vec::new()
    };

    if let Some(path) = &args.json {
        let mut sweep_json = String::new();
        for (i, r) in rows.iter().enumerate() {
            sweep_json.push_str(&format!(
                "    {{\"nodes\": {}, \"deliveries\": {}, \"events\": {}, \
                 \"regions\": {}, \"wall_ms\": {:.1}, \"run_ms\": {:.1}, \
                 \"us_per_event\": {:.2}, \"serial_pct\": {}}}{}\n",
                r.nodes,
                r.deliveries,
                r.events,
                r.regions,
                r.wall_ms,
                r.run_ms,
                r.us_per_event(),
                r.profile
                    .as_ref()
                    .map(|p| format!("{:.1}", p.serial_pct()))
                    .unwrap_or_else(|| "null".into()),
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        let mut lan_json = String::new();
        for (i, (payload, received, fingerprint, lan_ms)) in lan_rows.iter().enumerate() {
            lan_json.push_str(&format!(
                "    {{\"packets\": {packets}, \"receivers\": {RECEIVERS}, \
                 \"payload_bytes\": {payload}, \"deliveries\": {received}, \
                 \"fingerprint\": \"{fingerprint:#018x}\", \"wall_ms\": {lan_ms:.1}, \
                 \"deliveries_per_ms\": {:.0}}}{}\n",
                *received as f64 / lan_ms,
                if i + 1 == lan_rows.len() { "" } else { "," }
            ));
        }
        let mut congestion_json = String::new();
        for (i, r) in congestion_rows.iter().enumerate() {
            congestion_json.push_str(&format!(
                "    {{\"rate_bytes_per_tick\": {}, \"queue_bytes\": {}, \
                 \"deliveries\": {}, \"expected\": {}, \"queue_drops_data\": {}, \
                 \"queue_drops_ctrl\": {}, \"ecn_marks\": {}, \"peak_queue_bytes\": {}, \
                 \"events\": {}, \"wall_ms\": {:.1}, \"fingerprint\": \"{:#018x}\"}}{}\n",
                r.rate,
                if r.rate == 0 { 0 } else { CONGESTION_QUEUE },
                r.deliveries,
                r.expected,
                r.drops_data,
                r.drops_ctrl,
                r.ecn_marks,
                r.peak_queue,
                r.events,
                r.wall_ms,
                r.fingerprint,
                if i + 1 == congestion_rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"simbench\", \"seed\": {}, \"threads\": {},\n  \
             \"lan_fanout\": [\n{lan_json}  ],\n  \
             \"protocol_run\": {{\"proto\": \"pim-spt\", \"nodes\": 30, \
             \"deliveries\": {deliveries}, \"wall_ms\": {proto_ms:.1}}},\n  \
             \"node_sweep\": [\n{sweep_json}  ],\n  \
             \"hier_sweep\": [\n{}  ],\n  \
             \"members_sweep\": [\n{}  ],\n  \
             \"congestion_sweep\": [\n{congestion_json}  ]\n}}\n",
            args.seed,
            args.threads,
            hier_json(&hier_rows),
            hier_json(&member_rows),
        );
        perf::write_json(path, &json);
    }
}
