//! **Simulator microbenchmarks** — the netsim hot paths the protocol
//! experiments lean on, timed in isolation:
//!
//! 1. **LAN fan-out**: one sender and many receivers on a single
//!    multi-access link. Every transmit schedules one delivery per
//!    receiver; with the `Arc<[u8]>` payload this is a refcount bump per
//!    receiver instead of a buffer copy, and this bench is where that
//!    shows up. A FNV-1a fingerprint of every reception (time, iface,
//!    payload) is printed so payload-representation changes can be proven
//!    behavior-preserving.
//! 2. **End-to-end protocol run**: a full PIM source-tree simulation over
//!    a random internet, the workload `scenario`/`ablation` execute
//!    thousands of times.
//!
//! Run: `cargo run -p bench --release --bin simbench [--trials N]
//! [--seed N] [--smoke] [--json PATH]` (`--trials` = LAN packets).

use bench::{cli, perf, run_protocol_sim_opts, Proto, SimOptions, Workload};
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::GroupSpec;
use netsim::{Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use pim::PimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use wire::Group;

const RECEIVERS: usize = 32;
const PAYLOAD: usize = 1024;

/// Sends `total` packets on interface 0, one per tick.
struct Blaster {
    payload: Vec<u8>,
    total: u64,
    sent: u64,
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration(1), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _packet: &[u8]) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent < self.total {
            // Vary the first byte so the fingerprint covers payload bytes,
            // not just counts.
            self.payload[0] = (self.sent & 0xFF) as u8;
            ctx.send(IfaceId(0), self.payload.clone());
            self.sent += 1;
            ctx.set_timer(Duration(1), 0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts receptions and folds every delivery into a FNV-1a fingerprint.
struct Sink {
    received: u64,
    fingerprint: u64,
}

impl Sink {
    fn new() -> Sink {
        Sink {
            received: 0,
            fingerprint: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn fold(&mut self, byte: u8) {
        self.fingerprint = (self.fingerprint ^ byte as u64).wrapping_mul(0x100_0000_01b3);
    }
}

impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        self.received += 1;
        for b in ctx.now().ticks().to_le_bytes() {
            self.fold(b);
        }
        self.fold(iface.index() as u8);
        for &b in packet {
            self.fold(b);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// LAN fan-out: returns (deliveries, combined fingerprint, wall ms).
fn lan_fanout(seed: u64, packets: u64) -> (u64, u64, f64) {
    let mut w = World::new(seed);
    let sender = w.add_node(Box::new(Blaster {
        payload: vec![0u8; PAYLOAD],
        total: packets,
        sent: 0,
    }));
    let sinks: Vec<NodeIdx> = (0..RECEIVERS)
        .map(|_| w.add_node(Box::new(Sink::new())))
        .collect();
    let mut all: Vec<NodeIdx> = vec![sender];
    all.extend(&sinks);
    w.add_lan(&all, Duration(1));
    let (_, wall_ms) = perf::time(|| w.run_until(SimTime(packets + 8)));
    let mut received = 0;
    let mut fingerprint = 0u64;
    for &s in &sinks {
        let sink: &Sink = w.node(s);
        received += sink.received;
        fingerprint ^= sink.fingerprint.rotate_left((s.0 % 64) as u32);
    }
    (received, fingerprint, wall_ms)
}

/// One end-to-end PIM source-tree run; returns (deliveries, wall ms).
fn protocol_run(seed: u64) -> (u64, f64) {
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 2, 0));
    let g = random_connected(
        &RandomGraphParams {
            nodes: 30,
            avg_degree: 3.5,
            delay_range: (1, 6),
        },
        &mut rng,
    );
    let spec = GroupSpec::random(30, 6, 2, &mut rng);
    let w = Workload {
        group: Group::test(1),
        members: spec.members.clone(),
        senders: spec.senders.clone(),
        rendezvous: NodeId(rng.gen_range(0..30)),
    };
    let (r, wall_ms) = perf::time(|| {
        run_protocol_sim_opts(
            &g,
            Proto::PimSpt,
            &[w],
            &SimOptions {
                packets_per_sender: 40,
                seed: par::mix(seed, 3, 0),
                link_loss: 0.0,
                pim: PimConfig::default(),
            },
        )
    });
    (r.deliveries, wall_ms)
}

fn main() {
    let args = cli::parse_smoke(20_000, 500);
    let packets = args.trials as u64;
    println!("# Simulator microbench: LAN fan-out + end-to-end protocol run");
    let (received, fingerprint, lan_ms) = lan_fanout(args.seed, packets);
    assert_eq!(received, packets * RECEIVERS as u64, "lost deliveries");
    println!(
        "lan_fanout   {packets} pkts x {RECEIVERS} receivers x {PAYLOAD}B: \
         {received} deliveries in {lan_ms:.1} ms ({:.0}/ms)",
        received as f64 / lan_ms
    );
    println!("lan_fanout   fingerprint {fingerprint:#018x}");
    let (deliveries, proto_ms) = protocol_run(args.seed);
    println!("protocol_run pim-spt 30 nodes, 2 senders x 40 pkts: {deliveries} deliveries in {proto_ms:.1} ms");

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"bench\": \"simbench\", \"seed\": {},\n  \
             \"lan_fanout\": {{\"packets\": {packets}, \"receivers\": {RECEIVERS}, \
             \"payload_bytes\": {PAYLOAD}, \"deliveries\": {received}, \
             \"fingerprint\": \"{fingerprint:#018x}\", \"wall_ms\": {lan_ms:.1}, \
             \"deliveries_per_ms\": {:.0}}},\n  \
             \"protocol_run\": {{\"proto\": \"pim-spt\", \"nodes\": 30, \
             \"deliveries\": {deliveries}, \"wall_ms\": {proto_ms:.1}}}\n}}\n",
            args.seed,
            received as f64 / lan_ms,
        );
        perf::write_json(path, &json);
    }
}
