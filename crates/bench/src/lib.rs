//! Shared experiment infrastructure for the figure-regeneration binaries
//! (see DESIGN.md §2 for the experiment index):
//!
//! * [`stats`] — mean/std-dev for the Monte-Carlo figures;
//! * [`Workload`]/[`Proto`]/[`run_protocol_sim`] — build a full protocol
//!   simulation (PIM in SPT or shared-tree mode, DVMRP, or CBT) over any
//!   [`graph::Graph`], drive a membership+traffic scenario, and collect
//!   the paper's overhead metrics (router state, control packets, data
//!   packets, link concentration, deliveries);
//! * [`cli`] — tiny flag parsing shared by the binaries.

#![warn(missing_docs)]

use cbt::{CbtConfig, CbtEngine, CbtRouter};
use dvmrp::{DvmrpConfig, DvmrpEngine, DvmrpRouter};
use graph::gen::HierTopology;
use graph::{Graph, NodeId};
use igmp::{HostNode, PopulationNode};
use netsim::{
    host_addr, router_addr, CtrlProto, Duration, LinkCapacity, LinkKind, NodeIdx, SimTime, Topology,
};
use pim::{Engine as PimEngine, PimConfig, PimRouter};
use std::collections::BTreeSet;
use unicast::OracleRib;
use wire::Group;

/// Mean and standard deviation of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub sd: f64,
}

/// Compute sample statistics.
pub fn stats(xs: &[f64]) -> Stats {
    assert!(!xs.is_empty(), "empty sample");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let sd = if xs.len() < 2 {
        0.0
    } else {
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    Stats { mean, sd }
}

/// One multicast group's membership and traffic for a protocol run.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The group.
    pub group: Group,
    /// Routers with a member host attached.
    pub members: Vec<NodeId>,
    /// Routers with a sending host attached.
    pub senders: Vec<NodeId>,
    /// The RP (PIM) / core (CBT) router for the group. Ignored by DVMRP.
    pub rendezvous: NodeId,
    /// Aggregate group members behind each member router. `1` attaches
    /// one explicit [`HostNode`] per site (the classic workloads,
    /// byte-identical to before this knob existed); `> 1` attaches one
    /// [`PopulationNode`] holding that many members, and deliveries are
    /// accounted member-weighted (each unique reception at the site
    /// counts `population` deliveries).
    pub population: u64,
}

/// Which protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// PIM sparse mode with immediate SPT switchover.
    PimSpt,
    /// PIM sparse mode pinned to the RP shared tree (policy Never).
    PimShared,
    /// Dense-mode truncated-broadcast-and-prune.
    Dvmrp,
    /// Core Based Trees.
    Cbt,
}

impl Proto {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Proto::PimSpt => "PIM-SPT",
            Proto::PimShared => "PIM-shared",
            Proto::Dvmrp => "DVMRP",
            Proto::Cbt => "CBT",
        }
    }
}

/// Overhead metrics from one protocol run — the paper's §1 efficiency
/// measures ("state, control message processing, and data packet
/// processing required across the entire network").
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Multicast forwarding entries summed over all routers at the end.
    pub state_entries: usize,
    /// Control packets transmitted network-wide.
    pub control_pkts: u64,
    /// Data packets transmitted network-wide (per-link transits).
    pub data_pkts: u64,
    /// Distinct links that carried at least one data packet.
    pub data_links_used: usize,
    /// The hottest link's data-packet count (traffic concentration).
    pub max_link_data: u64,
    /// Unique packets received by member hosts (host-side truth).
    pub deliveries: u64,
    /// Duplicate packet receptions at member hosts.
    pub duplicates: u64,
    /// The deliveries a perfect protocol would make.
    pub expected_deliveries: u64,
    /// Data packets per router-router link, indexed by graph edge id.
    pub link_data: Vec<u64>,
    /// Events the world dispatched (deliveries + timers + scripts) — the
    /// event-loop cost of the run; tracks state churn, not wall-clock.
    pub events_dispatched: u64,
    /// Timer events that fired.
    pub timers_fired: u64,
    /// Stale timer-heap entries skipped (lazy-deletion cost of
    /// reschedulable timers).
    pub timers_skipped_stale: u64,
    /// Packets delivered to nodes (receive side of the event loop).
    pub rx_pkts: u64,
    /// Control packets by sub-protocol ([`CtrlProto::ALL`] order) —
    /// attributes `control_pkts` to PIM vs IGMP vs DVMRP vs CBT vs the
    /// unicast substrate, classified once at tx time.
    pub control_breakdown: [(CtrlProto, u64); 6],
    /// Regions the world was partitioned into for the run (1 = the
    /// sequential core; >1 only when [`SimOptions::threads`] > 1 and the
    /// auto-partitioner found a cut).
    pub regions: usize,
    /// Per-region × event-kind attribution ([`netsim::SimProfile`]),
    /// collected only when [`SimOptions::profile`] is set. Event counts
    /// are deterministic; nanosecond columns are wall-clock.
    pub profile: Option<netsim::SimProfile>,
    /// FNV-1a fold of every member site's reception log (site, arrival
    /// tick, source, group, sequence, member weight) in site order — a
    /// deterministic digest of *when and what every member received*.
    /// Byte-identical across thread counts; the scale sweeps diff it
    /// between `--threads 1` and `--threads N`.
    pub reception_fingerprint: u64,
    /// Wall-clock milliseconds spent inside `World::run_until` alone —
    /// the event-loop cost, excluding topology generation, the all-pairs
    /// oracle, world construction, and metric collection. Per-event cost
    /// is `run_ms / events_dispatched`; wall-clock, varies run to run.
    pub run_ms: f64,
    /// Data packets tail-dropped by bounded transmit queues (zero unless
    /// [`SimOptions::capacity`] caps the links).
    pub queue_drops_data: u64,
    /// Control packets tail-dropped by bounded transmit queues.
    pub queue_drops_ctrl: u64,
    /// Packets ECN-marked while crossing a congested transmit queue.
    pub ecn_marks: u64,
    /// Deepest transmit-queue backlog observed on any link, in bytes.
    pub peak_queue_bytes: u64,
}

/// Simulation schedule shared by all protocols.
const JOIN_START: u64 = 20;
const SEND_START: u64 = 500;
const SEND_GAP: u64 = 25;
const COOLDOWN: u64 = 600;

/// Knobs for [`run_protocol_sim_opts`] beyond the common defaults.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Packets each sender transmits.
    pub packets_per_sender: u64,
    /// World RNG seed.
    pub seed: u64,
    /// Independent per-receiver drop probability on every router-router
    /// link (failure injection; applies to control and data alike).
    pub link_loss: f64,
    /// PIM configuration (both PIM modes; `spt_policy` is overridden by
    /// the chosen [`Proto`]).
    pub pim: PimConfig,
    /// Worker threads for the region-partitioned world (1 = the classic
    /// sequential core). Results are byte-identical for any value.
    pub threads: usize,
    /// Collect a [`netsim::SimProfile`] (per-region wall-clock and
    /// event-count attribution) into [`SimResult::profile`]. Purely
    /// observational: every deterministic output is unchanged.
    pub profile: bool,
    /// Transmit capacity applied to every router-router link
    /// ([`LinkCapacity::UNLIMITED`] — the default — leaves the capacity
    /// model disabled and the trace byte-identical to before the model
    /// existed). Host LANs are never capped: the congestion under study
    /// is transit-network congestion.
    pub capacity: LinkCapacity,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            packets_per_sender: 12,
            seed: 1,
            link_loss: 0.0,
            pim: PimConfig::default(),
            threads: 1,
            profile: false,
            capacity: LinkCapacity::UNLIMITED,
        }
    }
}

/// Run `proto` over `g` with the given workloads: members join, every
/// sender transmits `packets_per_sender` packets, and the run continues
/// long enough for timers to settle. Returns the overhead metrics.
///
/// All protocols share identical topology, host placement, schedule, and
/// (oracle) unicast routing, so differences in the result are differences
/// between the multicast protocols alone.
pub fn run_protocol_sim(
    g: &Graph,
    proto: Proto,
    workloads: &[Workload],
    packets_per_sender: u64,
    seed: u64,
) -> SimResult {
    run_protocol_sim_opts(
        g,
        proto,
        workloads,
        &SimOptions {
            packets_per_sender,
            seed,
            ..SimOptions::default()
        },
    )
}

/// [`run_protocol_sim`] with full [`SimOptions`] control.
pub fn run_protocol_sim_opts(
    g: &Graph,
    proto: Proto,
    workloads: &[Workload],
    opts: &SimOptions,
) -> SimResult {
    run_protocol_sim_core(g, proto, workloads, opts, None)
}

/// [`run_protocol_sim_opts`] over a hierarchical topology: the world is
/// partitioned along the generator's domain boundaries (backbone =
/// region 0, domains folded into the remaining regions) instead of the
/// generic auto-partitioner, so every cross-region link is an expensive
/// gateway hop and the conservative lookahead stays large. With
/// `opts.threads == 1` the partition is skipped entirely; results are
/// byte-identical either way.
pub fn run_protocol_sim_hier(
    h: &HierTopology,
    proto: Proto,
    workloads: &[Workload],
    opts: &SimOptions,
) -> SimResult {
    let hints = h.region_hints(opts.threads);
    run_protocol_sim_core(&h.graph, proto, workloads, opts, Some(&hints))
}

/// The shared simulation core behind [`run_protocol_sim_opts`] and
/// [`run_protocol_sim_hier`]. `region_hints`, when given, must assign a
/// region to every *router* (graph node); attached hosts inherit their
/// router's region.
fn run_protocol_sim_core(
    g: &Graph,
    proto: Proto,
    workloads: &[Workload],
    opts: &SimOptions,
    region_hints: Option<&[u32]>,
) -> SimResult {
    let packets_per_sender = opts.packets_per_sender;
    let seed = opts.seed;
    let topo = Topology::from_graph(g);
    if let Some(hints) = region_hints {
        assert_eq!(hints.len(), g.node_count(), "one region hint per router");
    }

    // Which routers need an attached host.
    let mut involved: BTreeSet<NodeId> = BTreeSet::new();
    for w in workloads {
        involved.extend(w.members.iter().copied());
        involved.extend(w.senders.iter().copied());
    }

    // Oracle unicast routing with every host aliased everywhere.
    let mut ribs = OracleRib::for_all(g, &topo);
    for &n in &involved {
        let h = host_addr(n, 0);
        for (i, rib) in ribs.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }

    let mut rib_iter = ribs.into_iter();
    let (mut world, links) = topo.build_world(g, seed, |plan| match proto {
        Proto::PimSpt | Proto::PimShared => {
            let cfg = PimConfig {
                spt_policy: if proto == Proto::PimSpt {
                    opts.pim.spt_policy
                } else {
                    pim::SptPolicy::Never
                },
                ..opts.pim
            };
            let engine = PimEngine::new(plan.addr, plan.ifaces.len(), cfg);
            let mut r = PimRouter::new(engine, Box::new(rib_iter.next().expect("rib per plan")));
            for w in workloads {
                r.engine_mut()
                    .set_rp_mapping(w.group, vec![router_addr(w.rendezvous)]);
            }
            Box::new(r)
        }
        Proto::Dvmrp => {
            let engine = DvmrpEngine::new(plan.addr, plan.ifaces.len(), DvmrpConfig::default());
            let r = DvmrpRouter::new(engine, Box::new(rib_iter.next().expect("rib per plan")));
            Box::new(r)
        }
        Proto::Cbt => {
            let engine = CbtEngine::new(plan.addr, CbtConfig::default());
            let mut r = CbtRouter::new(engine, Box::new(rib_iter.next().expect("rib per plan")));
            for w in workloads {
                r.engine_mut().set_core(w.group, router_addr(w.rendezvous));
            }
            Box::new(r)
        }
    });

    if opts.link_loss > 0.0 {
        for &l in &links {
            world.set_link_loss(l, opts.link_loss);
        }
    }
    if !opts.capacity.is_unlimited() {
        for &l in &links {
            world.set_link_capacity(l, opts.capacity);
        }
    }

    // Attach one host node per involved router: an explicit HostNode, or
    // a PopulationNode when any workload puts an aggregate membership
    // (population > 1) behind it. Both speak IGMP on the same LAN shape,
    // so the routers can't tell the difference.
    let aggregate_at = |n: NodeId| {
        workloads
            .iter()
            .any(|w| w.population > 1 && w.members.contains(&n))
    };
    let mut host_of = std::collections::BTreeMap::new();
    // Hosts inherit their router's region; extended in add_node order.
    let mut full_hints: Vec<u32> = region_hints.map(<[u32]>::to_vec).unwrap_or_default();
    for &n in &involved {
        let h_addr = host_addr(n, 0);
        let aggregate = aggregate_at(n);
        let h_idx = if aggregate {
            world.add_node(Box::new(PopulationNode::new(h_addr)))
        } else {
            world.add_node(Box::new(HostNode::new(h_addr)))
        };
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), h_idx], Duration(1));
        match proto {
            Proto::PimSpt | Proto::PimShared => world
                .node_mut::<PimRouter>(NodeIdx(n.index()))
                .attach_host_lan(ifs[0], &[h_addr]),
            Proto::Dvmrp => world
                .node_mut::<DvmrpRouter>(NodeIdx(n.index()))
                .attach_host_lan(ifs[0], &[h_addr]),
            Proto::Cbt => world
                .node_mut::<CbtRouter>(NodeIdx(n.index()))
                .attach_host_lan(ifs[0], &[h_addr]),
        }
        if let Some(hints) = region_hints {
            full_hints.push(hints[n.index()]);
        }
        host_of.insert(n, (h_idx, aggregate));
    }

    // Schedule joins and transmissions.
    let mut stagger = 0u64;
    for w in workloads {
        let group = w.group;
        let population = w.population;
        for &m in &w.members {
            let (h, aggregate) = host_of[&m];
            world.at(SimTime(JOIN_START + stagger % 40), move |w| {
                w.call_node(h, |n, ctx| {
                    if aggregate {
                        n.as_any_mut()
                            .downcast_mut::<PopulationNode>()
                            .expect("population node")
                            .join_members(ctx, group, population);
                    } else {
                        n.as_any_mut()
                            .downcast_mut::<HostNode>()
                            .expect("host node")
                            .join(ctx, group);
                    }
                });
            });
            stagger += 1;
        }
        for &s in &w.senders {
            let (h, aggregate) = host_of[&s];
            for k in 0..packets_per_sender {
                world.at(
                    SimTime(SEND_START + (stagger % 17) + k * SEND_GAP),
                    move |w| {
                        w.call_node(h, |n, ctx| {
                            if aggregate {
                                n.as_any_mut()
                                    .downcast_mut::<PopulationNode>()
                                    .expect("population node")
                                    .send_data(ctx, group);
                            } else {
                                n.as_any_mut()
                                    .downcast_mut::<HostNode>()
                                    .expect("host node")
                                    .send_data(ctx, group);
                            }
                        });
                    },
                );
            }
            stagger += 3;
        }
    }

    // Sample total router state while traffic is flowing (dense-mode
    // state is soft and would be garbage-collected by the end of the
    // cooldown, hiding exactly the overhead the paper measures).
    let state_sample = std::rc::Rc::new(std::cell::Cell::new(0usize));
    let sample_at = SEND_START + (packets_per_sender * SEND_GAP) / 2;
    {
        let state_sample = std::rc::Rc::clone(&state_sample);
        let nodes = g.node_count();
        world.at(SimTime(sample_at), move |w| {
            let mut total = 0;
            for i in 0..nodes {
                total += match proto {
                    Proto::PimSpt | Proto::PimShared => {
                        w.node::<PimRouter>(NodeIdx(i)).engine().entry_count()
                    }
                    Proto::Dvmrp => w.node::<DvmrpRouter>(NodeIdx(i)).engine().entry_count(),
                    Proto::Cbt => w.node::<CbtRouter>(NodeIdx(i)).engine().entry_count(),
                };
            }
            state_sample.set(total);
        });
    }

    let end = SEND_START + packets_per_sender * SEND_GAP + COOLDOWN;
    world.parallelize(opts.threads);
    // Hierarchical runs carry domain-aligned region hints: override the
    // generic auto-partition so the parallel core cuts only gateway links
    // (maximising conservative lookahead). Hosts inherit their router's
    // region, so no host LAN ever crosses a region boundary.
    if region_hints.is_some() && opts.threads > 1 {
        world.set_partition(&full_hints);
    }
    if opts.profile {
        world.enable_profile();
    }
    let run_started = std::time::Instant::now();
    world.run_until(SimTime(end));
    let run_ms = run_started.elapsed().as_secs_f64() * 1e3;

    // Collect metrics.
    let mut result = SimResult {
        state_entries: state_sample.get(),
        run_ms,
        regions: world.region_count(),
        profile: world.profile(),
        ..SimResult::default()
    };
    // Link metrics cover router-router links only: the member host LANs
    // carry identical delivery traffic under every protocol and would
    // otherwise mask the transit-network differences the paper measures.
    let counters = world.counters();
    result.control_pkts = counters.total_control_pkts();
    result.control_breakdown = counters.control_breakdown();
    result.events_dispatched = counters.events_dispatched();
    result.timers_fired = counters.timers_fired();
    result.timers_skipped_stale = counters.timers_skipped_stale();
    result.rx_pkts = counters.rx_pkts();
    result.queue_drops_data = counters.queue_drops_data();
    result.queue_drops_ctrl = counters.queue_drops_ctrl();
    result.ecn_marks = counters.ecn_marks();
    result.peak_queue_bytes = counters.peak_queue_bytes();
    result.link_data = vec![0; g.edge_count()];
    for (l, st) in counters.links() {
        if world.link(l).kind != LinkKind::PointToPoint {
            continue;
        }
        // build_world wires link k to graph edge k, so p2p link ids are
        // edge indices.
        result.link_data[l.0] = st.data_pkts;
        result.data_pkts += st.data_pkts;
        if st.data_pkts > 0 {
            result.data_links_used += 1;
        }
        result.max_link_data = result.max_link_data.max(st.data_pkts);
    }
    // Host-side delivery accounting: unique (source, seq) receptions per
    // member site, with duplicates tallied separately. Aggregate sites
    // weight each reception by the member population behind the LAN, so
    // `deliveries` counts *member* receptions in both representations
    // (population 1 degenerates to the explicit accounting exactly).
    let weight_of = |n: NodeId, g: Group| -> u64 {
        workloads
            .iter()
            .filter(|w| w.group == g && w.members.contains(&n))
            .map(|w| w.population)
            .max()
            .unwrap_or(1)
            .max(1)
    };
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        fp ^= v;
        fp = fp.wrapping_mul(0x100_0000_01b3);
    };
    for (&n, &(h, aggregate)) in &host_of {
        let received: &[igmp::Received] = if aggregate {
            &world.node::<PopulationNode>(h).received
        } else {
            &world.node::<HostNode>(h).received
        };
        let member_of: BTreeSet<Group> = workloads
            .iter()
            .filter(|w| w.members.contains(&n))
            .map(|w| w.group)
            .collect();
        let mut seen = BTreeSet::new();
        for r in received {
            if !member_of.contains(&r.group) {
                continue;
            }
            let weight = weight_of(n, r.group);
            if seen.insert((r.group, r.source, r.seq)) {
                result.deliveries += weight;
            } else {
                result.duplicates += 1;
            }
            fold(n.index() as u64);
            fold(r.at.ticks());
            fold(u64::from(r.source.0));
            fold(u64::from(r.group.addr().0));
            fold(r.seq);
            fold(weight);
        }
    }
    result.reception_fingerprint = fp;
    for w in workloads {
        let site_weight = w.population.max(1);
        for &s in &w.senders {
            let other_sites = w.members.iter().filter(|&&m| m != s).count() as u64;
            result.expected_deliveries += other_sites * site_weight * packets_per_sender;
        }
    }
    result
}

/// Minimal CLI parsing for the experiment binaries: `--seed N`,
/// `--trials N`, `--quick` (divides trials by 10), `--smoke` (tiny
/// bin-chosen trial count for the CI gate), `--threads N` (trial
/// fan-out and world-partition width; output is bit-identical for every
/// value), `--nodes N,N,...` (simbench: Waxman scaling sweep sizes),
/// `--hier N,N,...` / `--members N,N,...` (simbench: hierarchical router
/// counts and aggregate-member totals), `--congestion` (bounded-capacity
/// sweeps), and `--json PATH` (machine-readable timing record).
pub mod cli {
    /// Parsed common flags.
    #[derive(Clone, Debug)]
    pub struct Args {
        /// RNG seed.
        pub seed: u64,
        /// Monte-Carlo trials per configuration point.
        pub trials: usize,
        /// Worker threads for the deterministic trial fan-out.
        pub threads: usize,
        /// Where to write the machine-readable timing record, if asked.
        pub json: Option<String>,
        /// Override for a bin-specific size knob (fig2b: groups per
        /// network).
        pub groups: Option<usize>,
        /// Node-count sweep override (simbench: comma-separated router
        /// counts for the Waxman scaling table).
        pub nodes: Option<Vec<usize>>,
        /// Hierarchical sweep override (simbench: comma-separated router
        /// counts for the backbone+domains scaling table).
        pub hier: Option<Vec<usize>>,
        /// Aggregate-membership sweep override (simbench: comma-separated
        /// total member counts at the fixed hierarchical size).
        pub members: Option<Vec<u64>>,
        /// `--smoke` was given (bins may also shrink non-trial knobs).
        pub smoke: bool,
        /// `--congestion` was given (simbench: run the bounded-capacity
        /// sweep; overhead: cap every link and report shed load).
        pub congestion: bool,
    }

    /// Parse `std::env::args` with the given default trial count;
    /// `--smoke` uses `smoke_trials` unless `--trials` overrides it.
    pub fn parse_smoke(default_trials: usize, smoke_trials: usize) -> Args {
        let mut args = Args {
            seed: 1994, // the paper's year; any seed reproduces the shape
            trials: default_trials,
            threads: par::default_threads(),
            json: None,
            groups: None,
            nodes: None,
            hier: None,
            members: None,
            smoke: false,
            congestion: false,
        };
        fn csv<T: std::str::FromStr>(flag: &str, arg: Option<&String>) -> Vec<T> {
            arg.map(|s| {
                s.split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("{flag} needs comma-separated counts"))
                    })
                    .collect()
            })
            .unwrap_or_else(|| panic!("{flag} needs comma-separated counts"))
        }
        let mut explicit_trials = false;
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--seed" => {
                    args.seed = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a number"));
                    i += 2;
                }
                "--trials" => {
                    args.trials = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--trials needs a number"));
                    explicit_trials = true;
                    i += 2;
                }
                "--threads" => {
                    args.threads = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| panic!("--threads needs a positive number"));
                    i += 2;
                }
                "--json" => {
                    args.json = Some(
                        argv.get(i + 1)
                            .unwrap_or_else(|| panic!("--json needs a path"))
                            .clone(),
                    );
                    i += 2;
                }
                "--groups" => {
                    args.groups = Some(
                        argv.get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| panic!("--groups needs a number")),
                    );
                    i += 2;
                }
                "--nodes" => {
                    args.nodes = Some(csv("--nodes", argv.get(i + 1)));
                    i += 2;
                }
                "--hier" => {
                    args.hier = Some(csv("--hier", argv.get(i + 1)));
                    i += 2;
                }
                "--members" => {
                    args.members = Some(csv("--members", argv.get(i + 1)));
                    i += 2;
                }
                "--quick" => {
                    args.trials = (args.trials / 10).max(1);
                    i += 1;
                }
                "--smoke" => {
                    args.smoke = true;
                    i += 1;
                }
                "--congestion" => {
                    args.congestion = true;
                    i += 1;
                }
                other => panic!(
                    "unknown flag {other}; supported: --seed N --trials N --quick --smoke \
                     --threads N --json PATH --groups N --nodes N,N,... --hier N,N,... \
                     --members N,N,... --congestion"
                ),
            }
        }
        if args.smoke && !explicit_trials {
            args.trials = smoke_trials;
        }
        args
    }

    /// [`parse_smoke`] with a derived smoke trial count (default/25, at
    /// least 1).
    pub fn parse(default_trials: usize) -> Args {
        parse_smoke(default_trials, (default_trials / 25).max(1))
    }
}

/// Wall-clock timing and the hand-rolled JSON records the bench binaries
/// emit (`BENCH_fig2.json`, `BENCH_sim.json`) so future PRs have a
/// recorded perf trajectory to regress against.
pub mod perf {
    use std::time::Instant;

    /// Run `f`, returning its value and the elapsed wall time in
    /// milliseconds.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let t = Instant::now();
        let v = f();
        (v, t.elapsed().as_secs_f64() * 1e3)
    }

    /// Write `json` to `path` and log the write on stdout (comment-style,
    /// so figure output stays machine-greppable).
    pub fn write_json(path: &str, json: &str) {
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("# wrote {path}");
    }

    /// The common timing block of a bench JSON record. `wall_ms_1t` is
    /// the same sweep re-run with `--threads 1` (equal by construction
    /// to the multi-thread output — the speedup is free of any
    /// result-level caveat).
    pub fn timing_fields(threads: usize, trials: usize, wall_ms: f64, wall_ms_1t: f64) -> String {
        format!(
            "\"threads\": {threads}, \"trials\": {trials}, \"wall_ms\": {wall_ms:.1}, \
             \"trials_per_sec\": {:.2}, \"wall_ms_1thread\": {wall_ms_1t:.1}, \
             \"speedup_vs_1thread\": {:.2}",
            trials as f64 / (wall_ms / 1e3),
            wall_ms_1t / wall_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_basics() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.sd - 1.0).abs() < 1e-12);
        let single = stats(&[5.0]);
        assert_eq!(single.sd, 0.0);
    }

    /// The four protocols deliver the same packets on the same scenario —
    /// the comparison harness itself is sound.
    #[test]
    fn all_protocols_deliver_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = graph::gen::random_connected(
            &graph::gen::RandomGraphParams {
                nodes: 12,
                avg_degree: 3.0,
                delay_range: (1, 3),
            },
            &mut rng,
        );
        let w = Workload {
            group: Group::test(1),
            members: vec![NodeId(2), NodeId(7), NodeId(11)],
            senders: vec![NodeId(7)],
            rendezvous: NodeId(0),
            population: 1,
        };
        for proto in [Proto::PimSpt, Proto::PimShared, Proto::Dvmrp, Proto::Cbt] {
            let r = run_protocol_sim(&g, proto, std::slice::from_ref(&w), 6, 9);
            assert_eq!(
                r.deliveries,
                r.expected_deliveries,
                "{} dropped packets: {r:?}",
                proto.name()
            );
            assert!(r.state_entries > 0, "{}", proto.name());
            assert!(r.control_pkts > 0, "{}", proto.name());
        }
    }

    /// Dense mode touches more links with data than sparse mode on a
    /// sparse group — the heart of the paper's motivation.
    #[test]
    fn dvmrp_floods_wider_than_pim() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = graph::gen::random_connected(
            &graph::gen::RandomGraphParams {
                nodes: 20,
                avg_degree: 4.0,
                delay_range: (1, 3),
            },
            &mut rng,
        );
        let w = Workload {
            group: Group::test(1),
            members: vec![NodeId(3), NodeId(17)],
            senders: vec![NodeId(17)],
            rendezvous: NodeId(5),
            population: 1,
        };
        let pim = run_protocol_sim(&g, Proto::PimSpt, std::slice::from_ref(&w), 8, 2);
        let dvm = run_protocol_sim(&g, Proto::Dvmrp, &[w], 8, 2);
        assert!(
            dvm.data_links_used > pim.data_links_used,
            "dense {} vs sparse {}",
            dvm.data_links_used,
            pim.data_links_used
        );
        assert!(dvm.data_pkts > pim.data_pkts);
    }
}
