//! The fan-out contract, end to end: the figure binaries must print
//! bit-identical stdout for every `--threads` value. Trial `t` of stream
//! `s` always seeds its RNG with `par::mix(seed, s, t)` regardless of
//! which worker runs it, and results are reassembled in trial order — so
//! parallelism is purely a wall-clock lever, never a results variable.

use std::process::Command;

/// Run a bench binary and return its stdout, asserting success.
fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout must be UTF-8")
}

/// stdout must be byte-identical across thread counts (and non-trivial).
fn assert_thread_invariant(bin: &str, base_args: &[&str]) {
    let mut outputs = Vec::new();
    for threads in ["1", "2", "4", "8"] {
        let mut args = base_args.to_vec();
        args.extend(["--threads", threads]);
        outputs.push(run(bin, &args));
    }
    assert!(
        outputs[0].lines().count() > 5,
        "suspiciously short output:\n{}",
        outputs[0]
    );
    for (i, threads) in ["2", "4", "8"].iter().enumerate() {
        assert_eq!(
            outputs[0],
            outputs[i + 1],
            "{bin}: 1 vs {threads} threads diverged"
        );
    }
}

#[test]
fn fig2a_output_is_thread_count_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_fig2a"), &["--trials", "4"]);
}

#[test]
fn fig2b_output_is_thread_count_invariant() {
    assert_thread_invariant(
        env!("CARGO_BIN_EXE_fig2b"),
        &["--trials", "1", "--groups", "20"],
    );
}

#[test]
fn ablation_output_is_thread_count_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_ablation"), &["--trials", "2"]);
}

/// simbench prints wall-clock timings, which legitimately vary run to
/// run, and region counts, which vary with `--threads` by design (the
/// partition is a performance knob). Strip both — plus the profile
/// block, whose per-region attribution follows the partition — leaving
/// the deterministic content: fingerprints and delivery/event counts.
fn simbench_deterministic_view(out: &str) -> String {
    out.lines()
        .filter_map(|l| {
            // "...: N deliveries in X ms (Y/ms)" → cut at the timing.
            if let Some(i) = l.find(" in ") {
                return Some(l[..i].to_string());
            }
            // The echoed thread count and the partition shape it implies,
            // including the per-region profile table (indented block).
            if l.contains(" threads:")
                || l.starts_with("auto_partition")
                || l.starts_with("node_profile")
                || l.starts_with("hier_profile")
                || l.starts_with("  ")
            {
                return None;
            }
            let toks: Vec<&str> = l.split_whitespace().collect();
            // Sweep rows "nodes deliveries events regions wall_ms run_ms
            // us/ev serial%" → keep only the simulation results (serial%
            // may be "-").
            if toks.len() == 8 && toks[..7].iter().all(|t| t.parse::<f64>().is_ok()) {
                return Some(toks[..3].join(" "));
            }
            // Hierarchical sweep rows "routers domains members deliveries
            // del% events state/rtr ctrl/rtr regions wall_ms run_ms us/ev"
            // → drop the partition shape and the wall-clock tail.
            if toks.len() == 12 && toks.iter().all(|t| t.parse::<f64>().is_ok()) {
                return Some(toks[..8].join(" "));
            }
            Some(l.to_string())
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The simulator microbench — LAN fan-out fingerprint, protocol-run
/// deliveries, and the node-count sweep (deliveries, events, regions) —
/// must agree at 1, 2, and 4 threads.
#[test]
fn simbench_results_are_thread_count_invariant() {
    let bin = env!("CARGO_BIN_EXE_simbench");
    let views: Vec<String> = ["1", "2", "4"]
        .iter()
        .map(|t| simbench_deterministic_view(&run(bin, &["--smoke", "--threads", t])))
        .collect();
    assert!(
        views[0].contains("fingerprint"),
        "missing fingerprint line:\n{}",
        views[0]
    );
    assert_eq!(views[0], views[1], "simbench: 1 vs 2 threads diverged");
    assert_eq!(views[0], views[2], "simbench: 1 vs 4 threads diverged");
}

/// `--seed` still changes the numbers (the invariance above isn't a
/// constant-output bug).
#[test]
fn fig2a_seed_actually_steers_results() {
    let bin = env!("CARGO_BIN_EXE_fig2a");
    let a = run(bin, &["--trials", "3", "--seed", "1"]);
    let b = run(bin, &["--trials", "3", "--seed", "2"]);
    assert_ne!(a, b, "different seeds must change the sweep");
}
