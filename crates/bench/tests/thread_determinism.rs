//! The fan-out contract, end to end: the figure binaries must print
//! bit-identical stdout for every `--threads` value. Trial `t` of stream
//! `s` always seeds its RNG with `par::mix(seed, s, t)` regardless of
//! which worker runs it, and results are reassembled in trial order — so
//! parallelism is purely a wall-clock lever, never a results variable.

use std::process::Command;

/// Run a bench binary and return its stdout, asserting success.
fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout must be UTF-8")
}

/// stdout must be byte-identical across thread counts (and non-trivial).
fn assert_thread_invariant(bin: &str, base_args: &[&str]) {
    let mut outputs = Vec::new();
    for threads in ["1", "3", "8"] {
        let mut args = base_args.to_vec();
        args.extend(["--threads", threads]);
        outputs.push(run(bin, &args));
    }
    assert!(
        outputs[0].lines().count() > 5,
        "suspiciously short output:\n{}",
        outputs[0]
    );
    assert_eq!(outputs[0], outputs[1], "{bin}: 1 vs 3 threads diverged");
    assert_eq!(outputs[0], outputs[2], "{bin}: 1 vs 8 threads diverged");
}

#[test]
fn fig2a_output_is_thread_count_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_fig2a"), &["--trials", "4"]);
}

#[test]
fn fig2b_output_is_thread_count_invariant() {
    assert_thread_invariant(
        env!("CARGO_BIN_EXE_fig2b"),
        &["--trials", "1", "--groups", "20"],
    );
}

#[test]
fn ablation_output_is_thread_count_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_ablation"), &["--trials", "2"]);
}

/// `--seed` still changes the numbers (the invariance above isn't a
/// constant-output bug).
#[test]
fn fig2a_seed_actually_steers_results() {
    let bin = env!("CARGO_BIN_EXE_fig2a");
    let a = run(bin, &["--trials", "3", "--seed", "1"]);
    let b = run(bin, &["--trials", "3", "--seed", "2"]);
    assert_ne!(a, b, "different seeds must change the sweep");
}
