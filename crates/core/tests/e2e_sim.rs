//! End-to-end simulation of the full PIM scenario from the paper's
//! Figure 3/4/5 sequence, over the discrete-event simulator with real wire
//! encoding on every hop:
//!
//! 1. a receiver host joins via IGMP; its DR builds the (\*,G) tree to the
//!    RP (§3.1–3.2);
//! 2. a sender host transmits; its DR registers to the RP; the RP joins
//!    toward the source (§3);
//! 3. data reaches the receiver via the RP tree;
//! 4. the receiver's DR switches to the shortest-path tree, which diverges
//!    from the RP path (§3.3), prunes the source off the shared tree, and
//!    latency drops;
//! 5. delivery is continuous through the transition — no loss, no
//!    duplicates (§3.5's design goal).
//!
//! Topology (link delays in parens):
//!
//! ```text
//!   R ─ [n0] ──(1)── [n1] ──(1)── [n2=RP] ──(1)── [n3] ─ S
//!        └──────────────(2)───────────────────────┘
//! ```
//!
//! The direct n0–n3 link (delay 2) gives the SPT (S→n3→n0→R, delay 2+hosts)
//! a shorter path than the RP tree (S→n3→n2→n1→n0→R, delay 3+hosts).

use graph::{Graph, NodeId};
use netsim::{Duration, NodeIdx, SimTime, Topology, World};
use pim::{Engine, HostNode, PimConfig, PimRouter, SptPolicy};
use unicast::OracleRib;
use wire::{Addr, Group};

const GROUP_ID: u32 = 7;

fn group() -> Group {
    Group::test(GROUP_ID)
}

struct Net {
    world: World,
    r_host: NodeIdx,
    s_host: NodeIdx,
    rp_addr: Addr,
    s_addr: Addr,
}

/// Build the 4-router diamond with a receiver behind n0 and a sender
/// behind n3; RP at n2.
fn build(cfg: PimConfig) -> Net {
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    g.add_edge(NodeId(0), NodeId(3), 2);
    let topo = Topology::from_graph(&g);
    let rp_addr = netsim::router_addr(NodeId(2));
    let r_addr = netsim::host_addr(NodeId(0), 0);
    let s_addr = netsim::host_addr(NodeId(3), 0);

    let mut ribs: Vec<OracleRib> = OracleRib::for_all(&g, &topo);
    for (i, rib) in ribs.iter_mut().enumerate() {
        if i != 0 {
            rib.alias_host(r_addr, netsim::router_addr(NodeId(0)));
        }
        if i != 3 {
            rib.alias_host(s_addr, netsim::router_addr(NodeId(3)));
        }
    }
    let mut rib_iter = ribs.into_iter();
    let (mut world, _links) = topo.build_world(&g, 42, |plan| {
        let engine = Engine::new(plan.addr, plan.ifaces.len(), cfg);
        let mut router =
            PimRouter::new(engine, Box::new(rib_iter.next().expect("one rib per plan")));
        router.engine_mut().set_rp_mapping(group(), vec![rp_addr]);
        Box::new(router)
    });

    // Attach the hosts on LANs.
    let r_host = world.add_node(Box::new(HostNode::new(r_addr)));
    let (_l, if_r) = world.add_lan(&[NodeIdx(0), r_host], Duration(1));
    world
        .node_mut::<PimRouter>(NodeIdx(0))
        .attach_host_lan(if_r[0], &[r_addr]);

    let s_host = world.add_node(Box::new(HostNode::new(s_addr)));
    let (_l, if_s) = world.add_lan(&[NodeIdx(3), s_host], Duration(1));
    world
        .node_mut::<PimRouter>(NodeIdx(3))
        .attach_host_lan(if_s[0], &[s_addr]);

    Net {
        world,
        r_host,
        s_host,
        rp_addr,
        s_addr,
    }
}

/// Receiver joins at t=20; sender transmits seq 0..n spaced `gap` apart
/// starting at t=200 (tree warm by then).
fn run_scenario(cfg: PimConfig, packets: u64, gap: u64) -> Net {
    let mut net = build(cfg);
    let rh = net.r_host;
    net.world.at(SimTime(20), move |w| {
        w.call_node(rh, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host node")
                .join(ctx, group());
        });
    });
    let sh = net.s_host;
    for k in 0..packets {
        net.world.at(SimTime(200 + k * gap), move |w| {
            w.call_node(sh, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host node")
                    .send_data(ctx, group());
            });
        });
    }
    net.world.run_until(SimTime(200 + packets * gap + 400));
    net
}

#[test]
fn shared_tree_is_built_from_receiver_to_rp() {
    let mut net = build(PimConfig::default());
    let rh = net.r_host;
    net.world.at(SimTime(20), move |w| {
        w.call_node(rh, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group());
        });
    });
    net.world.run_until(SimTime(150));

    // (*,G) exists at n0, n1, n2 with the right shapes.
    for i in [0usize, 1, 2] {
        let r: &PimRouter = net.world.node(NodeIdx(i));
        let gs = r
            .engine()
            .group_state(group())
            .unwrap_or_else(|| panic!("router n{i} has no group state"));
        let star = gs.star.as_ref().unwrap_or_else(|| panic!("n{i}: no (*,G)"));
        assert!(star.wildcard && star.rp_bit, "n{i}");
        assert_eq!(star.key, net.rp_addr, "n{i}");
        if i == 2 {
            assert_eq!(star.iif, None, "the RP's iif is null");
        } else {
            assert!(star.iif.is_some(), "n{i}");
            assert!(!star.oifs_empty(), "n{i}");
        }
    }
    // n3 (not on the receiver→RP path) has no (*,G).
    let r3: &PimRouter = net.world.node(NodeIdx(3));
    assert!(
        r3.engine()
            .group_state(group())
            .is_none_or(|gs| gs.star.is_none()),
        "n3 must not hold shared-tree state"
    );
}

#[test]
fn data_flows_and_spt_switchover_happens() {
    let net = run_scenario(PimConfig::default(), 30, 20);
    let host: &HostNode = net.world.node(net.r_host);
    let seqs = host.seqs_from(net.s_addr, group());

    // Continuous delivery: every packet exactly once, in order.
    assert!(!seqs.is_empty(), "receiver got nothing");
    let expect: Vec<u64> = (0..30).collect();
    assert_eq!(seqs, expect, "lossless, duplicate-free, ordered delivery");

    // The receiver's DR ended up on the SPT: (S,G) with SPT bit set, iif
    // on the direct n0–n3 link, and the source pruned off the shared tree.
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group()).expect("state at DR");
    let sg = gs.sources.get(&net.s_addr).expect("(S,G) at DR");
    assert!(sg.spt_bit, "SPT transition must complete");
    assert!(sg.pruned_from_shared, "source pruned off the RP tree");
    // The SPT iif differs from the shared-tree iif.
    assert_ne!(sg.iif, gs.star.as_ref().unwrap().iif);

    // Intermediate shared-tree routers hold negative caches for S.
    let r1: &PimRouter = net.world.node(NodeIdx(1));
    let neg = r1
        .engine()
        .group_state(group())
        .and_then(|gs| gs.sources.get(&net.s_addr).cloned())
        .expect("negative cache at n1");
    assert!(neg.is_negative());
}

#[test]
fn latency_drops_after_spt_switch() {
    let net = run_scenario(PimConfig::default(), 30, 20);
    let host: &HostNode = net.world.node(net.r_host);
    let first = host
        .received
        .iter()
        .find(|r| r.seq == 0)
        .expect("first packet");
    let last = host
        .received
        .iter()
        .find(|r| r.seq == 29)
        .expect("last packet");
    // Send times: seq k at 200 + 20k. Latency = arrival - send.
    let lat_first = first.at.ticks() - 200;
    let lat_last = last.at.ticks() - (200 + 29 * 20);
    assert!(
        lat_last < lat_first,
        "SPT must beat the RP path: first={lat_first}t last={lat_last}t"
    );
    // Steady-state SPT latency: host→n3 (1) + n3→n0 (2) + n0→host (1) = 4.
    assert_eq!(lat_last, 4, "exact SPT path delay");
}

#[test]
fn shared_tree_only_policy_never_switches() {
    let net = run_scenario(PimConfig::shared_tree_only(), 20, 20);
    let host: &HostNode = net.world.node(net.r_host);
    let seqs = host.seqs_from(net.s_addr, group());
    assert_eq!(seqs, (0..20).collect::<Vec<u64>>());
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group()).expect("state");
    assert!(
        gs.sources.is_empty(),
        "policy Never: no (S,G) state at the DR"
    );
    // Steady-state latency stays on the RP path: 1 + (1+1+1) + 1 = 5.
    let last = host.received.iter().find(|r| r.seq == 19).expect("last");
    assert_eq!(last.at.ticks() - (200 + 19 * 20), 5);
}

#[test]
fn after_packets_policy_switches_late() {
    let cfg = PimConfig {
        spt_policy: SptPolicy::AfterPackets {
            packets: 10,
            within: Duration(1000),
        },
        ..PimConfig::default()
    };
    let net = run_scenario(cfg, 30, 20);
    let host: &HostNode = net.world.node(net.r_host);
    let seqs = host.seqs_from(net.s_addr, group());
    assert_eq!(
        seqs,
        (0..30).collect::<Vec<u64>>(),
        "no loss through the late switch"
    );
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group()).expect("state");
    assert!(
        gs.sources.get(&net.s_addr).is_some_and(|e| e.spt_bit),
        "switch must eventually happen"
    );
    // Early packets ride the RP path (latency 5), late ones the SPT (4).
    let early = host.received.iter().find(|r| r.seq == 0).expect("seq 0");
    let late = host.received.iter().find(|r| r.seq == 29).expect("seq 29");
    assert_eq!(early.at.ticks() - 200, 5);
    assert_eq!(late.at.ticks() - (200 + 29 * 20), 4);
}

#[test]
fn sender_side_registers_drop_to_probe_rate() {
    // 30 packets, 20 ticks apart: a 600-tick stream. Once the RP's join
    // arrives, registers are bounded by the probe clock
    // (register_probe_interval = 120), not the packet rate.
    let net = run_scenario(PimConfig::default(), 30, 20);
    let r3: &PimRouter = net.world.node(NodeIdx(3));
    let sent = r3.engine().registers_sent;
    let probe_gap = PimConfig::default().register_probe_interval.ticks();
    let probe_bound = 1 + 600 / probe_gap + 1;
    assert!(sent >= 1, "at least the first packet registers");
    assert!(
        sent <= probe_bound,
        "native forwarding must cut registers to the probe rate \
         (sent {sent}, bound {probe_bound} for 30 packets)"
    );
    let rp: &PimRouter = net.world.node(NodeIdx(2));
    assert_eq!(rp.engine().registers_received, sent);
}

#[test]
fn membership_expires_after_receiver_leaves() {
    let mut net = build(PimConfig::default());
    let rh = net.r_host;
    net.world.at(SimTime(20), move |w| {
        w.call_node(rh, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group());
        });
    });
    // Leave silently at t=400 (IGMPv1): membership times out at the DR.
    net.world.at(SimTime(400), move |w| {
        w.node_mut::<HostNode>(rh).leave(group());
    });
    net.world.run_until(SimTime(1500));
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let star_alive = r0
        .engine()
        .group_state(group())
        .and_then(|gs| gs.star.as_ref())
        .is_some_and(|s| s.has_local_members());
    assert!(
        !star_alive,
        "membership must lapse after the host stops reporting"
    );
    // Upstream state lapses too (soft state, §3.4).
    let r1: &PimRouter = net.world.node(NodeIdx(1));
    assert!(
        r1.engine()
            .group_state(group())
            .is_none_or(|gs| gs.star.is_none()),
        "n1's (*,G) must expire without refreshes"
    );
}

#[test]
fn no_data_reaches_nonmember_branches() {
    // Only links on the distribution path carry data packets: in sparse
    // mode nothing is broadcast (§3 "sparse mode multicast tries to
    // constrain the data distribution").
    let net = run_scenario(PimConfig::shared_tree_only(), 10, 20);
    // Link 3 is the direct n0–n3 edge: the shared tree never uses it.
    let counters = net.world.counters();
    // Edge order: (0-1)=0, (1-2)=1, (2-3)=2, (0-3)=3.
    let direct = counters.link(netsim::LinkId(3));
    assert_eq!(
        direct.data_pkts, 0,
        "shared-tree-only data must stay off the non-tree link"
    );
}
