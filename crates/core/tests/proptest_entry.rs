//! Property tests over the forwarding-entry state machine and the engine's
//! public invariants under random event sequences.

use netsim::{Duration, IfaceId, SimTime};
use pim::{Engine, Entry, OifKind, PimConfig};
use proptest::prelude::*;
use unicast::{OracleRib, RouteEntry};
use wire::pim::{GroupEntry, JoinPrune, SourceEntry};
use wire::{Addr, Group};

fn arb_kind() -> impl Strategy<Value = OifKind> {
    prop_oneof![
        Just(OifKind::Joined),
        Just(OifKind::CopiedFromStar),
        Just(OifKind::LocalMembers),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// add/remove/expire on an entry's oif set keep the forward set
    /// consistent: never contains the iif, never contains removed ifaces,
    /// local-member oifs never expire.
    #[test]
    fn entry_oif_state_machine(
        ops in prop::collection::vec(
            (0u32..6, arb_kind(), 0u64..500, any::<bool>()),
            1..40
        )
    ) {
        let mut e = Entry::new_star(
            Group::test(1),
            Addr::new(10, 0, 0, 9),
            Some(IfaceId(7)),
            Some(Addr::new(10, 0, 0, 9)),
        );
        let mut locals = std::collections::BTreeSet::new();
        for (iface, kind, at, remove) in ops {
            let iface = IfaceId(iface);
            if remove {
                e.remove_oif(iface);
                locals.remove(&iface);
            } else {
                e.add_oif(iface, kind, SimTime(at));
                if kind == OifKind::LocalMembers {
                    locals.insert(iface);
                }
            }
            // Invariants after every op:
            let fwd = e.forward_set(None);
            prop_assert!(!fwd.contains(&IfaceId(7)), "iif must never be forwarded to");
            prop_assert_eq!(e.has_local_members(), !locals.is_empty()
                || e.oifs.values().any(|o| o.kind == OifKind::LocalMembers));
        }
        // Expiry removes everything except local members.
        e.expire_oifs(SimTime(10_000));
        for (i, o) in &e.oifs {
            prop_assert_eq!(o.kind, OifKind::LocalMembers, "{:?} survived expiry", i);
        }
    }

    /// Feeding the engine arbitrary join/prune sequences never panics and
    /// never leaves an entry whose iif appears in its oif list.
    #[test]
    fn engine_survives_random_join_prune_sequences(
        events in prop::collection::vec(
            (
                0u32..4,           // arrival iface
                0u8..3,            // entry flavor: 0=shared, 1=source, 2=source-rpt
                any::<bool>(),     // join or prune
                1u16..400,         // holdtime
                0u64..1000,        // time
            ),
            1..60
        )
    ) {
        let me = Addr::new(10, 0, 1, 1);
        let rp = Addr::new(10, 0, 9, 1);
        let src = Addr::new(10, 0, 7, 10);
        let mut rib = OracleRib::empty(me);
        rib.insert(rp, RouteEntry { iface: IfaceId(0), next_hop: rp, metric: 1 });
        rib.insert(src, RouteEntry { iface: IfaceId(1), next_hop: Addr::new(10, 0, 7, 1), metric: 1 });
        let mut engine = Engine::new(me, 4, PimConfig::default());
        engine.set_rp_mapping(Group::test(1), vec![rp]);

        let mut now = 0u64;
        for (iface, flavor, is_join, holdtime, dt) in events {
            now += dt;
            let entry = match flavor {
                0 => SourceEntry::shared_tree(rp),
                1 => SourceEntry::source(src),
                _ => SourceEntry::source_on_rp_tree(src),
            };
            let ge = if is_join {
                GroupEntry::join(Group::test(1), entry)
            } else {
                GroupEntry::prune(Group::test(1), entry)
            };
            let jp = JoinPrune {
                upstream_neighbor: me,
                holdtime,
                groups: vec![ge],
            };
            engine.on_join_prune(SimTime(now), IfaceId(iface), Addr::new(10, 0, 5, 1), &jp, &rib);
            engine.tick(SimTime(now), &rib);

            if let Some(gs) = engine.group_state(Group::test(1)) {
                if let Some(star) = &gs.star {
                    if let Some(iif) = star.iif {
                        prop_assert!(!star.oifs.contains_key(&iif), "(*,G) iif in oifs");
                    }
                }
                for (s, e) in &gs.sources {
                    if let (Some(iif), false) = (e.iif, e.local_source) {
                        prop_assert!(!e.oifs.contains_key(&iif), "({s},G) iif in oifs");
                    }
                    if e.is_negative() {
                        prop_assert!(gs.star.is_some(), "negative cache without (*,G)");
                    }
                }
            }
        }
        // And the engine's state eventually drains without refreshes.
        let horizon = now + 10 * PimConfig::default().holdtime.ticks();
        engine.tick(SimTime(horizon), &rib);
        engine.tick(SimTime(horizon + Duration(400).ticks()), &rib);
        let residual = engine.entry_count();
        prop_assert!(
            residual == 0,
            "soft state must fully drain without refreshes ({residual} entries left)"
        );
    }
}
