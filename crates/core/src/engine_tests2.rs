//! Second batch of sans-IO engine tests: multi-RP behavior, entry
//! lifecycle corner cases, pending-prune mechanics, and register-path
//! details not covered by the first batch.

use crate::config::PimConfig;
use crate::engine::{Engine, Output};
use crate::entry::OifKind;
use netsim::{IfaceId, SimTime};
use unicast::{OracleRib, RouteEntry};
use wire::pim::{GroupEntry, JoinPrune, Query, Register, SourceEntry};
use wire::{Addr, Group, Message};

fn g() -> Group {
    Group::test(1)
}
fn t(x: u64) -> SimTime {
    SimTime(x)
}
fn rp1() -> Addr {
    Addr::new(10, 0, 3, 1)
}
fn rp2() -> Addr {
    Addr::new(10, 0, 8, 1)
}
fn me() -> Addr {
    Addr::new(10, 0, 4, 1)
}
fn src_host() -> Addr {
    Addr::new(10, 0, 4, 10)
}

fn sent_registers(out: &[Output]) -> Vec<(IfaceId, Addr)> {
    out.iter()
        .filter_map(|o| match o {
            Output::Send {
                iface,
                dst,
                msg: Message::PimRegister(_),
                ..
            } => Some((*iface, *dst)),
            _ => None,
        })
        .collect()
}

/// A sender-side DR with two RPs reachable over different interfaces.
fn sender_dr() -> (Engine, OracleRib) {
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    rib.insert(
        rp2(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: rp2(),
            metric: 2,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp1(), rp2()]);
    e.register_local_host(src_host(), IfaceId(0));
    (e, rib)
}

// ---------------------------------------------------------------------
// §3.9 multi-RP sender behavior
// ---------------------------------------------------------------------

#[test]
fn sender_registers_to_every_rp() {
    let (mut e, rib) = sender_dr();
    let out = e.on_local_data(t(5), IfaceId(0), src_host(), g(), b"p", &rib);
    let regs = sent_registers(&out);
    assert_eq!(
        regs,
        vec![(IfaceId(1), rp1()), (IfaceId(2), rp2())],
        "§3.9: each source registers toward each of the RPs"
    );
    assert_eq!(e.registers_sent, 2);
}

#[test]
fn register_to_self_when_dr_is_an_rp() {
    // The DR is itself RP#2: the local copy is processed in place, only
    // RP#1 gets a wire register.
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp1(), me()]);
    e.register_local_host(src_host(), IfaceId(0));
    let out = e.on_local_data(t(5), IfaceId(0), src_host(), g(), b"p", &rib);
    assert_eq!(sent_registers(&out), vec![(IfaceId(1), rp1())]);
}

#[test]
fn unreachable_rp_is_skipped_gracefully() {
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp2(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: rp2(),
            metric: 2,
        },
    );
    // rp1 has no route at all.
    let mut e = Engine::new(me(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp1(), rp2()]);
    e.register_local_host(src_host(), IfaceId(0));
    let out = e.on_local_data(t(5), IfaceId(0), src_host(), g(), b"p", &rib);
    assert_eq!(sent_registers(&out), vec![(IfaceId(2), rp2())]);
}

// ---------------------------------------------------------------------
// Entry lifecycle corners
// ---------------------------------------------------------------------

#[test]
fn spt_entry_deleted_after_linger_when_downstream_leaves() {
    // An intermediate router on an SPT: one downstream join, then silence.
    let mut rib = OracleRib::empty(me());
    rib.insert(
        src_host(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: Addr::new(10, 0, 9, 1),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 100,
        groups: vec![GroupEntry::join(g(), SourceEntry::source(src_host()))],
    };
    e.on_join_prune(t(0), IfaceId(2), Addr::new(10, 0, 5, 1), &join, &rib);
    assert!(e
        .group_state(g())
        .unwrap()
        .sources
        .contains_key(&src_host()));
    // oif lapses at t=100; upstream prune is sent; entry lingers 3×refresh
    // (180) and is deleted.
    let out = e.tick(t(101), &rib);
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send { msg: Message::PimJoinPrune(jp), .. }
            if jp.groups.iter().any(|ge| ge.prunes.contains(&SourceEntry::source(src_host())))
    )));
    e.tick(t(282), &rib);
    assert!(
        e.group_state(g()).is_none_or(|gs| gs.sources.is_empty()),
        "entry must be deleted 3 refresh periods after its oifs emptied"
    );
}

#[test]
fn rejoin_during_linger_cancels_deletion() {
    let mut rib = OracleRib::empty(me());
    rib.insert(
        src_host(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: Addr::new(10, 0, 9, 1),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 100,
        groups: vec![GroupEntry::join(g(), SourceEntry::source(src_host()))],
    };
    e.on_join_prune(t(0), IfaceId(2), Addr::new(10, 0, 5, 1), &join, &rib);
    e.tick(t(101), &rib); // oifs empty, delete_at armed
                          // A fresh join arrives during the linger window (its oif holds until
                          // t=250).
    e.on_join_prune(t(150), IfaceId(2), Addr::new(10, 0, 5, 1), &join, &rib);
    e.tick(t(240), &rib);
    let entry = &e.group_state(g()).unwrap().sources[&src_host()];
    assert!(
        entry.oifs.contains_key(&IfaceId(2)),
        "rejoin must revive the entry"
    );
    assert_eq!(entry.delete_at, None);
}

#[test]
fn local_member_left_removes_oifs_everywhere() {
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    rib.insert(
        src_host(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: Addr::new(10, 0, 9, 1),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp1()]);
    e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    // SPT switch for a remote source mirrors the member oif into (S,G).
    let remote_src = Addr::new(10, 0, 9, 10);
    rib.insert(
        remote_src,
        RouteEntry {
            iface: IfaceId(2),
            next_hop: Addr::new(10, 0, 9, 1),
            metric: 2,
        },
    );
    e.on_data(t(10), IfaceId(1), remote_src, g(), b"d", &rib);
    assert!(e.group_state(g()).unwrap().sources[&remote_src]
        .oifs
        .contains_key(&IfaceId(0)));

    let out = e.local_member_left(t(50), g(), IfaceId(0));
    let gs = e.group_state(g()).unwrap();
    assert!(!gs.star.as_ref().unwrap().oifs.contains_key(&IfaceId(0)));
    assert!(!gs.sources[&remote_src].oifs.contains_key(&IfaceId(0)));
    assert!(
        gs.star.as_ref().unwrap().rp_timer.is_none(),
        "no members → no RP-timer"
    );
    // With everything empty, prunes go upstream.
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Message::PimJoinPrune(_),
            ..
        }
    )));
}

#[test]
fn star_oif_expiry_cascades_to_copied_spt_oifs() {
    // An intermediate router with (*,G) oif from a downstream join, plus an
    // (S,G) entry that copied that oif.
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    rib.insert(
        src_host(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: Addr::new(10, 0, 9, 1),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    let down = Addr::new(10, 0, 5, 1);
    let star_join = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 100,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(0), IfaceId(0), down, &star_join, &rib);
    let src_join = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 400,
        groups: vec![GroupEntry::join(g(), SourceEntry::source(src_host()))],
    };
    // The (S,G) join arrives on a *different* iface; the (*,G) oif is
    // copied into the entry as CopiedFromStar.
    e.on_join_prune(t(1), IfaceId(1), Addr::new(10, 0, 6, 1), &src_join, &rib);
    {
        let sg = &e.group_state(g()).unwrap().sources[&src_host()];
        assert_eq!(sg.oifs[&IfaceId(0)].kind, OifKind::CopiedFromStar);
    }
    // The (*,G) oif lapses (no refresh): the copied oif must go with it.
    e.tick(t(150), &rib);
    let gs = e.group_state(g()).unwrap();
    assert!(gs
        .star
        .as_ref()
        .is_none_or(|s| !s.oifs.contains_key(&IfaceId(0))));
    assert!(
        !gs.sources[&src_host()].oifs.contains_key(&IfaceId(0)),
        "copied oifs follow the shared tree's lapses"
    );
    // The explicitly-joined oif survives.
    assert!(gs.sources[&src_host()].oifs.contains_key(&IfaceId(1)));
}

// ---------------------------------------------------------------------
// Register payload integrity and state at the RP
// ---------------------------------------------------------------------

#[test]
fn register_payload_is_forwarded_verbatim() {
    let mut rib = OracleRib::empty(rp1());
    rib.insert(
        src_host(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: me(),
            metric: 2,
        },
    );
    let mut e = Engine::new(rp1(), 2, PimConfig::default());
    e.set_rp_mapping(g(), vec![rp1()]);
    let join = JoinPrune {
        upstream_neighbor: rp1(),
        holdtime: 300,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(0), IfaceId(0), Addr::new(10, 0, 2, 1), &join, &rib);
    let payload = vec![0xAB; 100];
    let out = e.on_register(
        t(5),
        &Register {
            group: g(),
            source: src_host(),
            payload: payload.clone(),
        },
        &rib,
    );
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Forward { payload: p, source, .. } if *p == payload && *source == src_host()
    )));
}

#[test]
fn second_register_does_not_rejoin() {
    let mut rib = OracleRib::empty(rp1());
    rib.insert(
        src_host(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: me(),
            metric: 2,
        },
    );
    let mut e = Engine::new(rp1(), 2, PimConfig::default());
    e.set_rp_mapping(g(), vec![rp1()]);
    let join = JoinPrune {
        upstream_neighbor: rp1(),
        holdtime: 300,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(0), IfaceId(0), Addr::new(10, 0, 2, 1), &join, &rib);
    let reg = Register {
        group: g(),
        source: src_host(),
        payload: b"x".to_vec(),
    };
    let out1 = e.on_register(t(5), &reg, &rib);
    let joins1 = out1
        .iter()
        .filter(|o| {
            matches!(
                o,
                Output::Send {
                    msg: Message::PimJoinPrune(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(joins1, 1, "first register triggers the (S,G) join");
    let out2 = e.on_register(t(6), &reg, &rib);
    let joins2 = out2
        .iter()
        .filter(|o| {
            matches!(
                o,
                Output::Send {
                    msg: Message::PimJoinPrune(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(joins2, 0, "further registers must not re-trigger the join");
}

// ---------------------------------------------------------------------
// LAN pending-prune mechanics
// ---------------------------------------------------------------------

#[test]
fn pending_prune_executes_via_tick_not_immediately() {
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 2, PimConfig::default());
    e.set_lan(IfaceId(0));
    let down = Addr::new(10, 0, 5, 1);
    let join = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 300,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(0), IfaceId(0), down, &join, &rib);
    let prune = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 300,
        groups: vec![GroupEntry::prune(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(10), IfaceId(0), down, &prune, &rib);
    // Before the override window closes, ticks do nothing.
    e.tick(t(12), &rib);
    assert!(e
        .group_state(g())
        .unwrap()
        .star
        .as_ref()
        .unwrap()
        .oifs
        .contains_key(&IfaceId(0)));
    // After it closes, the prune lands.
    e.tick(t(15), &rib);
    assert!(!e
        .group_state(g())
        .unwrap()
        .star
        .as_ref()
        .unwrap()
        .oifs
        .contains_key(&IfaceId(0)));
}

#[test]
fn p2p_prune_is_immediate() {
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    let mut e = Engine::new(me(), 2, PimConfig::default());
    // iface 0 NOT marked as LAN.
    let down = Addr::new(10, 0, 5, 1);
    let join = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 300,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(0), IfaceId(0), down, &join, &rib);
    let prune = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 300,
        groups: vec![GroupEntry::prune(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(10), IfaceId(0), down, &prune, &rib);
    assert!(
        !e.group_state(g())
            .unwrap()
            .star
            .as_ref()
            .unwrap()
            .oifs
            .contains_key(&IfaceId(0)),
        "point-to-point prunes take effect immediately (no override possible)"
    );
}

// ---------------------------------------------------------------------
// DR election timing
// ---------------------------------------------------------------------

#[test]
fn dr_role_returns_when_higher_neighbor_expires() {
    let mut e = Engine::new(me(), 2, PimConfig::default());
    let rib = OracleRib::empty(me());
    e.on_query(
        t(0),
        IfaceId(0),
        Addr::new(10, 0, 200, 1),
        &Query { holdtime: 50 },
    );
    assert!(!e.is_dr(IfaceId(0)));
    // Refreshes keep the neighbor alive.
    e.on_query(
        t(40),
        IfaceId(0),
        Addr::new(10, 0, 200, 1),
        &Query { holdtime: 50 },
    );
    e.tick(t(60), &rib);
    assert!(!e.is_dr(IfaceId(0)));
    // Silence past the holdtime: DR again.
    e.tick(t(95), &rib);
    assert!(e.is_dr(IfaceId(0)));
}

#[test]
fn wildcard_join_reroots_shared_tree_toward_new_rp() {
    // §3.9 propagation: an upstream router whose (*,G) names the dead RP
    // re-roots when a downstream join names the alternate.
    let mut rib = OracleRib::empty(me());
    rib.insert(
        rp1(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp1(),
            metric: 1,
        },
    );
    rib.insert(
        rp2(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: rp2(),
            metric: 2,
        },
    );
    let mut e = Engine::new(me(), 3, PimConfig::default());
    let down = Addr::new(10, 0, 5, 1);
    let join1 = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 300,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp1()))],
    };
    e.on_join_prune(t(0), IfaceId(0), down, &join1, &rib);
    assert_eq!(
        e.group_state(g()).unwrap().star.as_ref().unwrap().key,
        rp1()
    );
    // The downstream failed over; its refresh now names rp2.
    let join2 = JoinPrune {
        upstream_neighbor: me(),
        holdtime: 300,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp2()))],
    };
    let out = e.on_join_prune(t(50), IfaceId(0), down, &join2, &rib);
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert_eq!(star.key, rp2());
    assert_eq!(star.iif, Some(IfaceId(2)));
    assert_eq!(star.upstream, Some(rp2()));
    // And a triggered join flows toward the new RP.
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Send { iface, msg: Message::PimJoinPrune(jp), .. }
            if *iface == IfaceId(2)
                && jp.groups[0].joins == vec![SourceEntry::shared_tree(rp2())]
    )));
}
