//! The [`netsim`] adapter: a PIM router node.
//!
//! A [`PimRouter`] combines:
//!
//! * a [`crate::Engine`] (the sans-IO PIM protocol),
//! * any [`unicast::Engine`] — distance-vector, link-state, or the oracle —
//!   consumed *only* through the [`unicast::Rib`] trait (protocol
//!   independence, paper §2),
//! * one [`igmp::Querier`] per host-facing interface,
//! * plain unicast IP forwarding (Registers travel RP-ward as ordinary
//!   unicast packets).
//!
//! The adapter owns all the IO: it decapsulates packets off the simulator,
//! dispatches them to the right engine, and carries out the outputs.

use crate::engine::{Engine, Output};
use igmp::{Querier, QuerierOutput};
use netsim::{Ctx, Duration, IfaceId, Node, SimTime};
use std::any::Any;
use std::collections::HashMap;
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

/// Timer token for the main periodic tick.
const TOKEN_TICK: u64 = 1;

/// How often the adapter polls its engines. Must not exceed the PIM
/// prune-override delay, or LAN overrides would be processed late.
const TICK_GRANULARITY: Duration = Duration(2);

/// Data TTL used when (re)originating packets (decapsulated registers).
const DATA_TTL: u8 = 32;

/// A PIM-speaking router node for the simulator.
pub struct PimRouter {
    pim: Engine,
    unicast: Box<dyn unicast::Engine>,
    /// IGMP querier state per host-facing interface.
    queriers: HashMap<IfaceId, Querier>,
    igmp_cfg: igmp::Config,
    /// Count of multicast data packets this router forwarded (processing
    /// overhead metric).
    pub data_forwards: u64,
    /// Count of PIM/IGMP control messages processed.
    pub control_msgs: u64,
    next_tick: SimTime,
}

impl PimRouter {
    /// Build a router from its PIM engine and a unicast routing engine.
    pub fn new(pim: Engine, unicast: Box<dyn unicast::Engine>) -> PimRouter {
        PimRouter {
            pim,
            unicast,
            queriers: HashMap::new(),
            igmp_cfg: igmp::Config::default(),
            data_forwards: 0,
            control_msgs: 0,
            next_tick: SimTime::ZERO,
        }
    }

    /// Declare `iface` a host-facing subnetwork: an IGMP querier runs
    /// there, attached `hosts` are registered as potential sources, and
    /// the unicast engine originates reachability for them.
    pub fn attach_host_lan(&mut self, iface: IfaceId, hosts: &[Addr]) {
        // Host LANs are wired after the router-router backbone; grow the
        // engines' interface tables to cover the new index.
        while self.pim.iface_count() <= iface.index() {
            self.pim.add_iface();
            self.unicast.grow_iface(1);
        }
        self.pim.set_host_lan(iface);
        self.queriers
            .insert(iface, Querier::new(self.pim.addr(), self.igmp_cfg));
        for &h in hosts {
            self.pim.register_local_host(h, iface);
            self.unicast.attach_local(h, 1);
        }
    }

    /// Declare `iface` a multi-access subnetwork shared with other PIM
    /// routers (§3.7 LAN rules apply).
    pub fn set_lan_iface(&mut self, iface: IfaceId) {
        self.pim.set_lan(iface);
    }

    /// Configure the G → RP(s) mapping (§3.1).
    pub fn set_rp_mapping(&mut self, group: Group, rps: Vec<Addr>) {
        self.pim.set_rp_mapping(group, rps);
    }

    /// The PIM engine (inspection).
    pub fn engine(&self) -> &Engine {
        &self.pim
    }

    /// The unicast engine (inspection).
    pub fn rib(&self) -> &dyn unicast::Engine {
        self.unicast.as_ref()
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.pim.addr()
    }

    fn send_control(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, dst: Addr, ttl: u8, msg: &Message) {
        let header = Header {
            proto: Protocol::Igmp,
            ttl,
            src: self.pim.addr(),
            dst,
        };
        ctx.send(iface, header.encap(&msg.encode()));
    }

    fn handle_pim_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<Output>, data_ttl: u8) {
        for o in outputs {
            match o {
                Output::Send { iface, dst, ttl, msg } => {
                    self.send_control(ctx, iface, dst, ttl, &msg);
                }
                Output::Forward { ifaces, source, group, payload } => {
                    let header = Header {
                        proto: Protocol::Data,
                        ttl: data_ttl,
                        src: source,
                        dst: group.addr(),
                    };
                    let pkt = header.encap(&payload);
                    for i in ifaces {
                        self.data_forwards += 1;
                        ctx.send(i, pkt.clone());
                    }
                }
            }
        }
    }

    fn handle_unicast_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<unicast::Output>) {
        let now = ctx.now();
        for o in outputs {
            match o {
                unicast::Output::Send { iface, dst, msg } => {
                    self.send_control(ctx, iface, dst, 1, &msg);
                }
                unicast::Output::RouteChanged { dst } => {
                    let outs = self.pim.on_route_change(now, dst, self.unicast.as_ref());
                    self.handle_pim_outputs(ctx, outs, DATA_TTL);
                }
            }
        }
    }

    fn handle_querier_outputs(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, outputs: Vec<QuerierOutput>) {
        let now = ctx.now();
        for o in outputs {
            match o {
                QuerierOutput::Send { dst, msg } => {
                    self.send_control(ctx, iface, dst, 1, &msg);
                }
                QuerierOutput::MemberJoined(group) => {
                    let outs = self
                        .pim
                        .local_member_joined(now, group, iface, self.unicast.as_ref());
                    self.handle_pim_outputs(ctx, outs, DATA_TTL);
                }
                QuerierOutput::MemberExpired(group) => {
                    let outs = self.pim.local_member_left(now, group, iface);
                    self.handle_pim_outputs(ctx, outs, DATA_TTL);
                }
                QuerierOutput::RpMappingLearned(group, rps) => {
                    if self.pim.rp_mapping(group).is_empty() {
                        self.pim.set_rp_mapping(group, rps);
                    }
                }
            }
        }
    }

    /// Forward a unicast packet not addressed to us via the routing table.
    fn forward_unicast(&mut self, ctx: &mut Ctx<'_>, header: &Header, payload: &[u8]) {
        let Some(next) = header.decrement_ttl() else {
            return; // TTL exhausted
        };
        if let Some(r) = self.unicast.route(header.dst) {
            ctx.send(r.iface, next.encap(payload));
        }
    }

    fn on_igmp_family(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, header: &Header, payload: &[u8]) {
        let Ok(msg) = Message::decode(payload) else {
            return; // malformed control traffic is dropped, never panics
        };
        self.control_msgs += 1;
        let now = ctx.now();
        match &msg {
            Message::HostQuery(_) | Message::HostReport(_) | Message::RpMapping(_) => {
                if let Some(q) = self.queriers.get_mut(&iface) {
                    let outs = q.on_message(now, header.src, &msg);
                    self.handle_querier_outputs(ctx, iface, outs);
                }
            }
            Message::PimQuery(q) => {
                let outs = self.pim.on_query(now, iface, header.src, q);
                self.handle_pim_outputs(ctx, outs, DATA_TTL);
            }
            Message::PimJoinPrune(jp) => {
                let outs = self
                    .pim
                    .on_join_prune(now, iface, header.src, jp, self.unicast.as_ref());
                self.handle_pim_outputs(ctx, outs, DATA_TTL);
            }
            Message::PimRpReachability(r) => {
                let outs = self.pim.on_rp_reachability(now, iface, r);
                self.handle_pim_outputs(ctx, outs, DATA_TTL);
            }
            Message::PimRegister(reg) => {
                if header.dst == self.pim.addr() {
                    let outs = self.pim.on_register(now, reg, self.unicast.as_ref());
                    self.handle_pim_outputs(ctx, outs, DATA_TTL);
                } else {
                    // In transit toward the RP: ordinary unicast forwarding.
                    self.forward_unicast(ctx, header, payload);
                }
            }
            Message::DvUpdate(_) | Message::Lsa(_) | Message::Hello(_) => {
                let outs = self.unicast.on_message(now, iface, header.src, &msg);
                self.handle_unicast_outputs(ctx, outs);
            }
            // DVMRP/CBT messages are other protocols' business; a PIM
            // router ignores them.
            _ => {}
        }
    }

    fn on_data_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, header: &Header, payload: &[u8]) {
        let now = ctx.now();
        if header.dst.is_multicast() {
            let Some(group) = Group::new(header.dst) else {
                return;
            };
            let Some(fwd_header) = header.decrement_ttl() else {
                return;
            };
            let is_host_src = self.queriers.contains_key(&iface);
            let outs = if is_host_src {
                self.pim
                    .on_local_data(now, iface, header.src, group, payload, self.unicast.as_ref())
            } else {
                self.pim
                    .on_data(now, iface, header.src, group, payload, self.unicast.as_ref())
            };
            // Count deliveries toward local members for the experiment
            // counters: any forward onto a host LAN is a delivery edge.
            for o in &outs {
                if let Output::Forward { ifaces, .. } = o {
                    for i in ifaces {
                        if self.queriers.contains_key(i) {
                            ctx.count_local_delivery();
                        }
                    }
                }
            }
            self.handle_pim_outputs(ctx, outs, fwd_header.ttl);
        } else if header.dst != self.pim.addr() {
            self.forward_unicast(ctx, header, payload);
        }
    }
}

impl Node for PimRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.unicast.on_start(ctx.now());
        self.handle_unicast_outputs(ctx, outs);
        ctx.set_timer(Duration::ZERO, TOKEN_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        let Ok((header, payload)) = Header::decap(packet) else {
            return; // corrupt packets are dropped
        };
        match header.proto {
            Protocol::Igmp => self.on_igmp_family(ctx, iface, &header, payload),
            Protocol::Data => self.on_data_packet(ctx, iface, &header, payload),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        let now = ctx.now();
        if now >= self.next_tick {
            self.next_tick = now + TICK_GRANULARITY;
            // Unicast engine tick (its own interval gating is internal to
            // engines with real protocols; the oracle's is effectively
            // never).
            if self.unicast.tick_interval().ticks() != u64::MAX {
                let outs = self.unicast.tick(now);
                self.handle_unicast_outputs(ctx, outs);
            }
            // IGMP queriers.
            let ifaces: Vec<IfaceId> = self.queriers.keys().copied().collect();
            for i in ifaces {
                let outs = self
                    .queriers
                    .get_mut(&i)
                    .expect("key just listed")
                    .tick(now);
                self.handle_querier_outputs(ctx, i, outs);
            }
            // PIM engine.
            let outs = self.pim.tick(now, self.unicast.as_ref());
            self.handle_pim_outputs(ctx, outs, DATA_TTL);
        }
        ctx.set_timer(TICK_GRANULARITY, TOKEN_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
