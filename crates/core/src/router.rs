//! The [`netsim`] adapter: a PIM router node.
//!
//! [`PimRouter`] is the generic [`node::ProtocolNode`] instantiated with
//! the PIM [`Engine`]; this module only supplies the [`ProtocolEngine`]
//! glue — message dispatch and output conversion. The node itself owns all
//! IO, the per-LAN IGMP queriers, the interchangeable unicast engine
//! (protocol independence, paper §2), and the deadline-driven wakeup
//! scheduling.

use crate::engine::{Engine, Output};
use netsim::{IfaceId, SimTime};
use node::{Action, ProtocolEngine};
use unicast::Rib;
use wire::{Addr, Group, Message};

/// Data TTL used when (re)originating packets (decapsulated registers).
const DATA_TTL: u8 = 32;

/// A PIM-speaking router node for the simulator.
pub type PimRouter = node::ProtocolNode<Engine>;

/// Convert engine outputs into node actions, stamping `data_ttl` on data
/// forwards.
fn actions(outs: Vec<Output>, data_ttl: u8) -> Vec<Action> {
    outs.into_iter()
        .map(|o| match o {
            Output::Send {
                iface,
                dst,
                ttl,
                msg,
            } => Action::Control {
                iface,
                dst,
                ttl,
                msg,
            },
            Output::Forward {
                ifaces,
                source,
                group,
                payload,
            } => Action::Forward {
                ifaces,
                source,
                group,
                ttl: data_ttl,
                payload,
            },
        })
        .collect()
}

impl ProtocolEngine for Engine {
    fn addr(&self) -> Addr {
        Engine::addr(self)
    }

    fn set_telemetry(&mut self, telem: telemetry::Telem) {
        Engine::set_telemetry(self, telem);
    }

    fn on_control(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        dst: Addr,
        msg: &Message,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        match msg {
            Message::PimQuery(q) => actions(self.on_query(now, iface, src, q), DATA_TTL),
            Message::PimJoinPrune(jp) => {
                actions(self.on_join_prune(now, iface, src, jp, rib), DATA_TTL)
            }
            Message::PimRpReachability(r) => {
                actions(self.on_rp_reachability(now, iface, r), DATA_TTL)
            }
            Message::PimRegister(reg) => {
                if dst == Engine::addr(self) {
                    actions(self.on_register(now, reg, rib), DATA_TTL)
                } else {
                    // In transit toward the RP: ordinary unicast forwarding.
                    vec![Action::RelayUnicast]
                }
            }
            // DVMRP/CBT messages are other protocols' business; a PIM
            // router ignores them.
            _ => Vec::new(),
        }
    }

    fn on_multicast_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        ttl: u8,
        payload: &[u8],
        from_host_lan: bool,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        let outs = if from_host_lan {
            self.on_local_data(now, iface, source, group, payload, rib)
        } else {
            self.on_data(now, iface, source, group, payload, rib)
        };
        actions(outs, ttl)
    }

    fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        actions(
            Engine::local_member_joined(self, now, group, iface, rib),
            DATA_TTL,
        )
    }

    fn local_member_left(&mut self, now: SimTime, group: Group, iface: IfaceId) -> Vec<Action> {
        actions(Engine::local_member_left(self, now, group, iface), DATA_TTL)
    }

    fn rp_mapping_learned(&mut self, group: Group, rps: &[Addr]) {
        // Static configuration wins over host advertisements.
        if self.rp_mapping(group).is_empty() {
            self.set_rp_mapping(group, rps.to_vec());
        }
    }

    fn host_lan_attached(&mut self, iface: IfaceId) -> u32 {
        // Host LANs are wired after the router-router backbone; grow the
        // engine's interface table to cover the new index.
        let mut grown = 0;
        while self.iface_count() <= iface.index() {
            self.add_iface();
            grown += 1;
        }
        self.set_host_lan(iface);
        grown
    }

    fn register_local_host(&mut self, host: Addr, iface: IfaceId) {
        Engine::register_local_host(self, host, iface);
    }

    fn on_route_change(&mut self, now: SimTime, dst: Addr, rib: &dyn Rib) -> Vec<Action> {
        actions(Engine::on_route_change(self, now, dst, rib), DATA_TTL)
    }

    fn reset(&mut self) {
        Engine::reset(self);
    }

    fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Action> {
        actions(Engine::tick(self, now, rib), DATA_TTL)
    }

    fn next_deadline(&self) -> Option<SimTime> {
        Engine::next_deadline(self)
    }
}
