//! Multicast forwarding entries — the router state the paper defines in §3.
//!
//! "The shortest path tree state maintained in routers is roughly the same
//! as the forwarding information that is currently maintained by routers
//! running existing IP multicast protocols ... source (S), multicast address
//! (G), outgoing interface set (oif), incoming interface (iif). We refer to
//! this forwarding information as the multicast forwarding entry for (S,G).
//! ... A (\*,G) entry keeps the same information an (S,G) entry keeps,
//! except that it saves the RP address in place of the source address.
//! There is a wildcard flag indicating that this is a shared tree entry."
//!
//! One [`Entry`] type covers all three shapes the protocol uses:
//!
//! | shape             | `wildcard` | `rp_bit` | iif points toward |
//! |-------------------|-----------|----------|-------------------|
//! | (\*,G) shared     | true      | true     | the RP            |
//! | (S,G) shortest path| false    | false    | the source        |
//! | (S,G) negative cache (on RP tree) | false | true | the RP    |

use netsim::{IfaceId, SimTime};
use std::collections::BTreeMap;
use wire::{Addr, Group};

/// Why an outgoing interface is in the oif list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OifKind {
    /// A downstream PIM router joined on this interface; kept alive by
    /// join refreshes (§3.6).
    Joined,
    /// Copied from the (\*,G) entry when an (S,G) entry was created (§3.3:
    /// "the outgoing interface list is copied from (\*,G)"); its timer is
    /// slaved to the (\*,G) oif (footnote 12).
    CopiedFromStar,
    /// A directly attached subnetwork with local members (IGMP-maintained;
    /// no PIM timer — IGMP expiry removes it).
    LocalMembers,
}

/// One outgoing interface of a forwarding entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Oif {
    /// Why this interface is here.
    pub kind: OifKind,
    /// When the interface lapses unless refreshed ([`SimTime`] max for
    /// local-member oifs, which IGMP manages).
    pub expires_at: SimTime,
}

/// A multicast forwarding entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The group.
    pub group: Group,
    /// The source address — or the RP address when `wildcard` is set.
    pub key: Addr,
    /// The WC bit: this is a (\*,G) shared-tree entry.
    pub wildcard: bool,
    /// The RP bit: the iif check for this entry is toward the RP, not the
    /// source, and periodic join/prune for it goes toward the RP
    /// (footnote 10).
    pub rp_bit: bool,
    /// The SPT bit (§3.3): the transition from shared tree to this
    /// source's shortest-path tree has completed (data has arrived over
    /// the SPT interface).
    pub spt_bit: bool,
    /// Incoming interface. `None` at the RP for its own (\*,G) ("the
    /// incoming interface in the RP's (\*,G) entry is set to null"), and
    /// for entries whose source is a directly attached host until the host
    /// interface is learned.
    pub iif: Option<IfaceId>,
    /// The upstream neighbor joins/prunes for this entry are sent to.
    pub upstream: Option<Addr>,
    /// Outgoing interfaces, ordered for deterministic iteration.
    pub oifs: BTreeMap<IfaceId, Oif>,
    /// LAN-pruned interfaces of a negative-cache entry: present in the
    /// parallel (\*,G) oif list but excluded here. Only used when
    /// `rp_bit && !wildcard` (footnote 11).
    pub pruned_oifs: BTreeMap<IfaceId, SimTime>,
    /// (\*,G) only: RP-reachability timer (§3.1/§3.9). `Some(t)` = declare
    /// the RP unreachable at `t`. Tracked when this router has local
    /// members.
    pub rp_timer: Option<SimTime>,
    /// (S,G) SPT entries: we have pruned this source off the shared tree,
    /// so periodic prunes {S, RPbit} toward the RP keep the negative
    /// caches upstream alive (footnotes 10/13).
    pub pruned_from_shared: bool,
    /// Set when the oif list went null: the entry is deleted at this time
    /// ("the entry is deleted after 3 times the refresh period", §3.6).
    pub delete_at: Option<SimTime>,
    /// LAN join suppression (§3.7): skip our periodic upstream join until
    /// this time because we overheard an equivalent join.
    pub suppressed_until: Option<SimTime>,
    /// For source entries at the source's own DR: the data actually
    /// originates on a directly attached subnetwork.
    pub local_source: bool,
    /// For local-source entries: the next time the DR re-registers a data
    /// packet to the RP(s) even though it is forwarding natively (the
    /// periodic register probe; see `PimConfig::register_probe_interval`).
    pub next_register_probe: SimTime,
}

impl Entry {
    /// A new (\*,G) entry (§3.1): iif toward the RP, WC and RP bits set.
    pub fn new_star(group: Group, rp: Addr, iif: Option<IfaceId>, upstream: Option<Addr>) -> Entry {
        Entry {
            group,
            key: rp,
            wildcard: true,
            rp_bit: true,
            spt_bit: false,
            iif,
            upstream,
            oifs: BTreeMap::new(),
            pruned_oifs: BTreeMap::new(),
            rp_timer: None,
            pruned_from_shared: false,
            delete_at: None,
            suppressed_until: None,
            local_source: false,
            next_register_probe: SimTime::ZERO,
        }
    }

    /// A new (S,G) shortest-path-tree entry (§3.3): iif toward the source,
    /// SPT bit cleared until data arrives over it.
    pub fn new_source(
        group: Group,
        source: Addr,
        iif: Option<IfaceId>,
        upstream: Option<Addr>,
    ) -> Entry {
        Entry {
            group,
            key: source,
            wildcard: false,
            rp_bit: false,
            spt_bit: false,
            iif,
            upstream,
            oifs: BTreeMap::new(),
            pruned_oifs: BTreeMap::new(),
            rp_timer: None,
            pruned_from_shared: false,
            delete_at: None,
            suppressed_until: None,
            local_source: false,
            next_register_probe: SimTime::ZERO,
        }
    }

    /// A new (S,G) negative-cache entry on the RP tree (footnote 11): RP
    /// bit set, iif toward the RP.
    pub fn new_negative(
        group: Group,
        source: Addr,
        iif: Option<IfaceId>,
        upstream: Option<Addr>,
    ) -> Entry {
        Entry {
            group,
            key: source,
            wildcard: false,
            rp_bit: true,
            spt_bit: false,
            iif,
            upstream,
            oifs: BTreeMap::new(),
            pruned_oifs: BTreeMap::new(),
            rp_timer: None,
            pruned_from_shared: false,
            delete_at: None,
            suppressed_until: None,
            local_source: false,
            next_register_probe: SimTime::ZERO,
        }
    }

    /// Is this a negative cache — an (S,G) entry with the RP bit set?
    pub fn is_negative(&self) -> bool {
        self.rp_bit && !self.wildcard
    }

    /// Add or refresh an outgoing interface. A [`OifKind::Joined`] add
    /// upgrades a copied oif (an explicit join now backs it) and clears a
    /// pending deletion.
    pub fn add_oif(&mut self, iface: IfaceId, kind: OifKind, expires_at: SimTime) {
        let oif = self.oifs.entry(iface).or_insert(Oif { kind, expires_at });
        // Refresh, and upgrade Copied → Joined / Local.
        if oif.expires_at < expires_at {
            oif.expires_at = expires_at;
        }
        if oif.kind == OifKind::CopiedFromStar && kind != OifKind::CopiedFromStar {
            oif.kind = kind;
        }
        if kind == OifKind::LocalMembers {
            oif.kind = OifKind::LocalMembers;
            oif.expires_at = SimTime(u64::MAX);
        }
        self.delete_at = None;
    }

    /// Remove an outgoing interface; returns true if it was present.
    pub fn remove_oif(&mut self, iface: IfaceId) -> bool {
        self.oifs.remove(&iface).is_some()
    }

    /// The interfaces a matching data packet is forwarded to, excluding
    /// `arrival` (never send a packet back where it came from).
    pub fn forward_set(&self, arrival: Option<IfaceId>) -> Vec<IfaceId> {
        self.oifs
            .keys()
            .copied()
            .filter(|&i| Some(i) != arrival && Some(i) != self.iif)
            .collect()
    }

    /// True when the oif list is empty — the §3.6 trigger for pruning
    /// upstream and scheduling deletion.
    pub fn oifs_empty(&self) -> bool {
        self.oifs.is_empty()
    }

    /// Does the entry have a local-member oif (this router is a "router
    /// with directly-connected members", §3.3)?
    pub fn has_local_members(&self) -> bool {
        self.oifs.values().any(|o| o.kind == OifKind::LocalMembers)
    }

    /// Expire lapsed oifs at `now`; returns the removed interfaces (§3.6:
    /// "when a timer expires, the corresponding outgoing interface is
    /// deleted from the outgoing interface list").
    pub fn expire_oifs(&mut self, now: SimTime) -> Vec<IfaceId> {
        let lapsed: Vec<IfaceId> = self
            .oifs
            .iter()
            .filter(|(_, o)| o.kind != OifKind::LocalMembers && now >= o.expires_at)
            .map(|(&i, _)| i)
            .collect();
        for &i in &lapsed {
            self.oifs.remove(&i);
        }
        lapsed
    }

    /// The earliest pending timer of this entry: oif expiries (excluding
    /// IGMP-pinned local-member oifs), pruned-oif lease lapses, the RP
    /// liveness timer, and the deletion deadline. `suppressed_until` is
    /// deliberately excluded — it is only consulted when the periodic
    /// refresh fires, so it never needs a wakeup of its own.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best = netsim::earliest(self.rp_timer, self.delete_at);
        for o in self.oifs.values() {
            if o.kind != OifKind::LocalMembers && o.expires_at != SimTime(u64::MAX) {
                best = netsim::earliest(best, Some(o.expires_at));
            }
        }
        best = netsim::earliest(best, self.pruned_oifs.values().copied().min());
        best
    }
}

/// The state kept for one group: the optional shared-tree entry plus
/// per-source entries. Source entries are keyed by source address; an
/// entry's `rp_bit` distinguishes SPT state from negative caches.
#[derive(Clone, Debug, Default)]
pub struct GroupState {
    /// The (\*,G) entry, if any.
    pub star: Option<Entry>,
    /// (S,G) entries (both SPT and negative-cache), keyed by source.
    pub sources: BTreeMap<Addr, Entry>,
    /// The RPs advertised for this group, in preference order (§3.9).
    pub rps: Vec<Addr>,
    /// Index into `rps` of the RP this router's receivers currently join
    /// toward.
    pub current_rp: usize,
}

impl GroupState {
    /// The RP receivers currently join toward.
    pub fn rp(&self) -> Option<Addr> {
        self.rps.get(self.current_rp).copied()
    }

    /// Advance to the next RP in the list (failover, §3.9); wraps around.
    /// Returns the new RP.
    pub fn next_rp(&mut self) -> Option<Addr> {
        if self.rps.is_empty() {
            return None;
        }
        self.current_rp = (self.current_rp + 1) % self.rps.len();
        self.rp()
    }

    /// The §3.5 longest-match rule: an (S,G) entry — SPT or negative cache
    /// — matches before the (\*,G) entry.
    pub fn match_data(&self, source: Addr) -> Option<&Entry> {
        self.sources.get(&source).or(self.star.as_ref())
    }

    /// Total number of forwarding entries (state-overhead metric).
    pub fn entry_count(&self) -> usize {
        self.sources.len() + usize::from(self.star.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Group {
        Group::test(1)
    }

    fn rp() -> Addr {
        Addr::new(10, 0, 0, 9)
    }

    fn src() -> Addr {
        Addr::new(10, 0, 7, 10)
    }

    #[test]
    fn entry_shapes() {
        let star = Entry::new_star(g(), rp(), Some(IfaceId(1)), Some(rp()));
        assert!(star.wildcard && star.rp_bit && !star.is_negative());
        let spt = Entry::new_source(g(), src(), Some(IfaceId(2)), None);
        assert!(!spt.wildcard && !spt.rp_bit && !spt.is_negative());
        let neg = Entry::new_negative(g(), src(), Some(IfaceId(1)), Some(rp()));
        assert!(neg.is_negative());
    }

    #[test]
    fn add_refresh_upgrade_oif() {
        let mut e = Entry::new_star(g(), rp(), Some(IfaceId(0)), None);
        e.add_oif(IfaceId(2), OifKind::CopiedFromStar, SimTime(100));
        assert_eq!(e.oifs[&IfaceId(2)].kind, OifKind::CopiedFromStar);
        // Refresh extends, never shortens.
        e.add_oif(IfaceId(2), OifKind::CopiedFromStar, SimTime(50));
        assert_eq!(e.oifs[&IfaceId(2)].expires_at, SimTime(100));
        e.add_oif(IfaceId(2), OifKind::Joined, SimTime(200));
        assert_eq!(e.oifs[&IfaceId(2)].kind, OifKind::Joined);
        assert_eq!(e.oifs[&IfaceId(2)].expires_at, SimTime(200));
        // Local members pin the oif open.
        e.add_oif(IfaceId(2), OifKind::LocalMembers, SimTime(0));
        assert_eq!(e.oifs[&IfaceId(2)].kind, OifKind::LocalMembers);
        assert_eq!(e.oifs[&IfaceId(2)].expires_at, SimTime(u64::MAX));
    }

    #[test]
    fn add_oif_clears_pending_delete() {
        let mut e = Entry::new_star(g(), rp(), Some(IfaceId(0)), None);
        e.delete_at = Some(SimTime(500));
        e.add_oif(IfaceId(1), OifKind::Joined, SimTime(100));
        assert_eq!(e.delete_at, None);
    }

    #[test]
    fn forward_set_excludes_iif_and_arrival() {
        let mut e = Entry::new_star(g(), rp(), Some(IfaceId(0)), None);
        e.add_oif(IfaceId(1), OifKind::Joined, SimTime(100));
        e.add_oif(IfaceId(2), OifKind::Joined, SimTime(100));
        e.add_oif(IfaceId(0), OifKind::Joined, SimTime(100)); // pathological: iif in oifs
        assert_eq!(e.forward_set(None), vec![IfaceId(1), IfaceId(2)]);
        assert_eq!(e.forward_set(Some(IfaceId(1))), vec![IfaceId(2)]);
    }

    #[test]
    fn oif_expiry() {
        let mut e = Entry::new_star(g(), rp(), Some(IfaceId(0)), None);
        e.add_oif(IfaceId(1), OifKind::Joined, SimTime(100));
        e.add_oif(IfaceId(2), OifKind::Joined, SimTime(200));
        e.add_oif(IfaceId(3), OifKind::LocalMembers, SimTime(0));
        assert!(e.expire_oifs(SimTime(50)).is_empty());
        assert_eq!(e.expire_oifs(SimTime(150)), vec![IfaceId(1)]);
        assert_eq!(e.expire_oifs(SimTime(10_000)), vec![IfaceId(2)]);
        // Local-member oifs never expire via PIM timers.
        assert!(e.has_local_members());
        assert!(!e.oifs_empty());
    }

    #[test]
    fn group_state_longest_match() {
        let mut gs = GroupState {
            star: Some(Entry::new_star(g(), rp(), Some(IfaceId(0)), None)),
            ..Default::default()
        };
        gs.sources
            .insert(src(), Entry::new_source(g(), src(), Some(IfaceId(2)), None));
        assert!(!gs.match_data(src()).unwrap().wildcard);
        assert!(gs.match_data(Addr::new(10, 9, 9, 9)).unwrap().wildcard);
        assert_eq!(gs.entry_count(), 2);
    }

    #[test]
    fn rp_failover_cycles() {
        let mut gs = GroupState {
            rps: vec![rp(), Addr::new(10, 0, 0, 8)],
            ..Default::default()
        };
        assert_eq!(gs.rp(), Some(rp()));
        assert_eq!(gs.next_rp(), Some(Addr::new(10, 0, 0, 8)));
        assert_eq!(gs.next_rp(), Some(rp())); // wraps
        let mut empty = GroupState::default();
        assert_eq!(empty.rp(), None);
        assert_eq!(empty.next_rp(), None);
    }
}
