//! Protocol Independent Multicast, sparse mode (PIM-SM) — a from-scratch
//! implementation of the architecture in *An Architecture for Wide-Area
//! Multicast Routing* (Deering, Estrin, Farinacci, Jacobson, Liu, Wei —
//! SIGCOMM 1994).
//!
//! The crate is layered:
//!
//! * [`entry`] — the multicast forwarding state: (\*,G) shared-tree
//!   entries, (S,G) shortest-path-tree entries, and (S,G) negative caches
//!   on the RP tree, with the paper's WC/RP/SPT flag bits;
//! * [`config`] — timer ratios and the shared-tree→SPT switchover policy
//!   (immediate / after-m-packets-in-n / never);
//! * [`engine`] — the sans-IO protocol engine: join/prune processing,
//!   registers, RP reachability and multi-RP failover, LAN prune override
//!   and join suppression, DR election, unicast-change repair, soft-state
//!   timers;
//! * [`router`] — the [`netsim`] adapter that combines the engine with an
//!   interchangeable unicast routing engine (distance-vector, link-state,
//!   or oracle — PIM's protocol independence made concrete) and per-LAN
//!   IGMP queriers;
//! * [`HostNode`] (re-exported from `igmp`) — a simulated end host: IGMP membership plus data
//!   sending/receiving with sequence tracking for loss/duplicate analysis.
//!
//! # Quick start
//!
//! ```
//! use pim::{Engine, PimConfig};
//! use netsim::{IfaceId, SimTime};
//! use unicast::{OracleRib, Rib, RouteEntry};
//! use wire::{Addr, Group};
//!
//! // A two-interface router: iface 0 faces a member host LAN, iface 1
//! // leads toward the RP.
//! let me = Addr::new(10, 0, 0, 1);
//! let rp = Addr::new(10, 0, 7, 1);
//! let mut rib = OracleRib::empty(me);
//! rib.insert(rp, RouteEntry { iface: IfaceId(1), next_hop: rp, metric: 1 });
//!
//! let mut engine = Engine::new(me, 2, PimConfig::default());
//! let group = Group::test(1);
//! engine.set_rp_mapping(group, vec![rp]);
//!
//! // IGMP reports a local member: the DR creates (*,G) and joins toward
//! // the RP (paper §3.1–3.2).
//! let out = engine.local_member_joined(SimTime(0), group, IfaceId(0), &rib);
//! assert!(!out.is_empty()); // the triggered PIM join
//! let star = engine.group_state(group).unwrap().star.as_ref().unwrap();
//! assert_eq!(star.iif, Some(IfaceId(1)));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod entry;
pub mod router;

pub use config::{PimConfig, SptPolicy};
pub use engine::{Engine, Output};
pub use entry::{Entry, GroupState, Oif, OifKind};
pub use igmp::HostNode;
pub use router::PimRouter;

#[cfg(test)]
#[path = "engine_tests.rs"]
mod engine_tests;

#[cfg(test)]
#[path = "engine_tests2.rs"]
mod engine_tests2;
