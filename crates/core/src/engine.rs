//! The PIM sparse-mode protocol engine — one instance per router.
//!
//! The engine is sans-IO: every handler takes the current time, the parsed
//! input, and a read-only view of the unicast routing table ([`Rib`] — the
//! *only* thing PIM may know about unicast routing, which is what makes it
//! protocol independent), and returns a list of [`Output`] actions for the
//! surrounding router to carry out.
//!
//! Handler ↔ paper map:
//!
//! | handler | paper |
//! |---|---|
//! | [`Engine::local_member_joined`] | §3.1 local hosts joining |
//! | [`Engine::on_join_prune`] | §3.2 shared tree, §3.3 SPT, §3.7 LAN rules |
//! | [`Engine::on_local_data`] / [`Engine::on_register`] | §3 register path |
//! | [`Engine::on_data`] | §3.5 data packet processing |
//! | [`Engine::on_rp_reachability`] | §3.2/§3.9 RP liveness & failover |
//! | [`Engine::on_query`] | §3.7 DR election |
//! | [`Engine::on_route_change`] | §3.8 unicast routing changes |
//! | [`Engine::tick`] | §3.4 periodic refresh, §3.6 timers |

use crate::config::{PimConfig, SptPolicy};
use crate::entry::{Entry, GroupState, OifKind};
use netsim::{Duration, IfaceId, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use telemetry::{flags, EntryKey, Event, StateDump, Telem};
use unicast::Rib;
use wire::pim::{GroupEntry, JoinPrune, Query, Register, RpReachability, SourceEntry};
use wire::{Addr, Group, Message};

/// An action requested by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Transmit a control message out of `iface`.
    Send {
        /// Interface to transmit on.
        iface: IfaceId,
        /// Network-header destination: `224.0.0.2` for hop-by-hop PIM
        /// messages, the RP's unicast address for Registers.
        dst: Addr,
        /// Network-header TTL (1 for link-local control).
        ttl: u8,
        /// The message.
        msg: Message,
    },
    /// Forward a multicast data packet out of each listed interface.
    Forward {
        /// Interfaces to copy the packet to.
        ifaces: Vec<IfaceId>,
        /// Original source.
        source: Addr,
        /// Destination group.
        group: Group,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// A prune received on a multi-access subnetwork, held for the §3.7
/// override window before taking effect.
#[derive(Clone, Debug)]
struct PendingPrune {
    group: Group,
    entry: SourceEntry,
    iface: IfaceId,
    holdtime: Duration,
    execute_at: SimTime,
}

/// Per-interface PIM neighbor and DR-election state (§3.7).
#[derive(Clone, Debug, Default)]
struct IfaceState {
    /// Live PIM neighbors and their expiry times.
    neighbors: BTreeMap<Addr, SimTime>,
    /// Multi-access subnetwork? (prune override + join suppression apply).
    is_lan: bool,
    /// Host-facing (a leaf subnetwork with IGMP members, no PIM
    /// neighbors expected).
    is_host_lan: bool,
}

/// The PIM sparse-mode engine.
pub struct Engine {
    cfg: PimConfig,
    my_addr: Addr,
    groups: BTreeMap<Group, GroupState>,
    ifaces: Vec<IfaceState>,
    /// Directly attached hosts → the interface they live on.
    local_hosts: HashMap<Addr, IfaceId>,
    /// (group, source) → packet count & window start, for the
    /// [`SptPolicy::AfterPackets`] switchover policy.
    spt_counters: HashMap<(Group, Addr), (u32, SimTime)>,
    pending_prunes: Vec<PendingPrune>,
    next_refresh: SimTime,
    next_query: SimTime,
    next_reach: SimTime,
    /// Registers sent (sender-side overhead metric).
    pub registers_sent: u64,
    /// Registers received and decapsulated (RP-side metric).
    pub registers_received: u64,
    /// Structured-event emitter (disabled by default; pure observer).
    telem: Telem,
}

/// The telemetry flag bits an entry currently carries.
fn entry_flags(e: &Entry) -> u8 {
    let mut f = 0;
    if e.wildcard {
        f |= flags::WC;
    }
    if e.rp_bit {
        f |= flags::RP;
    }
    if e.spt_bit {
        f |= flags::SPT;
    }
    f
}

impl Engine {
    /// New engine for a router with address `my_addr` and `iface_count`
    /// interfaces.
    pub fn new(my_addr: Addr, iface_count: usize, cfg: PimConfig) -> Engine {
        Engine {
            cfg,
            my_addr,
            groups: BTreeMap::new(),
            ifaces: vec![IfaceState::default(); iface_count],
            local_hosts: HashMap::new(),
            spt_counters: HashMap::new(),
            pending_prunes: Vec::new(),
            next_refresh: SimTime::ZERO,
            next_query: SimTime::ZERO,
            next_reach: SimTime::ZERO,
            registers_sent: 0,
            registers_received: 0,
            telem: Telem::disabled(),
        }
    }

    /// Attach a telemetry handle. The engine only *observes* through it —
    /// emission never changes protocol behavior (DESIGN.md determinism
    /// rules).
    pub fn set_telemetry(&mut self, telem: Telem) {
        self.telem = telem;
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.my_addr
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// Number of interfaces the engine knows about.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// Grow the interface table (host LANs attached after construction).
    pub fn add_iface(&mut self) -> IfaceId {
        self.ifaces.push(IfaceState::default());
        IfaceId(self.ifaces.len() as u32 - 1)
    }

    /// Mark `iface` as a multi-access subnetwork with other PIM routers:
    /// §3.7 prune-override and join-suppression rules apply there.
    pub fn set_lan(&mut self, iface: IfaceId) {
        self.ifaces[iface.index()].is_lan = true;
    }

    /// Mark `iface` as a host-facing leaf subnetwork.
    pub fn set_host_lan(&mut self, iface: IfaceId) {
        self.ifaces[iface.index()].is_host_lan = true;
    }

    /// Register a directly attached host (potential source) on `iface`.
    pub fn register_local_host(&mut self, host: Addr, iface: IfaceId) {
        self.local_hosts.insert(host, iface);
    }

    /// Configure (or learn, via the host RP-mapping message) the RP set
    /// for `group` (§3.1: "a sparse mode group is identified by the
    /// presence of RP address(es) associated with the group").
    pub fn set_rp_mapping(&mut self, group: Group, rps: Vec<Addr>) {
        let gs = self.groups.entry(group).or_default();
        if gs.rps != rps {
            gs.rps = rps;
            gs.current_rp = 0;
        }
    }

    /// The RPs configured for `group`.
    pub fn rp_mapping(&self, group: Group) -> &[Addr] {
        self.groups
            .get(&group)
            .map(|g| g.rps.as_slice())
            .unwrap_or(&[])
    }

    /// Is this router one of the RPs for `group`?
    pub fn is_rp_for(&self, group: Group) -> bool {
        self.rp_mapping(group).contains(&self.my_addr)
    }

    /// Is this router the designated router on `iface`? (Highest address
    /// among live PIM neighbors wins; a router is trivially DR on an
    /// interface with no neighbors.)
    pub fn is_dr(&self, iface: IfaceId) -> bool {
        self.ifaces[iface.index()]
            .neighbors
            .keys()
            .all(|&n| n < self.my_addr)
    }

    /// Read-only view of the state for `group` (tests and experiments).
    pub fn group_state(&self, group: Group) -> Option<&GroupState> {
        self.groups.get(&group)
    }

    /// Total forwarding entries (the paper's state-overhead metric).
    pub fn entry_count(&self) -> usize {
        self.groups.values().map(|g| g.entry_count()).sum()
    }

    /// Iterate over all groups with any state.
    pub fn groups(&self) -> impl Iterator<Item = (Group, &GroupState)> + '_ {
        self.groups.iter().map(|(&g, s)| (g, s))
    }

    /// Crash with total state loss (§2 robustness). Tree state, neighbor
    /// adjacencies, and pending work are erased; configuration — address,
    /// interface roles, attached hosts, and the administratively scoped RP
    /// mappings (§3.1 footnote 9) — survives, as do the overhead counters
    /// (they are observability, not protocol state).
    pub fn reset(&mut self) {
        self.groups.retain(|_, gs| {
            if gs.rps.is_empty() {
                return false; // purely dynamic state: forget the group
            }
            gs.star = None;
            gs.sources.clear();
            gs.current_rp = 0;
            true
        });
        for ifs in self.ifaces.iter_mut() {
            ifs.neighbors.clear();
        }
        self.spt_counters.clear();
        self.pending_prunes.clear();
        self.next_refresh = SimTime::ZERO;
        self.next_query = SimTime::ZERO;
        self.next_reach = SimTime::ZERO;
    }

    // ------------------------------------------------------------------
    // §3.1 — local hosts joining a group
    // ------------------------------------------------------------------

    /// IGMP reported a first member of `group` on `iface`.
    ///
    /// Creates the (\*,G) entry with the iif set toward the RP and the
    /// member subnetwork in the oif list, and triggers a join toward the
    /// RP (§3.1–3.2). If no RP mapping exists the group is "not to be
    /// supported with PIM sparse mode" and nothing happens.
    pub fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let Some(gs) = self.groups.get(&group) else {
            return Vec::new(); // no RP mapping → not sparse mode (§3.1)
        };
        let Some(rp) = gs.rp() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let created = self.ensure_star(now, group, rp, rib);
        let gs = self.groups.get_mut(&group).expect("ensured above");
        let star = gs.star.as_mut().expect("ensured above");
        star.add_oif(iface, OifKind::LocalMembers, SimTime(u64::MAX));
        // "The DR sets an RP-timer for this entry" (§3.1).
        if star.rp_timer.is_none() {
            star.rp_timer = Some(now + self.cfg.rp_timeout);
        }
        // Local members receive from every source: mirror into existing
        // (S,G) entries, per the §3.3 copy semantics.
        for e in gs.sources.values_mut() {
            if !e.pruned_oifs.contains_key(&iface) {
                e.add_oif(iface, OifKind::LocalMembers, SimTime(u64::MAX));
            }
        }
        if created {
            out.extend(self.triggered_star_join(now, group));
        }
        out
    }

    /// The last IGMP member of `group` on `iface` expired.
    pub fn local_member_left(&mut self, now: SimTime, group: Group, iface: IfaceId) -> Vec<Output> {
        let Some(gs) = self.groups.get_mut(&group) else {
            return Vec::new();
        };
        let mut affected = false;
        if let Some(star) = gs.star.as_mut() {
            if star.remove_oif(iface) {
                affected = true;
            }
            if !star.has_local_members() {
                star.rp_timer = None;
            }
        }
        for e in gs.sources.values_mut() {
            e.remove_oif(iface);
        }
        if affected {
            self.after_oif_removal(now, group)
        } else {
            Vec::new()
        }
    }

    /// Create the (\*,G) entry if absent. Returns true if created.
    fn ensure_star(&mut self, now: SimTime, group: Group, rp: Addr, rib: &dyn Rib) -> bool {
        let my_addr = self.my_addr;
        let gs = self.groups.entry(group).or_default();
        if gs.star.is_some() {
            return false;
        }
        let (iif, upstream) = if rp == my_addr {
            // "The RP recognizes its own address ... the incoming interface
            // in the RP's (*,G) entry is set to null" (§3.2).
            (None, None)
        } else {
            match rib.route(rp) {
                Some(r) => (Some(r.iface), Some(r.next_hop)),
                None => (None, None), // RP currently unreachable; join when routing recovers
            }
        };
        gs.star = Some(Entry::new_star(group, rp, iif, upstream));
        self.telem.emit(now.ticks(), || Event::EntryCreated {
            group,
            key: EntryKey::Star,
            flags: flags::WC | flags::RP,
        });
        true
    }

    // ------------------------------------------------------------------
    // §3.2/§3.3/§3.7 — join/prune processing
    // ------------------------------------------------------------------

    /// A PIM Join/Prune message arrived on `iface` from neighbor `src`.
    pub fn on_join_prune(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        msg: &JoinPrune,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        let addressed_to_me = msg.upstream_neighbor == self.my_addr;
        let holdtime = Duration(msg.holdtime as u64);
        for ge in &msg.groups {
            if addressed_to_me {
                for j in &ge.joins {
                    out.extend(self.apply_join(now, iface, ge.group, j, holdtime, rib));
                }
                for p in &ge.prunes {
                    out.extend(self.apply_prune(now, iface, ge.group, p, holdtime, rib));
                }
            } else if self.ifaces[iface.index()].is_lan {
                // Overheard on a multi-access subnetwork (§3.7).
                for j in &ge.joins {
                    self.overhear_join(now, iface, ge.group, j, &msg.upstream_neighbor);
                }
                for p in &ge.prunes {
                    out.extend(self.overhear_prune(now, iface, ge.group, p, msg.upstream_neighbor));
                }
            }
        }
        let _ = src;
        out
    }

    fn apply_join(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        group: Group,
        j: &SourceEntry,
        holdtime: Duration,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        let expires = now + holdtime;
        self.cancel_pending_prune(group, j, iface);
        if j.wildcard {
            // Shared-tree join {RP, RPbit, WCbit}: instantiate/extend (*,G).
            let rp = j.addr;
            // Adopt the RP carried in the join if we had no mapping ("the
            // RP address is included ... so that it will be included in
            // upstream join messages", §3.1).
            {
                let gs = self.groups.entry(group).or_default();
                if gs.rps.is_empty() {
                    gs.rps = vec![rp];
                }
            }
            let mut created = self.ensure_star(now, group, rp, rib);
            let my_addr = self.my_addr;
            let gs = self.groups.get_mut(&group).expect("ensured");
            {
                let star = gs.star.as_mut().expect("ensured");
                if star.key != rp {
                    // §3.9 failover propagation: the downstream receivers
                    // have moved to an alternate RP; re-root the shared
                    // tree toward it. The join carries the RP address for
                    // exactly this purpose (§3.1: "the RP address is
                    // included in a special record in the forwarding
                    // entry, so that it will be included in upstream join
                    // messages").
                    let (iif, upstream) = if rp == my_addr {
                        (None, None)
                    } else {
                        match rib.route(rp) {
                            Some(r) => (Some(r.iface), Some(r.next_hop)),
                            None => (None, None),
                        }
                    };
                    star.key = rp;
                    if let Some(i) = iif {
                        star.remove_oif(i);
                    }
                    star.iif = iif;
                    star.upstream = upstream;
                    if let Some(pos) = gs.rps.iter().position(|&r| r == rp) {
                        gs.current_rp = pos;
                    }
                    // Negative caches ride the shared tree; SPT entries
                    // whose iif now coincides with the re-rooted tree no
                    // longer diverge from it.
                    for e in gs.sources.values_mut() {
                        if e.is_negative() {
                            e.iif = iif;
                            e.upstream = upstream;
                        } else if e.iif == iif {
                            e.pruned_from_shared = false;
                        }
                    }
                    created = true; // trigger a join toward the new RP
                }
            }
            let star = gs.star.as_mut().expect("ensured");
            // A join arriving on our own upstream interface would create a
            // forwarding loop; ignore it.
            if star.iif == Some(iface) {
                return out;
            }
            star.add_oif(iface, OifKind::Joined, expires);
            // Footnote 12: resetting a (*,G) oif also resets the copied
            // (S,G) oifs; and a new shared-tree branch must receive
            // existing sources' SPT traffic too.
            for e in gs.sources.values_mut() {
                if e.pruned_oifs.contains_key(&iface) {
                    continue; // an active negative-cache prune wins
                }
                if e.is_negative() || e.iif != Some(iface) {
                    e.add_oif(iface, OifKind::CopiedFromStar, expires);
                }
            }
            if created {
                out.extend(self.triggered_star_join(now, group));
            }
        } else if !j.rp_bit {
            // Source-specific join {S}: instantiate/extend (S,G) SPT state.
            let source = j.addr;
            let created = self.ensure_source(now, group, source, rib);
            let gs = self.groups.get_mut(&group).expect("ensured");
            let e = gs.sources.get_mut(&source).expect("ensured");
            if e.iif == Some(iface) {
                return out;
            }
            e.add_oif(iface, OifKind::Joined, expires);
            if created && !e.local_source {
                out.extend(self.triggered_source_join(now, group, source));
            }
        } else {
            // Join {S, RPbit}: re-join of a source on the shared tree —
            // cancels a negative cache for this interface (LAN override,
            // §3.7, and unicast-change repair, §3.8).
            let source = j.addr;
            if let Some(gs) = self.groups.get_mut(&group) {
                let mut drop_neg = false;
                if let Some(e) = gs.sources.get_mut(&source) {
                    if e.iif == Some(iface) {
                        // A join arriving on the entry's own upstream
                        // interface would loop; ignore it.
                    } else if e.is_negative() {
                        e.pruned_oifs.remove(&iface);
                        e.add_oif(iface, OifKind::CopiedFromStar, expires);
                        // With nothing pruned anywhere the negative cache
                        // is pure overhead; drop it and fall back to (*,G).
                        drop_neg = e.pruned_oifs.is_empty();
                    } else if e.iif != Some(iface) {
                        // A real (S,G) whose shared-tree oif was pruned
                        // earlier (footnote 11): restore the branch.
                        e.pruned_oifs.remove(&iface);
                        e.add_oif(iface, OifKind::CopiedFromStar, expires);
                    }
                }
                if drop_neg {
                    gs.sources.remove(&source);
                }
            }
        }
        out
    }

    /// Create an (S,G) SPT entry if absent, copying the (\*,G) oif list
    /// (§3.3). Returns true if created.
    fn ensure_source(&mut self, now: SimTime, group: Group, source: Addr, rib: &dyn Rib) -> bool {
        let local = self.local_hosts.get(&source).copied();
        let gs = self.groups.entry(group).or_default();
        if let Some(e) = gs.sources.get(&source) {
            if !e.is_negative() {
                return false;
            }
            // A real SPT join supersedes a negative cache.
            gs.sources.remove(&source);
        }
        let (iif, upstream, local_source) = match local {
            Some(host_iface) => (Some(host_iface), None, true),
            None => match rib.route(source) {
                Some(r) => (Some(r.iface), Some(r.next_hop), false),
                None => (None, None, false),
            },
        };
        let mut e = Entry::new_source(group, source, iif, upstream);
        e.local_source = local_source;
        // "When the (Sn,G) entry is created, the outgoing interface list is
        // copied from (*,G)" (§3.3).
        if let Some(star) = &gs.star {
            for (&i, oif) in &star.oifs {
                if Some(i) != iif {
                    let kind = if oif.kind == OifKind::LocalMembers {
                        OifKind::LocalMembers
                    } else {
                        OifKind::CopiedFromStar
                    };
                    e.add_oif(i, kind, oif.expires_at);
                }
            }
        }
        gs.sources.insert(source, e);
        self.telem.emit(now.ticks(), || Event::EntryCreated {
            group,
            key: EntryKey::Source(source),
            flags: 0,
        });
        true
    }

    fn apply_prune(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        group: Group,
        p: &SourceEntry,
        holdtime: Duration,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        if self.ifaces[iface.index()].is_lan {
            // §3.7: hold the prune so another router on the subnetwork can
            // override it with a join.
            self.pending_prunes.push(PendingPrune {
                group,
                entry: *p,
                iface,
                holdtime,
                execute_at: now + self.cfg.prune_override_delay,
            });
            Vec::new()
        } else {
            self.execute_prune(now, iface, group, p, holdtime, rib)
        }
    }

    fn execute_prune(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        group: Group,
        p: &SourceEntry,
        holdtime: Duration,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(gs) = self.groups.get_mut(&group) else {
            return out;
        };
        if p.wildcard {
            // Leave the shared tree entirely on this interface.
            let mut removed = false;
            if let Some(star) = gs.star.as_mut() {
                removed |= star.remove_oif(iface);
            }
            for e in gs.sources.values_mut() {
                // Copied oifs followed the shared tree; explicit SPT joins
                // (Joined) survive a shared-tree prune.
                if e.oifs.get(&iface).map(|o| o.kind) == Some(OifKind::CopiedFromStar) {
                    e.remove_oif(iface);
                }
            }
            if removed {
                out.extend(self.after_oif_removal(now, group));
            }
        } else if !p.rp_bit {
            // Source-specific prune {S}.
            let mut removed = false;
            if let Some(e) = gs.sources.get_mut(&p.addr) {
                if !e.is_negative() {
                    removed = e.remove_oif(iface);
                }
            }
            if removed {
                out.extend(self.after_oif_removal(now, group));
            }
        } else {
            // Prune {S, RPbit}: set up a negative cache on the RP tree
            // (§3.3, footnote 11).
            let Some(star) = gs.star.as_ref() else {
                return out; // no shared tree here: nothing to prune from
            };
            let (star_iif, star_upstream) = (star.iif, star.upstream);
            let star_oifs: Vec<(IfaceId, OifKind, SimTime)> = star
                .oifs
                .iter()
                .map(|(&i, o)| (i, o.kind, o.expires_at))
                .collect();
            if !gs.sources.contains_key(&p.addr) {
                self.telem.emit(now.ticks(), || Event::EntryCreated {
                    group,
                    key: EntryKey::Source(p.addr),
                    flags: flags::RP,
                });
            }
            let e = gs.sources.entry(p.addr).or_insert_with(|| {
                let mut neg = Entry::new_negative(group, p.addr, star_iif, star_upstream);
                for (i, kind, exp) in star_oifs {
                    let k = if kind == OifKind::LocalMembers {
                        OifKind::LocalMembers
                    } else {
                        OifKind::CopiedFromStar
                    };
                    neg.add_oif(i, k, exp);
                }
                neg
            });
            if e.is_negative() {
                e.remove_oif(iface);
                e.pruned_oifs.insert(iface, now + holdtime);
                // "Negative cache entries on the RP tree must be kept alive
                // by receipt of prunes" (footnote 13).
                e.delete_at = Some(now + holdtime);
                if e.oifs_empty() {
                    // Every shared-tree branch below us has pruned S:
                    // propagate toward the RP.
                    out.extend(self.triggered_negative_prune(now, group, p.addr));
                }
            } else {
                // A real (S,G) entry (e.g. at the RP itself): footnote 11
                // still applies — "the outgoing interface from which it
                // receives a PIM prune message with (S,G) and the RP bit
                // in the prune list, is deleted from the outgoing
                // interface list."
                let removed = e.remove_oif(iface);
                e.pruned_oifs.insert(iface, now + holdtime);
                if removed {
                    out.extend(self.after_oif_removal(now, group));
                }
            }
        }
        let _ = rib;
        out
    }

    /// §3.6: a prune (or expiry) may have emptied an oif list — prune
    /// upstream and schedule deletion.
    fn after_oif_removal(&mut self, now: SimTime, group: Group) -> Vec<Output> {
        let mut out = Vec::new();
        let linger = self.cfg.entry_linger;
        let holdtime = self.cfg.holdtime;
        let my = self.my_addr;
        let Some(gs) = self.groups.get_mut(&group) else {
            return out;
        };
        let mut sends: Vec<(IfaceId, Addr, GroupEntry)> = Vec::new();
        if let Some(star) = gs.star.as_mut() {
            if star.oifs_empty() && star.delete_at.is_none() {
                star.delete_at = Some(now + linger);
                if let (Some(iif), Some(up)) = (star.iif, star.upstream) {
                    sends.push((
                        iif,
                        up,
                        GroupEntry::prune(group, SourceEntry::shared_tree(star.key)),
                    ));
                }
            }
        }
        for e in gs.sources.values_mut() {
            if e.is_negative() || e.local_source {
                continue;
            }
            if e.oifs_empty() && e.delete_at.is_none() {
                e.delete_at = Some(now + linger);
                if let (Some(iif), Some(up)) = (e.iif, e.upstream) {
                    sends.push((
                        iif,
                        up,
                        GroupEntry::prune(group, SourceEntry::source(e.key)),
                    ));
                }
            }
        }
        for (iface, upstream, ge) in sends {
            out.push(Output::Send {
                iface,
                dst: Addr::ALL_PIM_ROUTERS,
                ttl: 1,
                msg: Message::PimJoinPrune(JoinPrune {
                    upstream_neighbor: upstream,
                    holdtime: holdtime.ticks().min(u16::MAX as u64) as u16,
                    groups: vec![ge],
                }),
            });
        }
        let _ = my;
        out
    }

    // §3.7 — overheard messages on multi-access subnetworks.

    fn overhear_join(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        group: Group,
        j: &SourceEntry,
        addressed_to: &Addr,
    ) {
        // Join suppression: if we would send the identical periodic join to
        // the same upstream over this subnetwork, stay quiet for a while.
        let suppress_until = now + self.cfg.refresh_period;
        let Some(gs) = self.groups.get_mut(&group) else {
            return;
        };
        if j.wildcard {
            if let Some(star) = gs.star.as_mut() {
                if star.iif == Some(iface)
                    && star.upstream == Some(*addressed_to)
                    && star.key == j.addr
                {
                    star.suppressed_until = Some(suppress_until);
                }
            }
        } else if let Some(e) = gs.sources.get_mut(&j.addr) {
            if !e.is_negative() && e.iif == Some(iface) && e.upstream == Some(*addressed_to) {
                e.suppressed_until = Some(suppress_until);
            }
        }
        // An overheard join also cancels our own pending override: someone
        // else already overrode the prune.
        self.cancel_pending_prune(group, j, iface);
    }

    fn overhear_prune(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        group: Group,
        p: &SourceEntry,
        upstream: Addr,
    ) -> Vec<Output> {
        // "If there is any router that has the LAN as its incoming
        // interface for the same (S,G) and has non-null outgoing interface
        // list, then the router sends a join message onto the LAN to
        // override the prune" (§3.7).
        let Some(gs) = self.groups.get(&group) else {
            return Vec::new();
        };
        let wants = if p.wildcard {
            gs.star
                .as_ref()
                .is_some_and(|s| s.iif == Some(iface) && !s.oifs_empty())
        } else if p.rp_bit {
            // A negative-cache prune for S: we object if we still forward
            // S via the shared tree on this iif (no negative cache of our
            // own, shared tree comes in here, oifs alive).
            let on_shared = gs
                .star
                .as_ref()
                .is_some_and(|s| s.iif == Some(iface) && !s.oifs_empty());
            let not_pruned_ourselves = match gs.sources.get(&p.addr) {
                Some(e) if e.is_negative() => !e.oifs_empty(),
                Some(_) => false, // we're on the SPT for S; shared-tree prune is fine
                None => true,
            };
            on_shared && not_pruned_ourselves
        } else {
            gs.sources
                .get(&p.addr)
                .is_some_and(|e| !e.is_negative() && e.iif == Some(iface) && !e.oifs_empty())
        };
        if !wants {
            return Vec::new();
        }
        let _ = now;
        vec![Output::Send {
            iface,
            dst: Addr::ALL_PIM_ROUTERS,
            ttl: 1,
            msg: Message::PimJoinPrune(JoinPrune {
                upstream_neighbor: upstream,
                holdtime: self.cfg.holdtime.ticks().min(u16::MAX as u64) as u16,
                groups: vec![GroupEntry::join(group, *p)],
            }),
        }]
    }

    fn cancel_pending_prune(&mut self, group: Group, e: &SourceEntry, iface: IfaceId) {
        self.pending_prunes.retain(|pp| {
            !(pp.group == group
                && pp.iface == iface
                && pp.entry.addr == e.addr
                && pp.entry.wildcard == e.wildcard
                && pp.entry.rp_bit == e.rp_bit)
        });
    }

    // ------------------------------------------------------------------
    // Triggered messages (§3.4: "a PIM message is also sent on an
    // event-triggered basis each time a new forwarding entry is
    // established")
    // ------------------------------------------------------------------

    fn join_prune_to(&self, iface: IfaceId, upstream: Addr, groups: Vec<GroupEntry>) -> Output {
        Output::Send {
            iface,
            dst: Addr::ALL_PIM_ROUTERS,
            ttl: 1,
            msg: Message::PimJoinPrune(JoinPrune {
                upstream_neighbor: upstream,
                holdtime: self.cfg.holdtime.ticks().min(u16::MAX as u64) as u16,
                groups,
            }),
        }
    }

    fn triggered_star_join(&mut self, _now: SimTime, group: Group) -> Vec<Output> {
        let Some(gs) = self.groups.get(&group) else {
            return Vec::new();
        };
        let Some(star) = gs.star.as_ref() else {
            return Vec::new();
        };
        let (Some(iif), Some(up)) = (star.iif, star.upstream) else {
            return Vec::new(); // we are the RP, or the RP is unreachable
        };
        vec![self.join_prune_to(
            iif,
            up,
            vec![GroupEntry::join(group, SourceEntry::shared_tree(star.key))],
        )]
    }

    fn triggered_source_join(&mut self, _now: SimTime, group: Group, source: Addr) -> Vec<Output> {
        let Some(gs) = self.groups.get(&group) else {
            return Vec::new();
        };
        let Some(e) = gs.sources.get(&source) else {
            return Vec::new();
        };
        let (Some(iif), Some(up)) = (e.iif, e.upstream) else {
            return Vec::new();
        };
        vec![self.join_prune_to(
            iif,
            up,
            vec![GroupEntry::join(group, SourceEntry::source(source))],
        )]
    }

    /// Prune {S, RPbit} toward the RP, from the router that switched to
    /// the SPT (§3.3) or from a negative-cache holder whose downstream all
    /// pruned.
    fn triggered_negative_prune(
        &mut self,
        _now: SimTime,
        group: Group,
        source: Addr,
    ) -> Vec<Output> {
        let Some(gs) = self.groups.get(&group) else {
            return Vec::new();
        };
        let Some(star) = gs.star.as_ref() else {
            return Vec::new();
        };
        let (Some(iif), Some(up)) = (star.iif, star.upstream) else {
            return Vec::new(); // at the RP: nowhere further up
        };
        vec![self.join_prune_to(
            iif,
            up,
            vec![GroupEntry::prune(
                group,
                SourceEntry::source_on_rp_tree(source),
            )],
        )]
    }

    // ------------------------------------------------------------------
    // §3 / §3.5 — data-packet processing
    // ------------------------------------------------------------------

    /// A multicast data packet from a directly attached host arrived on
    /// the host subnetwork `iface`. Returns forwarding actions plus, while
    /// no native (S,G) path exists, a Register to each RP (§3: "the
    /// first-hop PIM-speaking router sends a PIM register message,
    /// piggybacked on the data packet, to the RP(s)").
    pub fn on_local_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        payload: &[u8],
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        if !self.is_dr(iface) {
            return out; // only the DR serves this subnetwork (§3.7)
        }
        // Native forwarding via (S,G) state if the RP's join has reached us.
        let mut native = false;
        let mut probe = false;
        if let Some(gs) = self.groups.get_mut(&group) {
            if let Some(e) = gs.sources.get_mut(&source) {
                if !e.is_negative() && !e.oifs_empty() {
                    native = true;
                    if !e.spt_bit {
                        // Data is arriving over its own first hop.
                        let from = entry_flags(e);
                        e.spt_bit = true;
                        self.telem.emit(now.ticks(), || Event::EntryModified {
                            group,
                            key: EntryKey::Source(source),
                            from,
                            to: from | flags::SPT,
                        });
                    }
                    // Native oifs only prove some receiver's SPT join
                    // reached us — not that the RP still holds the source.
                    // Periodically re-register one data packet so an RP
                    // that lost its (S,G) state (crash, shared-tree churn)
                    // can reacquire it for later shared-tree members.
                    if now >= e.next_register_probe {
                        probe = true;
                        e.next_register_probe = now + self.cfg.register_probe_interval;
                    }
                    let ifaces = e.forward_set(Some(iface));
                    if !ifaces.is_empty() {
                        out.push(Output::Forward {
                            ifaces,
                            source,
                            group,
                            payload: payload.to_vec(),
                        });
                    }
                }
            } else if let Some(star) = &gs.star {
                // Local members on our other subnetworks hear the source
                // through the shared tree once the RP reflects it; but
                // members on *this* router can be served directly.
                let ifaces: Vec<IfaceId> = star
                    .oifs
                    .iter()
                    .filter(|(&i, o)| o.kind == OifKind::LocalMembers && i != iface)
                    .map(|(&i, _)| i)
                    .collect();
                if !ifaces.is_empty() {
                    out.push(Output::Forward {
                        ifaces,
                        source,
                        group,
                        payload: payload.to_vec(),
                    });
                }
            }
        }
        if !native || probe {
            // Register (data encapsulated) to every RP (§3.9: "each source
            // registers and sends data packets toward each of the RPs").
            let rps: Vec<Addr> = self.rp_mapping(group).to_vec();
            for rp in rps {
                if rp == self.my_addr {
                    // We are an RP ourselves: process as if received.
                    out.extend(self.accept_register(now, source, group, payload, rib));
                    continue;
                }
                if let Some(r) = rib.route(rp) {
                    self.registers_sent += 1;
                    out.push(Output::Send {
                        iface: r.iface,
                        dst: rp,
                        ttl: self.cfg.unicast_ttl,
                        msg: Message::PimRegister(Register {
                            group,
                            source,
                            payload: payload.to_vec(),
                        }),
                    });
                }
            }
        }
        out
    }

    /// A PIM Register arrived (unicast, at an RP).
    pub fn on_register(&mut self, now: SimTime, reg: &Register, rib: &dyn Rib) -> Vec<Output> {
        if !self.is_rp_for(reg.group) {
            return Vec::new();
        }
        self.registers_received += 1;
        self.accept_register(now, reg.source, reg.group, &reg.payload, rib)
    }

    fn accept_register(
        &mut self,
        now: SimTime,
        source: Addr,
        group: Group,
        payload: &[u8],
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        let has_receivers = self
            .groups
            .get(&group)
            .and_then(|gs| gs.star.as_ref())
            .is_some_and(|s| !s.oifs_empty());
        if !has_receivers {
            return out; // no shared tree: drop until a receiver joins
        }
        // "The RP responds by sending a join toward the source" (§3) —
        // once, when the (S,G) entry is created.
        let created = self.ensure_source(now, group, source, rib);
        if created {
            out.extend(self.triggered_source_join(now, group, source));
        } else if self
            .groups
            .get(&group)
            .and_then(|gs| gs.sources.get(&source))
            .is_some_and(|e| !e.is_negative() && e.spt_bit)
        {
            // Already receiving this source natively over its shortest-path
            // tree: the register copy is redundant (the role Register-Stop
            // plays in later PIM-SM). Keep the state, drop the payload.
            return out;
        }
        // Forward the decapsulated packet down the shared tree. The
        // register tunnel is the logical incoming interface, so the full
        // (*,G) oif list applies — including the physical interface that
        // happens to point toward the source — minus any oifs carrying an
        // active negative-cache prune for this source.
        let gs = self.groups.get(&group).expect("has_receivers");
        let star = gs.star.as_ref().expect("has_receivers");
        let ifaces: Vec<_> = star
            .oifs
            .keys()
            .copied()
            .filter(|i| {
                gs.sources
                    .get(&source)
                    .is_none_or(|e| !e.pruned_oifs.contains_key(i))
            })
            .collect();
        if !ifaces.is_empty() {
            out.push(Output::Forward {
                ifaces,
                source,
                group,
                payload: payload.to_vec(),
            });
        }
        out
    }

    /// A multicast data packet arrived on router-router interface `iface`
    /// (§3.5). Implements the incoming-interface check, the longest-match
    /// rule, and the two shared→shortest-path transition exceptions.
    pub fn on_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        payload: &[u8],
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(gs) = self.groups.get_mut(&group) else {
            return out; // sparse mode: no state, no forwarding
        };

        enum Action {
            Drop,
            Forward(Vec<IfaceId>),
            ForwardAndSetSpt(Vec<IfaceId>),
            ForwardViaStar,
        }

        let action = match gs.sources.get(&source) {
            Some(e) if e.is_negative() => {
                if e.iif == Some(iface) {
                    Action::Forward(e.forward_set(Some(iface)))
                } else {
                    Action::Drop
                }
            }
            Some(e) => {
                // (S,G) SPT entry.
                if e.spt_bit {
                    if e.iif == Some(iface) {
                        Action::Forward(e.forward_set(Some(iface)))
                    } else {
                        Action::Drop
                    }
                } else if e.iif == Some(iface) {
                    // "When a data packet matches on an (S,G) entry with a
                    // cleared SPT bit, and the incoming interface of the
                    // packet matches that of the (S,G) entry, then the
                    // packet is forwarded and the SPT bit is set" (§3.5).
                    Action::ForwardAndSetSpt(e.forward_set(Some(iface)))
                } else if gs.star.as_ref().is_some_and(|s| s.iif == Some(iface)) {
                    // Transition exception 1: still arriving via the
                    // shared tree — forward according to (*,G).
                    Action::ForwardViaStar
                } else {
                    Action::Drop
                }
            }
            None => match gs.star.as_ref() {
                Some(star) if star.iif == Some(iface) || star.iif.is_none() => {
                    Action::ForwardViaStar
                }
                _ => Action::Drop,
            },
        };

        match action {
            Action::Drop => {}
            Action::Forward(ifaces) => {
                if !ifaces.is_empty() {
                    out.push(Output::Forward {
                        ifaces,
                        source,
                        group,
                        payload: payload.to_vec(),
                    });
                }
            }
            Action::ForwardAndSetSpt(ifaces) => {
                let e = gs.sources.get_mut(&source).expect("matched above");
                if !e.spt_bit {
                    let from = entry_flags(e);
                    e.spt_bit = true;
                    self.telem.emit(now.ticks(), || Event::EntryModified {
                        group,
                        key: EntryKey::Source(source),
                        from,
                        to: from | flags::SPT,
                    });
                }
                // "…sends a PIM prune toward RP if its shared tree incoming
                // interface differs from its shortest path tree incoming
                // interface" (§3.3).
                let star_iif = gs.star.as_ref().and_then(|s| s.iif);
                let diverges = gs.star.is_some() && star_iif != Some(iface);
                if diverges {
                    let e = gs.sources.get_mut(&source).expect("matched above");
                    if !e.pruned_from_shared {
                        e.pruned_from_shared = true;
                        out.extend(self.triggered_negative_prune(now, group, source));
                    }
                }
                if !ifaces.is_empty() {
                    out.push(Output::Forward {
                        ifaces,
                        source,
                        group,
                        payload: payload.to_vec(),
                    });
                }
            }
            Action::ForwardViaStar => {
                let star = gs.star.as_ref().expect("matched above");
                let ifaces = star.forward_set(Some(iface));
                let has_local = star.has_local_members();
                if !ifaces.is_empty() {
                    out.push(Output::Forward {
                        ifaces,
                        source,
                        group,
                        payload: payload.to_vec(),
                    });
                }
                // §3.3 switchover decision: a router with directly
                // connected members seeing shared-tree data from a source
                // it has no (Sn,G) entry for may join the SPT.
                if has_local
                    && !self.local_hosts.contains_key(&source)
                    && !self
                        .groups
                        .get(&group)
                        .is_some_and(|g| g.sources.contains_key(&source))
                    && self.spt_switch_due(now, group, source)
                {
                    out.extend(self.start_spt_switch(now, group, source, rib));
                }
            }
        }
        out
    }

    /// Has the configured switchover policy been satisfied for (group,
    /// source)?
    fn spt_switch_due(&mut self, now: SimTime, group: Group, source: Addr) -> bool {
        match self.cfg.spt_policy {
            SptPolicy::Immediate => true,
            SptPolicy::Never => false,
            SptPolicy::AfterPackets { packets, within } => {
                let slot = self.spt_counters.entry((group, source)).or_insert((0, now));
                if now.since(slot.1) > within {
                    *slot = (0, now); // window lapsed: restart
                }
                slot.0 += 1;
                slot.0 >= packets
            }
        }
    }

    /// §3.3: create the (Sn,G) entry with SPT bit cleared and send a join
    /// toward the source.
    fn start_spt_switch(
        &mut self,
        now: SimTime,
        group: Group,
        source: Addr,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        self.telem
            .emit(now.ticks(), || Event::SptSwitchStart { group, source });
        let created = self.ensure_source(now, group, source, rib);
        if created {
            self.spt_counters.remove(&(group, source));
            self.triggered_source_join(now, group, source)
        } else {
            Vec::new()
        }
    }

    // ------------------------------------------------------------------
    // §3.2/§3.9 — RP reachability and failover
    // ------------------------------------------------------------------

    /// An RP-reachability message arrived on `iface`.
    pub fn on_rp_reachability(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        msg: &RpReachability,
    ) -> Vec<Output> {
        let Some(gs) = self.groups.get_mut(&msg.group) else {
            return Vec::new();
        };
        let Some(star) = gs.star.as_mut() else {
            return Vec::new();
        };
        if star.iif != Some(iface) || star.key != msg.rp {
            return Vec::new();
        }
        if star.rp_timer.is_some() {
            star.rp_timer = Some(now + self.cfg.rp_timeout);
        }
        // Distribute on down the (*,G) tree (§3.2), except to host LANs.
        let ifaces: Vec<IfaceId> = star
            .forward_set(Some(iface))
            .into_iter()
            .filter(|i| !self.ifaces[i.index()].is_host_lan)
            .collect();
        ifaces
            .into_iter()
            .map(|i| Output::Send {
                iface: i,
                dst: Addr::ALL_PIM_ROUTERS,
                ttl: 1,
                msg: Message::PimRpReachability(*msg),
            })
            .collect()
    }

    /// §3.9: the RP-timer lapsed — "the router looks up an alternate RP for
    /// the group, sends a join toward the new RP."
    fn rp_failover(&mut self, now: SimTime, group: Group, rib: &dyn Rib) -> Vec<Output> {
        let Some(gs) = self.groups.get_mut(&group) else {
            return Vec::new();
        };
        if gs.rps.len() < 2 {
            // Nowhere to fail over to; keep waiting and retry the join.
            if let Some(star) = gs.star.as_mut() {
                star.rp_timer = Some(now + self.cfg.rp_timeout);
            }
            return self.triggered_star_join(now, group);
        }
        let old_rp = gs.star.as_ref().map(|s| s.key);
        let new_rp = gs.next_rp().expect("non-empty rps");
        self.telem.emit(now.ticks(), || Event::RpFailover {
            group,
            from: old_rp.unwrap_or(new_rp),
            to: new_rp,
        });
        // "A new (*,G) entry is established with the incoming interface set
        // to the interface used to reach the new RP. The outgoing interface
        // list includes only those interfaces on which IGMP Reports for the
        // group were received" (§3.9).
        let local_oifs: Vec<IfaceId> = gs
            .star
            .as_ref()
            .map(|s| {
                s.oifs
                    .iter()
                    .filter(|(_, o)| o.kind == OifKind::LocalMembers)
                    .map(|(&i, _)| i)
                    .collect()
            })
            .unwrap_or_default();
        let (iif, upstream) = if new_rp == self.my_addr {
            (None, None)
        } else {
            match rib.route(new_rp) {
                Some(r) => (Some(r.iface), Some(r.next_hop)),
                None => (None, None),
            }
        };
        let mut star = Entry::new_star(group, new_rp, iif, upstream);
        for i in local_oifs {
            star.add_oif(i, OifKind::LocalMembers, SimTime(u64::MAX));
        }
        star.rp_timer = Some(now + self.cfg.rp_timeout);
        let gs = self.groups.get_mut(&group).expect("exists");
        gs.star = Some(star);
        // Negative caches pointed at the old tree are meaningless now.
        if self.telem.is_enabled() {
            for (&s, e) in gs.sources.iter() {
                if e.is_negative() {
                    self.telem.emit(now.ticks(), || Event::EntryExpired {
                        group,
                        key: EntryKey::Source(s),
                    });
                }
            }
        }
        gs.sources.retain(|_, e| !e.is_negative());
        self.triggered_star_join(now, group)
    }

    // ------------------------------------------------------------------
    // §3.7 — PIM Query / DR election
    // ------------------------------------------------------------------

    /// A PIM Query (hello) arrived on `iface` from `src`.
    pub fn on_query(&mut self, now: SimTime, iface: IfaceId, src: Addr, q: &Query) -> Vec<Output> {
        let was_dr = self.is_dr(iface);
        self.ifaces[iface.index()]
            .neighbors
            .insert(src, now + Duration(q.holdtime as u64));
        let is_dr = self.is_dr(iface);
        if was_dr != is_dr {
            self.telem.emit(now.ticks(), || Event::DrChanged {
                iface: iface.index() as u32,
                is_dr,
            });
        }
        Vec::new()
    }

    // ------------------------------------------------------------------
    // §3.8 — unicast routing changes
    // ------------------------------------------------------------------

    /// The unicast route toward `dst` changed. Re-derive the iif/upstream
    /// of every entry keyed by `dst`, prune the old path, join the new.
    pub fn on_route_change(&mut self, now: SimTime, dst: Addr, rib: &dyn Rib) -> Vec<Output> {
        let mut out = Vec::new();
        let new_route = rib.route(dst);
        let groups: Vec<Group> = self.groups.keys().copied().collect();
        for group in groups {
            let mut star_join = false;
            let mut source_join = false;
            let mut prunes: Vec<(IfaceId, Addr, GroupEntry)> = Vec::new();
            {
                let gs = self.groups.get_mut(&group).expect("iterating keys");
                if let Some(star) = gs.star.as_mut() {
                    if star.key == dst && !star.oifs_empty() {
                        let (new_iif, new_up) = match new_route {
                            Some(r) => (Some(r.iface), Some(r.next_hop)),
                            None => (None, None),
                        };
                        if new_iif != star.iif || new_up != star.upstream {
                            if let (Some(old_iif), Some(old_up)) = (star.iif, star.upstream) {
                                prunes.push((
                                    old_iif,
                                    old_up,
                                    GroupEntry::prune(group, SourceEntry::shared_tree(star.key)),
                                ));
                            }
                            // "If the new incoming interface appears in the
                            // outgoing interface list, it is deleted" (§3.8).
                            if let Some(i) = new_iif {
                                star.remove_oif(i);
                            }
                            star.iif = new_iif;
                            star.upstream = new_up;
                            star_join = true;
                            // Negative caches ride the shared tree: move
                            // their iif along with it.
                            for e in gs.sources.values_mut() {
                                if e.is_negative() {
                                    e.iif = new_iif;
                                    e.upstream = new_up;
                                }
                            }
                        }
                    }
                }
                if let Some(e) = gs.sources.get_mut(&dst) {
                    if !e.is_negative() && !e.local_source && !e.oifs_empty() {
                        let (new_iif, new_up) = match new_route {
                            Some(r) => (Some(r.iface), Some(r.next_hop)),
                            None => (None, None),
                        };
                        if new_iif != e.iif || new_up != e.upstream {
                            if let (Some(old_iif), Some(old_up)) = (e.iif, e.upstream) {
                                prunes.push((
                                    old_iif,
                                    old_up,
                                    GroupEntry::prune(group, SourceEntry::source(dst)),
                                ));
                            }
                            if let Some(i) = new_iif {
                                e.remove_oif(i);
                            }
                            e.iif = new_iif;
                            e.upstream = new_up;
                            e.spt_bit = false; // must re-confirm over the new path
                            source_join = true;
                        }
                    }
                }
            }
            for (iface, upstream, ge) in prunes {
                out.push(self.join_prune_to(iface, upstream, vec![ge]));
            }
            if star_join {
                out.extend(self.triggered_star_join(now, group));
            }
            if source_join {
                out.extend(self.triggered_source_join(now, group, dst));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // §3.4/§3.6 — timers and periodic refresh
    // ------------------------------------------------------------------

    /// Periodic maintenance. The router adapter calls this once per
    /// simulation tick batch (at least once per
    /// [`PimConfig::prune_override_delay`]).
    pub fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Output> {
        let mut out = Vec::new();

        // Execute matured pending LAN prunes. `tick` runs on every wakeup
        // of the adapter's single timer, so each sweep below first checks
        // whether anything is actually due — the common idle tick must not
        // allocate.
        if self.pending_prunes.iter().any(|p| now >= p.execute_at) {
            let due: Vec<PendingPrune> = {
                let (due, rest) = self
                    .pending_prunes
                    .drain(..)
                    .partition(|p| now >= p.execute_at);
                self.pending_prunes = rest;
                due
            };
            for p in due {
                out.extend(self.execute_prune(now, p.iface, p.group, &p.entry, p.holdtime, rib));
            }
        }

        // Expire neighbors (DR election input). The DR re-election scans
        // run only on interfaces where a holdtime actually lapsed.
        for idx in 0..self.ifaces.len() {
            if !self.ifaces[idx].neighbors.values().any(|&exp| now >= exp) {
                continue;
            }
            let iface = IfaceId(idx as u32);
            let was_dr = self.is_dr(iface);
            self.ifaces[idx].neighbors.retain(|_, &mut exp| now < exp);
            let is_dr = self.is_dr(iface);
            if was_dr != is_dr {
                self.telem.emit(now.ticks(), || Event::DrChanged {
                    iface: idx as u32,
                    is_dr,
                });
            }
        }

        // §3.8 repair: an entry can be left with no upstream when its
        // unicast route vanished, and the RouteChanged notification for
        // the route's return skips entries whose oif list was empty at
        // that instant (nothing to join *for*). If downstream interest
        // arrived later, the entry is live again but pointing nowhere —
        // re-resolve it against the RIB and send the triggered join.
        fn orphan_scan(gs: &GroupState) -> impl Iterator<Item = Addr> + '_ {
            let star = gs
                .star
                .as_ref()
                .filter(|s| s.iif.is_none() && !s.oifs_empty())
                .map(|s| s.key);
            let sources = gs
                .sources
                .iter()
                .filter(|(_, e)| {
                    !e.is_negative() && !e.local_source && e.iif.is_none() && !e.oifs_empty()
                })
                .map(|(&a, _)| a);
            star.into_iter().chain(sources)
        }
        // Orphans are rare (a route flap racing downstream interest): probe
        // without allocating before building the repair set.
        if self
            .groups
            .values()
            .any(|gs| orphan_scan(gs).next().is_some())
        {
            let orphaned: BTreeSet<Addr> = self.groups.values().flat_map(orphan_scan).collect();
            for dst in orphaned {
                out.extend(self.on_route_change(now, dst, rib));
            }
        }

        // PIM queries.
        if now >= self.next_query {
            self.next_query = now + self.cfg.query_interval;
            let holdtime = self.cfg.neighbor_holdtime.ticks().min(u16::MAX as u64) as u16;
            // Queries go on every interface: DR election matters on member
            // LANs with multiple routers too (§3.7); hosts ignore them.
            for i in 0..self.ifaces.len() {
                out.push(Output::Send {
                    iface: IfaceId(i as u32),
                    dst: Addr::ALL_PIM_ROUTERS,
                    ttl: 1,
                    msg: Message::PimQuery(Query { holdtime }),
                });
            }
        }

        // Entry timer maintenance.
        out.extend(self.expire_entries(now));

        // RP failover checks.
        let rp_lapsed = |gs: &GroupState| {
            gs.star
                .as_ref()
                .and_then(|s| s.rp_timer)
                .is_some_and(|t| now >= t)
        };
        if self.groups.values().any(rp_lapsed) {
            let lapsed: Vec<Group> = self
                .groups
                .iter()
                .filter(|(_, gs)| rp_lapsed(gs))
                .map(|(&g, _)| g)
                .collect();
            for g in lapsed {
                out.extend(self.rp_failover(now, g, rib));
            }
        }

        // RP-reachability generation (§3.2).
        if now >= self.next_reach {
            self.next_reach = now + self.cfg.rp_reach_period;
            let holdtime = self.cfg.rp_timeout.ticks().min(u16::MAX as u64) as u16;
            let mut sends = Vec::new();
            for (&group, gs) in &self.groups {
                if gs.rp() != Some(self.my_addr) && !gs.rps.contains(&self.my_addr) {
                    continue;
                }
                let Some(star) = gs.star.as_ref() else {
                    continue;
                };
                for i in star.forward_set(None) {
                    if self.ifaces[i.index()].is_host_lan {
                        continue;
                    }
                    sends.push(Output::Send {
                        iface: i,
                        dst: Addr::ALL_PIM_ROUTERS,
                        ttl: 1,
                        msg: Message::PimRpReachability(RpReachability {
                            group,
                            rp: self.my_addr,
                            holdtime,
                        }),
                    });
                }
            }
            out.extend(sends);
        }

        // Periodic join/prune refresh (§3.4), aggregated per upstream
        // neighbor.
        if now >= self.next_refresh {
            self.next_refresh = now + self.cfg.refresh_period;
            out.extend(self.periodic_refresh(now));
        }

        out
    }

    /// The absolute time of this engine's next pending timer: the periodic
    /// query/reachability/refresh schedule, matured LAN prunes, neighbor
    /// holdtime expiries, and every entry's soft-state timers. The adapter
    /// arms exactly one wakeup at this instant instead of polling.
    ///
    /// PIM routers are never fully quiescent — queries and join/prune
    /// refreshes are the protocol's heartbeat — so this always returns
    /// `Some`, but the deadlines are whole protocol periods apart, not poll
    /// granules.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best = Some(self.next_query.min(self.next_reach).min(self.next_refresh));
        for p in &self.pending_prunes {
            best = netsim::earliest(best, Some(p.execute_at));
        }
        for st in &self.ifaces {
            best = netsim::earliest(best, st.neighbors.values().copied().min());
        }
        for gs in self.groups.values() {
            if let Some(star) = gs.star.as_ref() {
                best = netsim::earliest(best, star.next_deadline());
            }
            for e in gs.sources.values() {
                best = netsim::earliest(best, e.next_deadline());
            }
        }
        best
    }

    fn expire_entries(&mut self, now: SimTime) -> Vec<Output> {
        let mut out = Vec::new();
        let groups: Vec<Group> = self.groups.keys().copied().collect();
        for group in groups {
            let mut emptied = false;
            {
                let gs = self.groups.get_mut(&group).expect("iterating keys");
                if let Some(star) = gs.star.as_mut() {
                    let removed = star.expire_oifs(now);
                    if !removed.is_empty() {
                        emptied = true;
                        // Copied (S,G) oifs follow the shared tree's lapses.
                        for i in removed {
                            for e in gs.sources.values_mut() {
                                if e.oifs.get(&i).map(|o| o.kind) == Some(OifKind::CopiedFromStar) {
                                    e.remove_oif(i);
                                }
                            }
                        }
                    }
                }
                for e in gs.sources.values_mut() {
                    if !e.expire_oifs(now).is_empty() {
                        emptied = true;
                    }
                    // Negative-cache pruned-oif leases lapse back to
                    // forwarding (footnote 13: kept alive by prunes only).
                    e.pruned_oifs.retain(|_, &mut t| now < t);
                }
                // Entries that ended up with no oifs by any path (including
                // degenerate joins that arrived on the entry's own iif and
                // never contributed an oif) must get a deletion deadline.
                if gs
                    .star
                    .as_ref()
                    .is_some_and(|e| e.oifs_empty() && e.delete_at.is_none())
                {
                    emptied = true;
                }
                if gs.sources.values().any(|e| {
                    !e.is_negative() && !e.local_source && e.oifs_empty() && e.delete_at.is_none()
                }) {
                    emptied = true;
                }
                // Deletion of lapsed entries.
                let star_dead = gs
                    .star
                    .as_ref()
                    .and_then(|s| s.delete_at)
                    .is_some_and(|t| now >= t);
                if star_dead {
                    gs.star = None;
                    self.telem.emit(now.ticks(), || Event::EntryExpired {
                        group,
                        key: EntryKey::Star,
                    });
                    // Footnote 13: negative caches must not outlive (*,G).
                    if self.telem.is_enabled() {
                        for (&s, e) in gs.sources.iter() {
                            if e.is_negative() {
                                self.telem.emit(now.ticks(), || Event::EntryExpired {
                                    group,
                                    key: EntryKey::Source(s),
                                });
                            }
                        }
                    }
                    gs.sources.retain(|_, e| !e.is_negative());
                }
                for e in gs.sources.values_mut() {
                    // A local-source entry with no remaining oifs carries no
                    // forwarding value; the DR will re-register on the next
                    // packet, so let it linger out like everything else.
                    if e.local_source && e.oifs_empty() && e.delete_at.is_none() {
                        e.delete_at = Some(now + self.cfg.entry_linger);
                    }
                }
                if self.telem.is_enabled() {
                    for (&s, e) in gs.sources.iter() {
                        if e.delete_at.is_some_and(|t| now >= t) {
                            self.telem.emit(now.ticks(), || Event::EntryExpired {
                                group,
                                key: EntryKey::Source(s),
                            });
                        }
                    }
                }
                gs.sources
                    .retain(|_, e| e.delete_at.is_none_or(|t| now < t));
            }
            if emptied {
                out.extend(self.after_oif_removal(now, group));
            }
            // Drop group states with nothing left but a mapping.
            let gs = self.groups.get(&group).expect("exists");
            if gs.star.is_none() && gs.sources.is_empty() && gs.rps.is_empty() {
                self.groups.remove(&group);
            }
        }
        out
    }

    /// "In the steady state each router sends periodic refreshes of PIM
    /// messages upstream to each of the next hop routers that is en route
    /// to each source ... as well as for the RP" (§3.4).
    fn periodic_refresh(&mut self, now: SimTime) -> Vec<Output> {
        // Aggregate entries per (iface, upstream neighbor).
        let mut batches: HashMap<(IfaceId, Addr), Vec<GroupEntry>> = HashMap::new();
        let mut push = |iface: IfaceId,
                        up: Addr,
                        group: Group,
                        joins: Vec<SourceEntry>,
                        prunes: Vec<SourceEntry>| {
            let batch = batches.entry((iface, up)).or_default();
            if let Some(ge) = batch.iter_mut().find(|ge| ge.group == group) {
                ge.joins.extend(joins);
                ge.prunes.extend(prunes);
            } else {
                batch.push(GroupEntry {
                    group,
                    joins,
                    prunes,
                });
            }
        };
        for (&group, gs) in &self.groups {
            if let Some(star) = &gs.star {
                let suppressed = star.suppressed_until.is_some_and(|t| now < t);
                if !star.oifs_empty() && !suppressed {
                    if let (Some(iif), Some(up)) = (star.iif, star.upstream) {
                        push(
                            iif,
                            up,
                            group,
                            vec![SourceEntry::shared_tree(star.key)],
                            vec![],
                        );
                    }
                }
            }
            for (&source, e) in &gs.sources {
                let suppressed = e.suppressed_until.is_some_and(|t| now < t);
                if e.is_negative() {
                    // Footnote 10: "The RP bit in an (S,G) entry indicates
                    // that periodic PIM join/prune should be sent toward
                    // the RP" — refresh the upstream negative caches while
                    // all our downstream branches remain pruned.
                    if e.oifs_empty() {
                        if let (Some(iif), Some(up)) = (e.iif, e.upstream) {
                            push(
                                iif,
                                up,
                                group,
                                vec![],
                                vec![SourceEntry::source_on_rp_tree(source)],
                            );
                        }
                    }
                } else {
                    if !e.oifs_empty() && !e.local_source && !suppressed {
                        if let (Some(iif), Some(up)) = (e.iif, e.upstream) {
                            push(iif, up, group, vec![SourceEntry::source(source)], vec![]);
                        }
                    }
                    if e.pruned_from_shared {
                        // §3.3: the prune toward the RP only applies while
                        // "its shared tree incoming interface differs from
                        // its shortest path tree incoming interface" — a
                        // re-rooted shared tree (RP failover, route change)
                        // may have converged onto the SPT path.
                        if let Some(star) = &gs.star {
                            if star.iif != e.iif {
                                if let (Some(siif), Some(sup)) = (star.iif, star.upstream) {
                                    push(
                                        siif,
                                        sup,
                                        group,
                                        vec![],
                                        vec![SourceEntry::source_on_rp_tree(source)],
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut keys: Vec<(IfaceId, Addr)> = batches.keys().copied().collect();
        keys.sort();
        keys.into_iter()
            .map(|k| {
                let groups = batches.remove(&k).expect("key from map");
                self.join_prune_to(k.0, k.1, groups)
            })
            .collect()
    }

    /// Clear LAN suppression state for tests.
    #[cfg(test)]
    pub(crate) fn neighbors_on(&self, iface: IfaceId) -> Vec<Addr> {
        self.ifaces[iface.index()]
            .neighbors
            .keys()
            .copied()
            .collect()
    }
}

impl StateDump for Engine {
    /// `show mroute`-style snapshot: per-interface PIM neighbors (the DR
    /// election inputs), then every (\*,G)/(S,G) entry with its flag bits,
    /// iif/upstream, oif list, negative-cache prune leases, and soft-state
    /// deadlines. Rendered from [`BTreeMap`]s, so byte-stable across runs.
    fn state_dump(&self, now: telemetry::Ticks) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "pim {} t{}", self.my_addr, now);
        for (i, st) in self.ifaces.iter().enumerate() {
            if st.neighbors.is_empty() {
                continue;
            }
            let nbrs: Vec<String> = st
                .neighbors
                .iter()
                .map(|(a, exp)| format!("{a}/{}", fmt_deadline(*exp)))
                .collect();
            let dr = if self.is_dr(IfaceId(i as u32)) {
                " dr"
            } else {
                ""
            };
            let _ = writeln!(s, "  if{i}{dr} nbrs=[{}]", nbrs.join(","));
        }
        for (&group, gs) in &self.groups {
            let rps: Vec<String> = gs.rps.iter().map(|r| r.to_string()).collect();
            let rp = gs
                .rp()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(s, "  group {group} rps=[{}] rp={rp}", rps.join(","));
            if let Some(star) = &gs.star {
                dump_entry(&mut s, star);
            }
            for e in gs.sources.values() {
                dump_entry(&mut s, e);
            }
        }
        s
    }
}

/// One forwarding entry in `show mroute` style, plus oif/prune sub-lines.
fn dump_entry(s: &mut String, e: &Entry) {
    let lhs = if e.wildcard {
        "*".to_string()
    } else {
        e.key.to_string()
    };
    let _ = write!(
        s,
        "    ({lhs}, {}) flags={}",
        e.group,
        flags::render(entry_flags(e))
    );
    if e.wildcard {
        // For (*,G) the key carries the RP the tree is rooted at.
        let _ = write!(s, " rp={}", e.key);
    }
    match e.iif {
        Some(i) => {
            let _ = write!(s, " iif={}", i.index());
        }
        None => {
            let _ = write!(s, " iif=-");
        }
    }
    if let Some(up) = e.upstream {
        let _ = write!(s, " up={up}");
    }
    if let Some(t) = e.rp_timer {
        let _ = write!(s, " rp-timer={}", fmt_deadline(t));
    }
    if let Some(t) = e.delete_at {
        let _ = write!(s, " delete-at={}", fmt_deadline(t));
    }
    let _ = writeln!(s);
    for (&i, o) in &e.oifs {
        let kind = match o.kind {
            OifKind::Joined => "joined",
            OifKind::CopiedFromStar => "copied",
            OifKind::LocalMembers => "local",
        };
        let _ = writeln!(
            s,
            "      oif {} {kind} expires={}",
            i.index(),
            fmt_deadline(o.expires_at)
        );
    }
    for (&i, &t) in &e.pruned_oifs {
        let _ = writeln!(s, "      pruned {} until={}", i.index(), fmt_deadline(t));
    }
}

/// Render a soft-state deadline; `u64::MAX` is the "never expires"
/// sentinel used for local-member oifs.
fn fmt_deadline(t: SimTime) -> String {
    if t.ticks() == u64::MAX {
        "never".to_string()
    } else {
        format!("t{}", t.ticks())
    }
}

/// Set-like helper used by the router adapter: which groups have local
/// members according to the engine's oif state.
pub fn groups_with_local_members(engine: &Engine) -> HashSet<Group> {
    engine
        .groups()
        .filter(|(_, gs)| gs.star.as_ref().is_some_and(|s| s.has_local_members()))
        .map(|(g, _)| g)
        .collect()
}
