//! Sans-IO unit tests for the PIM engine, exercising each paper behavior
//! directly (no simulator involved).
//!
//! The fixture topology, in routes only:
//!
//! ```text
//!   host R ── [A] ──if1── [B] ──if1── [C=RP] ──if1── [D] ──if1── host S
//!  (iface 0)                                                (iface 0... )
//! ```
//!
//! plus a "side" path giving A a direct shortest path to S that bypasses
//! the RP (A iface 2), so the SPT divergence logic is exercised.

use crate::config::{PimConfig, SptPolicy};
use crate::engine::{Engine, Output};
use crate::entry::OifKind;
use netsim::{Duration, IfaceId, SimTime};
use unicast::{OracleRib, RouteEntry};
use wire::pim::{GroupEntry, JoinPrune, Query, Register, RpReachability, SourceEntry};
use wire::{Addr, Group, Message};

fn g() -> Group {
    Group::test(1)
}

fn a() -> Addr {
    Addr::new(10, 0, 1, 1)
}
fn b() -> Addr {
    Addr::new(10, 0, 2, 1)
}
fn rp() -> Addr {
    Addr::new(10, 0, 3, 1)
}
fn rp2() -> Addr {
    Addr::new(10, 0, 8, 1)
}
fn d() -> Addr {
    Addr::new(10, 0, 4, 1)
}
fn src() -> Addr {
    Addr::new(10, 0, 4, 10) // host S behind D
}

fn t(ticks: u64) -> SimTime {
    SimTime(ticks)
}

/// Routes for router A: RP via iface 1 (next hop b), source via iface 2
/// (a shortcut that diverges from the RP path).
fn rib_a() -> OracleRib {
    let mut r = OracleRib::empty(a());
    r.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: b(),
            metric: 2,
        },
    );
    r.insert(
        rp2(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: b(),
            metric: 4,
        },
    );
    r.insert(
        b(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: b(),
            metric: 1,
        },
    );
    r.insert(
        d(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: d(),
            metric: 1,
        },
    );
    r.insert(
        src(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: d(),
            metric: 2,
        },
    );
    r
}

/// Routes for router B (between A and the RP): RP via iface 1, A via 0.
fn rib_b() -> OracleRib {
    let mut r = OracleRib::empty(b());
    r.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp(),
            metric: 1,
        },
    );
    r.insert(
        a(),
        RouteEntry {
            iface: IfaceId(0),
            next_hop: a(),
            metric: 1,
        },
    );
    r.insert(
        src(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp(),
            metric: 3,
        },
    );
    r
}

/// Routes for the RP (C): source via iface 1 (through D).
fn rib_rp() -> OracleRib {
    let mut r = OracleRib::empty(rp());
    r.insert(
        src(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: d(),
            metric: 2,
        },
    );
    r.insert(
        d(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: d(),
            metric: 1,
        },
    );
    r.insert(
        a(),
        RouteEntry {
            iface: IfaceId(0),
            next_hop: b(),
            metric: 2,
        },
    );
    r
}

/// Routes for D (the source's DR): RP via iface 1. Host S is local on 0.
fn rib_d() -> OracleRib {
    let mut r = OracleRib::empty(d());
    r.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp(),
            metric: 1,
        },
    );
    r.insert(
        rp2(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: rp(),
            metric: 3,
        },
    );
    r
}

/// Receiver-side DR with a local member already joined.
fn dr_with_member() -> (Engine, OracleRib) {
    let rib = rib_a();
    let mut e = Engine::new(a(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    (e, rib)
}

fn sent_join_prunes(out: &[Output]) -> Vec<&JoinPrune> {
    out.iter()
        .filter_map(|o| match o {
            Output::Send {
                msg: Message::PimJoinPrune(jp),
                ..
            } => Some(jp),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------
// §3.1/§3.2 — joining the shared tree
// ---------------------------------------------------------------------

#[test]
fn member_join_creates_star_and_sends_shared_tree_join() {
    let rib = rib_a();
    let mut e = Engine::new(a(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    let out = e.local_member_joined(t(0), g(), IfaceId(0), &rib);

    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(star.wildcard && star.rp_bit);
    assert_eq!(star.key, rp());
    assert_eq!(star.iif, Some(IfaceId(1)));
    assert_eq!(star.upstream, Some(b()));
    assert!(star.rp_timer.is_some(), "§3.1: DR sets an RP-timer");
    assert_eq!(star.oifs[&IfaceId(0)].kind, OifKind::LocalMembers);

    // The triggered §3.2 join payload: join={RP, RPbit, WCbit}, prune=NULL.
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1);
    assert_eq!(jps[0].upstream_neighbor, b());
    let ge = &jps[0].groups[0];
    assert_eq!(ge.group, g());
    assert_eq!(ge.joins, vec![SourceEntry::shared_tree(rp())]);
    assert!(ge.prunes.is_empty());
    match &out[0] {
        Output::Send {
            iface, dst, ttl, ..
        } => {
            assert_eq!(*iface, IfaceId(1));
            assert_eq!(*dst, Addr::ALL_PIM_ROUTERS);
            assert_eq!(*ttl, 1);
        }
        other => panic!("expected Send, got {other:?}"),
    }
}

#[test]
fn no_rp_mapping_means_not_sparse_mode() {
    let rib = rib_a();
    let mut e = Engine::new(a(), 3, PimConfig::default());
    let out = e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    assert!(out.is_empty());
    assert!(e.group_state(g()).is_none());
}

#[test]
fn intermediate_router_propagates_join_upstream() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    // A's join arrives on iface 0, addressed to us.
    let jp = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    let out = e.on_join_prune(t(1), IfaceId(0), a(), &jp, &rib);

    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert_eq!(star.iif, Some(IfaceId(1)));
    assert_eq!(star.upstream, Some(rp()));
    assert_eq!(star.oifs[&IfaceId(0)].kind, OifKind::Joined);

    // "Each upstream router between the receiver and the RP sends a PIM
    // join message in which the join list includes the RP" (§3.2).
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1);
    assert_eq!(jps[0].upstream_neighbor, rp());
    assert_eq!(jps[0].groups[0].joins, vec![SourceEntry::shared_tree(rp())]);
}

#[test]
fn rp_recognizes_itself_and_stops_propagation() {
    let rib = rib_rp();
    let mut e = Engine::new(rp(), 2, PimConfig::default());
    e.set_rp_mapping(g(), vec![rp()]);
    let jp = JoinPrune {
        upstream_neighbor: rp(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    let out = e.on_join_prune(t(1), IfaceId(0), b(), &jp, &rib);
    assert!(
        sent_join_prunes(&out).is_empty(),
        "RP must not join upstream"
    );
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert_eq!(star.iif, None, "§3.2: RP's (*,G) iif is null");
}

#[test]
fn join_arriving_on_iif_is_ignored() {
    let (mut e, rib) = dr_with_member();
    let jp = JoinPrune {
        upstream_neighbor: a(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(1), b(), &jp, &rib); // iface 1 is the iif
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(
        !star.oifs.contains_key(&IfaceId(1)),
        "oif on iif would loop"
    );
}

#[test]
fn duplicate_join_refreshes_not_duplicates() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let jp = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    let o1 = e.on_join_prune(t(1), IfaceId(0), a(), &jp, &rib);
    assert!(!sent_join_prunes(&o1).is_empty());
    let o2 = e.on_join_prune(t(50), IfaceId(0), a(), &jp, &rib);
    assert!(
        sent_join_prunes(&o2).is_empty(),
        "refresh is not re-triggered"
    );
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert_eq!(star.oifs[&IfaceId(0)].expires_at, t(50 + 180));
}

// ---------------------------------------------------------------------
// §3 — register path
// ---------------------------------------------------------------------

#[test]
fn source_dr_registers_to_rp() {
    let rib = rib_d();
    let mut e = Engine::new(d(), 2, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.register_local_host(src(), IfaceId(0));
    let out = e.on_local_data(t(5), IfaceId(0), src(), g(), b"pkt0", &rib);
    assert_eq!(out.len(), 1);
    match &out[0] {
        Output::Send {
            iface,
            dst,
            msg: Message::PimRegister(r),
            ..
        } => {
            assert_eq!(*iface, IfaceId(1));
            assert_eq!(*dst, rp());
            assert_eq!(r.group, g());
            assert_eq!(r.source, src());
            assert_eq!(r.payload, b"pkt0");
        }
        other => panic!("expected Register, got {other:?}"),
    }
    assert_eq!(e.registers_sent, 1);
}

#[test]
fn rp_with_receivers_decapsulates_and_joins_source() {
    let rib = rib_rp();
    let mut e = Engine::new(rp(), 2, PimConfig::default());
    e.set_rp_mapping(g(), vec![rp()]);
    // A receiver join first (down iface 0).
    let jp = JoinPrune {
        upstream_neighbor: rp(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(0), b(), &jp, &rib);
    // Register arrives.
    let out = e.on_register(
        t(5),
        &Register {
            group: g(),
            source: src(),
            payload: b"pkt0".to_vec(),
        },
        &rib,
    );
    // Decapsulated data goes down the shared tree...
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Forward { ifaces, source, group, payload }
            if ifaces == &vec![IfaceId(0)] && *source == src() && *group == g() && payload == b"pkt0"
    )));
    // ...and the RP joins toward the source (fig 3 step 3).
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1);
    assert_eq!(jps[0].upstream_neighbor, d());
    assert_eq!(jps[0].groups[0].joins, vec![SourceEntry::source(src())]);
    // (S,G) at the RP: iif toward the source, oifs copied from (*,G).
    let e_sg = &e.group_state(g()).unwrap().sources[&src()];
    assert_eq!(e_sg.iif, Some(IfaceId(1)));
    assert!(e_sg.oifs.contains_key(&IfaceId(0)));
    assert_eq!(e.registers_received, 1);
}

#[test]
fn rp_without_receivers_drops_register() {
    let rib = rib_rp();
    let mut e = Engine::new(rp(), 2, PimConfig::default());
    e.set_rp_mapping(g(), vec![rp()]);
    let out = e.on_register(
        t(5),
        &Register {
            group: g(),
            source: src(),
            payload: b"pkt0".to_vec(),
        },
        &rib,
    );
    assert!(out.is_empty());
    // No (S,G) state created either.
    assert!(e.group_state(g()).is_none_or(|gs| gs.sources.is_empty()));
}

#[test]
fn non_rp_ignores_register() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let out = e.on_register(
        t(5),
        &Register {
            group: g(),
            source: src(),
            payload: b"x".to_vec(),
        },
        &rib,
    );
    assert!(out.is_empty());
}

#[test]
fn source_dr_suppresses_registers_between_probes() {
    let rib = rib_d();
    let mut e = Engine::new(d(), 2, PimConfig::default());
    let probe_gap = e.config().register_probe_interval.ticks();
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.register_local_host(src(), IfaceId(0));
    // The RP's join for (S,G) arrives on iface 1.
    let jp = JoinPrune {
        upstream_neighbor: d(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::source(src()))],
    };
    e.on_join_prune(t(3), IfaceId(1), rp(), &jp, &rib);
    let sg = &e.group_state(g()).unwrap().sources[&src()];
    assert!(sg.local_source);
    assert_eq!(sg.iif, Some(IfaceId(0)), "iif is the host subnetwork");

    let is_register = |o: &Output| {
        matches!(
            o,
            Output::Send {
                msg: Message::PimRegister(_),
                ..
            }
        )
    };
    // First native packet still registers once: native oifs only prove a
    // receiver's SPT join reached us, not that the RP holds the source,
    // so the DR probes on a slow clock (register_probe_interval).
    let out = e.on_local_data(t(5), IfaceId(0), src(), g(), b"pkt1", &rib);
    assert!(out.iter().any(is_register), "probe register");
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(1)]
    )));
    assert_eq!(e.registers_sent, 1);

    // Until the next probe is due, native forwarding suppresses registers
    // entirely — the steady-state claim of §3.
    for dt in [1, 2, probe_gap - 10] {
        let out = e.on_local_data(t(5 + dt), IfaceId(0), src(), g(), b"pkt", &rib);
        assert!(
            !out.iter().any(is_register),
            "native path exists: no registers between probes"
        );
        assert!(out.iter().any(|o| matches!(o, Output::Forward { .. })));
    }
    assert_eq!(e.registers_sent, 1);

    // Once the interval lapses, the next data packet re-registers.
    let out = e.on_local_data(t(5 + probe_gap), IfaceId(0), src(), g(), b"pkt", &rib);
    assert!(out.iter().any(is_register), "periodic probe register");
    assert_eq!(e.registers_sent, 2);
}

#[test]
fn non_dr_does_not_register() {
    let rib = rib_d();
    let mut e = Engine::new(d(), 2, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.register_local_host(src(), IfaceId(0));
    // A higher-addressed neighbor on iface 0 wins the DR election.
    e.on_query(
        t(0),
        IfaceId(0),
        Addr::new(10, 0, 200, 1),
        &Query { holdtime: 1000 },
    );
    assert!(!e.is_dr(IfaceId(0)));
    let out = e.on_local_data(t(5), IfaceId(0), src(), g(), b"pkt0", &rib);
    assert!(out.is_empty());
}

// ---------------------------------------------------------------------
// §3.3/§3.5 — SPT switchover and data forwarding
// ---------------------------------------------------------------------

/// Drive the receiver DR through: shared-tree data → (S,G) creation →
/// SPT data arrival → SPT bit set + prune toward RP.
#[test]
fn spt_switchover_full_sequence() {
    let (mut e, rib) = dr_with_member();

    // Data from S arrives via the shared tree (iface 1 = star iif).
    let out = e.on_data(t(10), IfaceId(1), src(), g(), b"d0", &rib);
    // Forwarded to the member subnetwork.
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(0)]
    )));
    // (Sn,G) created with SPT bit cleared and a join sent toward Sn (§3.3).
    let sg = &e.group_state(g()).unwrap().sources[&src()];
    assert!(!sg.spt_bit);
    assert_eq!(
        sg.iif,
        Some(IfaceId(2)),
        "iif toward the source, not the RP"
    );
    assert!(sg.oifs.contains_key(&IfaceId(0)), "oifs copied from (*,G)");
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1);
    assert_eq!(jps[0].upstream_neighbor, d());
    assert_eq!(jps[0].groups[0].joins, vec![SourceEntry::source(src())]);

    // More data still arriving via the shared tree: §3.5 exception 1 —
    // forwarded according to (*,G).
    let out = e.on_data(t(12), IfaceId(1), src(), g(), b"d1", &rib);
    assert!(out
        .iter()
        .any(|o| matches!(o, Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(0)])));
    assert!(!e.group_state(g()).unwrap().sources[&src()].spt_bit);

    // First packet over the SPT interface: SPT bit set, prune {S,RPbit}
    // toward the RP (divergent interfaces).
    let out = e.on_data(t(14), IfaceId(2), src(), g(), b"d2", &rib);
    assert!(e.group_state(g()).unwrap().sources[&src()].spt_bit);
    assert!(out
        .iter()
        .any(|o| matches!(o, Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(0)])));
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1);
    assert_eq!(jps[0].upstream_neighbor, b(), "prune goes toward the RP");
    assert_eq!(
        jps[0].groups[0].prunes,
        vec![SourceEntry::source_on_rp_tree(src())]
    );

    // Once on the SPT, shared-tree arrivals of S fail the iif check.
    let out = e.on_data(t(16), IfaceId(1), src(), g(), b"d3", &rib);
    assert!(out.is_empty(), "iif check must drop shared-tree duplicates");
}

#[test]
fn spt_policy_never_stays_on_shared_tree() {
    let rib = rib_a();
    let mut e = Engine::new(a(), 3, PimConfig::shared_tree_only());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    for i in 0..20 {
        e.on_data(t(10 + i), IfaceId(1), src(), g(), b"d", &rib);
    }
    assert!(
        e.group_state(g()).unwrap().sources.is_empty(),
        "policy Never must not create (S,G)"
    );
}

#[test]
fn spt_policy_after_packets_counts_within_window() {
    let rib = rib_a();
    let mut e = Engine::new(
        a(),
        3,
        PimConfig {
            spt_policy: SptPolicy::AfterPackets {
                packets: 3,
                within: Duration(100),
            },
            ..PimConfig::default()
        },
    );
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    e.on_data(t(10), IfaceId(1), src(), g(), b"d", &rib);
    e.on_data(t(20), IfaceId(1), src(), g(), b"d", &rib);
    assert!(e.group_state(g()).unwrap().sources.is_empty());
    e.on_data(t(30), IfaceId(1), src(), g(), b"d", &rib);
    assert!(e.group_state(g()).unwrap().sources.contains_key(&src()));
}

#[test]
fn spt_policy_after_packets_window_resets() {
    let rib = rib_a();
    let mut e = Engine::new(
        a(),
        3,
        PimConfig {
            spt_policy: SptPolicy::AfterPackets {
                packets: 3,
                within: Duration(100),
            },
            ..PimConfig::default()
        },
    );
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp()]);
    e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    e.on_data(t(10), IfaceId(1), src(), g(), b"d", &rib);
    e.on_data(t(20), IfaceId(1), src(), g(), b"d", &rib);
    // Window lapses; the count restarts.
    e.on_data(t(200), IfaceId(1), src(), g(), b"d", &rib);
    e.on_data(t(210), IfaceId(1), src(), g(), b"d", &rib);
    assert!(e.group_state(g()).unwrap().sources.is_empty());
    e.on_data(t(220), IfaceId(1), src(), g(), b"d", &rib);
    assert!(e.group_state(g()).unwrap().sources.contains_key(&src()));
}

#[test]
fn data_without_state_is_dropped() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let out = e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
    assert!(out.is_empty(), "sparse mode: no state, no forwarding");
}

#[test]
fn star_iif_check_drops_wrong_interface() {
    let (mut e, rib) = dr_with_member();
    let out = e.on_data(t(1), IfaceId(2), src(), g(), b"d", &rib);
    // iface 2 is not the (*,G) iif (iface 1) and there is no (S,G) yet.
    assert!(out.is_empty());
}

// ---------------------------------------------------------------------
// §3.3 footnote 11 / §3.4 — negative caches on the RP tree
// ---------------------------------------------------------------------

/// Router B (on the shared tree between A and the RP) receives A's prune
/// {S, RPbit}: it builds a negative cache and, since A was its only
/// downstream, propagates the prune toward the RP.
#[test]
fn negative_cache_created_and_propagated() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    // Shared tree: A joined through us.
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(0), a(), &join, &rib);
    // A pruned S off the shared tree.
    let prune = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::prune(
            g(),
            SourceEntry::source_on_rp_tree(src()),
        )],
    };
    let out = e.on_join_prune(t(2), IfaceId(0), a(), &prune, &rib);

    let neg = &e.group_state(g()).unwrap().sources[&src()];
    assert!(neg.is_negative());
    assert_eq!(
        neg.iif,
        Some(IfaceId(1)),
        "negative cache shares the RP-tree iif"
    );
    assert!(!neg.oifs.contains_key(&IfaceId(0)), "pruned oif removed");
    assert!(neg.pruned_oifs.contains_key(&IfaceId(0)));

    // All downstream branches pruned → propagate toward the RP.
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1);
    assert_eq!(jps[0].upstream_neighbor, rp());
    assert_eq!(
        jps[0].groups[0].prunes,
        vec![SourceEntry::source_on_rp_tree(src())]
    );
}

#[test]
fn negative_cache_drops_matching_data_to_pruned_oifs_only() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 3, PimConfig::default());
    // Two downstream branches.
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(0), a(), &join, &rib);
    e.on_join_prune(t(1), IfaceId(2), Addr::new(10, 0, 9, 1), &join, &rib);
    // Branch on iface 0 prunes S.
    let prune = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::prune(
            g(),
            SourceEntry::source_on_rp_tree(src()),
        )],
    };
    let out = e.on_join_prune(t(2), IfaceId(0), a(), &prune, &rib);
    assert!(
        sent_join_prunes(&out).is_empty(),
        "iface 2 still wants S via the shared tree: no upstream prune"
    );

    // S's data from the RP tree goes only to iface 2 now.
    let out = e.on_data(t(3), IfaceId(1), src(), g(), b"d", &rib);
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(2)]
    )));
    // Another source's data still reaches both branches via (*,G).
    let other_src = Addr::new(10, 0, 5, 10);
    let out = e.on_data(t(4), IfaceId(1), other_src, g(), b"d", &rib);
    assert!(out.iter().any(|o| matches!(
        o,
        Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(0), IfaceId(2)]
    )));
}

#[test]
fn rejoin_cancels_negative_cache() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(0), a(), &join, &rib);
    let prune = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::prune(
            g(),
            SourceEntry::source_on_rp_tree(src()),
        )],
    };
    e.on_join_prune(t(2), IfaceId(0), a(), &prune, &rib);
    assert!(e.group_state(g()).unwrap().sources[&src()].is_negative());
    // A rejoins S on the shared tree (join with RP bit).
    let rejoin = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::source_on_rp_tree(src()))],
    };
    e.on_join_prune(t(3), IfaceId(0), a(), &rejoin, &rib);
    assert!(
        !e.group_state(g()).unwrap().sources.contains_key(&src()),
        "negative cache with nothing pruned is dropped"
    );
}

#[test]
fn negative_cache_expires_without_prune_refresh() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(0), a(), &join, &rib);
    let prune = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 60,
        groups: vec![GroupEntry::prune(
            g(),
            SourceEntry::source_on_rp_tree(src()),
        )],
    };
    e.on_join_prune(t(2), IfaceId(0), a(), &prune, &rib);
    assert!(e.group_state(g()).unwrap().sources.contains_key(&src()));
    // Footnote 13: kept alive by receipt of prunes — none arrive.
    e.tick(t(100), &rib);
    assert!(
        !e.group_state(g()).unwrap().sources.contains_key(&src()),
        "unrefreshed negative cache must lapse"
    );
    // The (*,G) survives.
    assert!(e.group_state(g()).unwrap().star.is_some());
}

// ---------------------------------------------------------------------
// §3.6 — timers
// ---------------------------------------------------------------------

#[test]
fn oif_expiry_prunes_upstream_and_deletes_entry() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 100,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(0), IfaceId(0), a(), &join, &rib);
    // No refresh: oif lapses at t=100.
    let out = e.tick(t(101), &rib);
    let jps = sent_join_prunes(&out);
    assert!(
        jps.iter().any(|jp| jp.upstream_neighbor == rp()
            && jp
                .groups
                .iter()
                .any(|ge| ge.prunes.contains(&SourceEntry::shared_tree(rp())))),
        "null oif list triggers an upstream prune (§3.6): {out:?}"
    );
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(star.oifs_empty());
    assert!(star.delete_at.is_some());
    // "The entry is deleted after 3 times the refresh period."
    e.tick(t(101 + 181), &rib);
    assert!(e.group_state(g()).is_none_or(|gs| gs.star.is_none()));
}

#[test]
fn periodic_refresh_sends_joins() {
    let (mut e, rib) = dr_with_member();
    // First tick at the refresh period boundary.
    let out = e.tick(t(60), &rib);
    let jps = sent_join_prunes(&out);
    assert!(jps.iter().any(|jp| jp.upstream_neighbor == b()
        && jp.groups[0].joins == vec![SourceEntry::shared_tree(rp())]));
}

#[test]
fn periodic_refresh_aggregates_per_upstream() {
    let (mut e, rib) = dr_with_member();
    // Add an SPT entry toward d() via the §3.3 switch.
    e.on_data(t(10), IfaceId(1), src(), g(), b"d", &rib);
    e.on_data(t(11), IfaceId(2), src(), g(), b"d", &rib); // sets SPT bit, prunes shared
    let out = e.tick(t(70), &rib);
    let jps = sent_join_prunes(&out);
    // Two upstream neighbors: b() (shared join + S prune) and d() (S join).
    let to_b: Vec<_> = jps
        .iter()
        .filter(|jp| jp.upstream_neighbor == b())
        .collect();
    let to_d: Vec<_> = jps
        .iter()
        .filter(|jp| jp.upstream_neighbor == d())
        .collect();
    assert_eq!(
        to_b.len(),
        1,
        "one aggregated message per upstream: {jps:?}"
    );
    assert_eq!(to_d.len(), 1);
    let ge_b = &to_b[0].groups[0];
    assert!(ge_b.joins.contains(&SourceEntry::shared_tree(rp())));
    assert!(ge_b.prunes.contains(&SourceEntry::source_on_rp_tree(src())));
    assert_eq!(to_d[0].groups[0].joins, vec![SourceEntry::source(src())]);
}

#[test]
fn refresh_keeps_oifs_alive() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 100,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    for tt in [0u64, 80, 160, 240] {
        e.on_join_prune(t(tt), IfaceId(0), a(), &join, &rib);
        e.tick(t(tt + 40), &rib);
    }
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(star.oifs.contains_key(&IfaceId(0)));
}

// ---------------------------------------------------------------------
// §3.7 — multi-access subnetworks
// ---------------------------------------------------------------------

#[test]
fn dr_election_highest_address_wins() {
    let mut e = Engine::new(b(), 2, PimConfig::default());
    assert!(e.is_dr(IfaceId(0)), "no neighbors: trivially DR");
    e.on_query(
        t(0),
        IfaceId(0),
        Addr::new(10, 0, 99, 1),
        &Query { holdtime: 50 },
    );
    assert!(!e.is_dr(IfaceId(0)));
    e.on_query(
        t(0),
        IfaceId(0),
        Addr::new(10, 0, 1, 1),
        &Query { holdtime: 50 },
    );
    assert!(!e.is_dr(IfaceId(0)), "highest neighbor still wins");
    assert_eq!(e.neighbors_on(IfaceId(0)).len(), 2);
    // Neighbor holdtime lapses: we become DR again.
    e.tick(t(100), &rib_b());
    assert!(e.is_dr(IfaceId(0)));
    assert!(e.neighbors_on(IfaceId(0)).is_empty());
}

#[test]
fn lan_prune_held_for_override_window() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    e.set_lan(IfaceId(0));
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(0), IfaceId(0), a(), &join, &rib);
    let prune = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::prune(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(10), IfaceId(0), a(), &prune, &rib);
    // Within the override window the oif survives.
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(star.oifs.contains_key(&IfaceId(0)));
    // After the window (default 4 ticks) it goes.
    e.tick(t(15), &rib);
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(!star.oifs.contains_key(&IfaceId(0)));
}

#[test]
fn join_within_window_cancels_lan_prune() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    e.set_lan(IfaceId(0));
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(0), IfaceId(0), a(), &join, &rib);
    let prune = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 180,
        groups: vec![GroupEntry::prune(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(10), IfaceId(0), a(), &prune, &rib);
    // Another router overrides with a join before the window closes.
    e.on_join_prune(t(12), IfaceId(0), Addr::new(10, 0, 9, 1), &join, &rib);
    e.tick(t(20), &rib);
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert!(
        star.oifs.contains_key(&IfaceId(0)),
        "overriding join must cancel the pending prune"
    );
}

#[test]
fn overheard_prune_triggers_override_join() {
    // Router X on a LAN: its (*,G) iif is the LAN; it overhears another
    // router's prune addressed to the shared upstream and must object.
    let mut rib = OracleRib::empty(b());
    rib.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(0),
            next_hop: rp(),
            metric: 1,
        },
    );
    let mut e = Engine::new(b(), 2, PimConfig::default());
    e.set_lan(IfaceId(0));
    e.set_host_lan(IfaceId(1));
    e.set_rp_mapping(g(), vec![rp()]);
    e.local_member_joined(t(0), g(), IfaceId(1), &rib);
    // Overheard: peer router prunes (*,G) from the shared upstream rp().
    let prune = JoinPrune {
        upstream_neighbor: rp(),
        holdtime: 180,
        groups: vec![GroupEntry::prune(g(), SourceEntry::shared_tree(rp()))],
    };
    let out = e.on_join_prune(t(5), IfaceId(0), Addr::new(10, 0, 9, 1), &prune, &rib);
    let jps = sent_join_prunes(&out);
    assert_eq!(jps.len(), 1, "must send an overriding join: {out:?}");
    assert_eq!(jps[0].upstream_neighbor, rp());
    assert_eq!(jps[0].groups[0].joins, vec![SourceEntry::shared_tree(rp())]);
}

#[test]
fn overheard_join_suppresses_periodic() {
    let mut rib = OracleRib::empty(b());
    rib.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(0),
            next_hop: rp(),
            metric: 1,
        },
    );
    let mut e = Engine::new(b(), 2, PimConfig::default());
    e.set_lan(IfaceId(0));
    e.set_host_lan(IfaceId(1));
    e.set_rp_mapping(g(), vec![rp()]);
    e.local_member_joined(t(0), g(), IfaceId(1), &rib);
    // A peer's identical join to the same upstream, overheard at t=55.
    let join = JoinPrune {
        upstream_neighbor: rp(),
        holdtime: 180,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(55), IfaceId(0), Addr::new(10, 0, 9, 1), &join, &rib);
    // Our refresh at t=60 is suppressed.
    let out = e.tick(t(60), &rib);
    assert!(
        sent_join_prunes(&out)
            .iter()
            .all(|jp| jp.groups.iter().all(|ge| ge.joins.is_empty())),
        "suppressed join must not be sent: {out:?}"
    );
    // But a later refresh (suppression lapsed) resumes.
    let out = e.tick(t(130), &rib);
    assert!(!sent_join_prunes(&out).is_empty());
}

// ---------------------------------------------------------------------
// §3.2/§3.9 — RP reachability and failover
// ---------------------------------------------------------------------

#[test]
fn rp_generates_reachability_messages() {
    let rib = rib_rp();
    let mut e = Engine::new(rp(), 2, PimConfig::default());
    e.set_rp_mapping(g(), vec![rp()]);
    let join = JoinPrune {
        upstream_neighbor: rp(),
        holdtime: 500,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(1), IfaceId(0), b(), &join, &rib);
    let out = e.tick(t(60), &rib);
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Send { iface, msg: Message::PimRpReachability(r), .. }
                if *iface == IfaceId(0) && r.rp == rp() && r.group == g()
        )),
        "{out:?}"
    );
}

#[test]
fn reachability_resets_timer_and_propagates_down_tree() {
    let (mut e, _rib) = dr_with_member();
    let before = e.group_state(g()).unwrap().star.as_ref().unwrap().rp_timer;
    let msg = RpReachability {
        group: g(),
        rp: rp(),
        holdtime: 180,
    };
    let out = e.on_rp_reachability(t(50), IfaceId(1), &msg);
    let after = e.group_state(g()).unwrap().star.as_ref().unwrap().rp_timer;
    assert!(after > before, "RP-timer must be pushed out");
    // Host-facing oif (iface 0) is skipped, so nothing to propagate here.
    assert!(out.is_empty());
}

#[test]
fn reachability_on_wrong_iface_ignored() {
    let (mut e, rib) = dr_with_member();
    let _ = rib;
    let before = e.group_state(g()).unwrap().star.as_ref().unwrap().rp_timer;
    let msg = RpReachability {
        group: g(),
        rp: rp(),
        holdtime: 180,
    };
    e.on_rp_reachability(t(50), IfaceId(2), &msg);
    let after = e.group_state(g()).unwrap().star.as_ref().unwrap().rp_timer;
    assert_eq!(before, after);
}

#[test]
fn rp_failover_joins_alternate() {
    let rib = rib_a();
    let mut e = Engine::new(a(), 3, PimConfig::default());
    e.set_host_lan(IfaceId(0));
    e.set_rp_mapping(g(), vec![rp(), rp2()]);
    e.local_member_joined(t(0), g(), IfaceId(0), &rib);
    // No reachability messages arrive; the RP-timer (180) lapses.
    let out = e.tick(t(181), &rib);
    let gs = e.group_state(g()).unwrap();
    assert_eq!(gs.rp(), Some(rp2()), "failover to the alternate RP");
    let star = gs.star.as_ref().unwrap();
    assert_eq!(star.key, rp2());
    assert_eq!(
        star.oifs.keys().copied().collect::<Vec<_>>(),
        vec![IfaceId(0)],
        "§3.9: only IGMP-report interfaces survive failover"
    );
    let jps = sent_join_prunes(&out);
    assert!(jps
        .iter()
        .any(|jp| jp.groups[0].joins == vec![SourceEntry::shared_tree(rp2())]));
}

#[test]
fn single_rp_failover_retries_join() {
    let (mut e, rib) = dr_with_member();
    let out = e.tick(t(181), &rib);
    let gs = e.group_state(g()).unwrap();
    assert_eq!(gs.rp(), Some(rp()), "nowhere to fail over to");
    assert!(!sent_join_prunes(&out).is_empty(), "must retry the join");
}

// ---------------------------------------------------------------------
// §3.8 — unicast routing changes
// ---------------------------------------------------------------------

#[test]
fn route_change_moves_star_iif_and_sends_join_prune() {
    let (mut e, _) = dr_with_member();
    // New routing: the RP is now reachable via iface 2 through d().
    let mut rib2 = OracleRib::empty(a());
    rib2.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(2),
            next_hop: d(),
            metric: 9,
        },
    );
    let out = e.on_route_change(t(30), rp(), &rib2);

    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert_eq!(star.iif, Some(IfaceId(2)));
    assert_eq!(star.upstream, Some(d()));

    let jps = sent_join_prunes(&out);
    // Prune out the old interface, join out the new one (§3.8).
    assert!(jps.iter().any(|jp| jp.upstream_neighbor == b()
        && jp.groups[0].prunes == vec![SourceEntry::shared_tree(rp())]));
    assert!(jps.iter().any(|jp| jp.upstream_neighbor == d()
        && jp.groups[0].joins == vec![SourceEntry::shared_tree(rp())]));
}

#[test]
fn route_change_removes_new_iif_from_oifs() {
    let rib = rib_b();
    let mut e = Engine::new(b(), 2, PimConfig::default());
    let join = JoinPrune {
        upstream_neighbor: b(),
        holdtime: 500,
        groups: vec![GroupEntry::join(g(), SourceEntry::shared_tree(rp()))],
    };
    e.on_join_prune(t(0), IfaceId(0), a(), &join, &rib);
    // Routing flips: the RP is now reached through iface 0 — which is in
    // the oif list.
    let mut rib2 = OracleRib::empty(b());
    rib2.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(0),
            next_hop: a(),
            metric: 9,
        },
    );
    e.on_route_change(t(30), rp(), &rib2);
    let star = e.group_state(g()).unwrap().star.as_ref().unwrap();
    assert_eq!(star.iif, Some(IfaceId(0)));
    assert!(
        !star.oifs.contains_key(&IfaceId(0)),
        "§3.8: new iif must be deleted from the oif list"
    );
}

#[test]
fn route_change_for_source_clears_spt_bit() {
    let (mut e, rib) = dr_with_member();
    e.on_data(t(10), IfaceId(1), src(), g(), b"d", &rib);
    e.on_data(t(11), IfaceId(2), src(), g(), b"d", &rib);
    assert!(e.group_state(g()).unwrap().sources[&src()].spt_bit);
    // The source moves behind b().
    let mut rib2 = OracleRib::empty(a());
    rib2.insert(
        rp(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: b(),
            metric: 2,
        },
    );
    rib2.insert(
        src(),
        RouteEntry {
            iface: IfaceId(1),
            next_hop: b(),
            metric: 9,
        },
    );
    e.on_route_change(t(30), src(), &rib2);
    let sg = &e.group_state(g()).unwrap().sources[&src()];
    assert_eq!(sg.iif, Some(IfaceId(1)));
    assert!(!sg.spt_bit, "new path must be re-confirmed by data arrival");
}

#[test]
fn route_change_for_unrelated_destination_is_noop() {
    let (mut e, rib) = dr_with_member();
    let before = format!("{:?}", e.group_state(g()));
    let out = e.on_route_change(t(30), Addr::new(10, 0, 77, 1), &rib);
    assert!(out.is_empty());
    assert_eq!(before, format!("{:?}", e.group_state(g())));
}

// ---------------------------------------------------------------------
// Misc: queries, state counting
// ---------------------------------------------------------------------

#[test]
fn tick_emits_periodic_queries_on_all_ifaces() {
    let (mut e, rib) = dr_with_member();
    let out = e.tick(t(0), &rib);
    let queries: Vec<_> = out
        .iter()
        .filter_map(|o| match o {
            Output::Send {
                iface,
                msg: Message::PimQuery(_),
                ..
            } => Some(*iface),
            _ => None,
        })
        .collect();
    assert_eq!(
        queries,
        vec![IfaceId(0), IfaceId(1), IfaceId(2)],
        "queries on every interface (DR election on member LANs too)"
    );
}

#[test]
fn entry_count_reflects_state() {
    let (mut e, rib) = dr_with_member();
    assert_eq!(e.entry_count(), 1);
    e.on_data(t(10), IfaceId(1), src(), g(), b"d", &rib);
    assert_eq!(e.entry_count(), 2);
}
