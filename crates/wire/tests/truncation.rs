//! Table-driven truncation tests.
//!
//! Every strict prefix of every [`Message`] variant's encoding must come
//! back as a [`DecodeError`] — never a panic, never a silently shortened
//! message. The same holds for [`Header::decap`] over truncated frames.
//! The exemplars deliberately populate every variable-length list so the
//! count-prefixed sections are actually exercised by the prefix sweep.

use wire::ip::{Header, Protocol};
use wire::{cbt, dvmrp, igmp, pim, unicast, Addr, Group, Message};

/// One exemplar per `Message` variant, all lists non-empty.
fn exemplars() -> Vec<Message> {
    let src = pim::SourceEntry {
        addr: Addr::new(10, 0, 0, 9),
        wildcard: false,
        rp_bit: true,
    };
    vec![
        Message::HostQuery(igmp::HostQuery { max_resp_time: 10 }),
        Message::HostReport(igmp::HostReport {
            group: Group::test(1),
        }),
        Message::RpMapping(igmp::RpMapping {
            group: Group::test(1),
            rps: vec![Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)],
        }),
        Message::PimQuery(pim::Query { holdtime: 105 }),
        Message::PimRegister(pim::Register {
            group: Group::test(2),
            source: Addr::new(10, 0, 0, 2),
            payload: vec![1, 2, 3, 4, 5],
        }),
        Message::PimJoinPrune(pim::JoinPrune {
            upstream_neighbor: Addr::new(10, 0, 0, 3),
            holdtime: 210,
            groups: vec![pim::GroupEntry {
                group: Group::test(3),
                joins: vec![src],
                prunes: vec![pim::SourceEntry {
                    addr: Addr::new(10, 0, 0, 8),
                    wildcard: true,
                    rp_bit: false,
                }],
            }],
        }),
        Message::PimRpReachability(pim::RpReachability {
            group: Group::test(3),
            rp: Addr::new(10, 0, 0, 4),
            holdtime: 90,
        }),
        Message::DvmrpProbe(dvmrp::Probe {
            neighbors: vec![Addr::new(10, 0, 1, 1), Addr::new(10, 0, 1, 2)],
        }),
        Message::DvmrpPrune(dvmrp::Prune {
            source: Addr::new(10, 0, 0, 5),
            group: Group::test(4),
            lifetime: 100,
        }),
        Message::DvmrpGraft(dvmrp::Graft {
            source: Addr::new(10, 0, 0, 5),
            group: Group::test(4),
        }),
        Message::DvmrpGraftAck(dvmrp::GraftAck {
            source: Addr::new(10, 0, 0, 5),
            group: Group::test(4),
        }),
        Message::CbtJoinRequest(cbt::JoinRequest {
            group: Group::test(5),
            core: Addr::new(10, 0, 0, 6),
            originator: Addr::new(10, 0, 0, 7),
        }),
        Message::CbtJoinAck(cbt::JoinAck {
            group: Group::test(5),
            core: Addr::new(10, 0, 0, 6),
            originator: Addr::new(10, 0, 0, 7),
        }),
        Message::CbtEcho(cbt::Echo {
            groups: vec![Group::test(6), Group::test(7)],
        }),
        Message::CbtEchoReply(cbt::EchoReply {
            groups: vec![Group::test(6), Group::test(7)],
        }),
        Message::CbtQuit(cbt::Quit {
            group: Group::test(7),
        }),
        Message::CbtFlushTree(cbt::FlushTree {
            group: Group::test(7),
        }),
        Message::DvUpdate(unicast::DvUpdate {
            routes: vec![
                unicast::DvRoute {
                    dst: Addr::new(10, 0, 2, 1),
                    metric: 3,
                },
                unicast::DvRoute {
                    dst: Addr::new(10, 0, 2, 2),
                    metric: unicast::INFINITY_METRIC,
                },
            ],
        }),
        Message::Lsa(unicast::Lsa {
            origin: Addr::new(10, 0, 3, 1),
            seq: 7,
            links: vec![
                unicast::LsaLink {
                    neighbor: Addr::new(10, 0, 3, 2),
                    cost: 1,
                },
                unicast::LsaLink {
                    neighbor: Addr::new(10, 0, 3, 3),
                    cost: 4,
                },
            ],
        }),
        Message::Hello(unicast::Hello { holdtime: 30 }),
    ]
}

#[test]
fn exemplars_cover_every_variant() {
    // Guard against the table rotting when a variant is added: each
    // exemplar must carry a distinct type byte (first encoded octet).
    let msgs = exemplars();
    let mut types: Vec<u8> = msgs.iter().map(|m| m.encode()[0]).collect();
    types.sort_unstable();
    types.dedup();
    assert_eq!(types.len(), msgs.len(), "duplicate variant in exemplars");
    assert_eq!(msgs.len(), 20, "exemplars out of sync with Message enum");
}

#[test]
fn every_strict_prefix_of_every_variant_errors() {
    for m in exemplars() {
        let buf = m.encode();
        assert_eq!(Message::decode(&buf).unwrap(), m, "full decode of {m:?}");
        for k in 0..buf.len() {
            match Message::decode(&buf[..k]) {
                Err(_) => {}
                Ok(got) => panic!("{m:?}: {k}-byte prefix of {} decoded as {got:?}", buf.len()),
            }
        }
    }
}

#[test]
fn every_strict_prefix_of_encapped_frame_fails_decap() {
    for m in exemplars() {
        let h = Header {
            proto: Protocol::Igmp,
            ttl: 32,
            src: Addr::new(10, 9, 0, 1),
            dst: Addr::new(10, 9, 0, 2),
        };
        let frame = h.encap(&m.encode());
        let (h2, payload) = Header::decap(&frame).expect("full decap");
        assert_eq!(h2, h);
        assert_eq!(Message::decode(payload).unwrap(), m);
        for k in 0..frame.len() {
            match Header::decap(&frame[..k]) {
                Err(_) => {}
                Ok(_) => panic!("{m:?}: {k}-byte prefix of encapped frame decapped"),
            }
        }
    }
}

#[test]
fn truncation_errors_carry_stable_kinds() {
    // The taxonomy the telemetry layer keys on: short prefixes are
    // Truncated; once the checksum region is present, corrupt-sum
    // prefixes report Checksum or a length error — all four-kind space,
    // never UnknownType for a known type byte with a valid header.
    let m = Message::CbtEcho(cbt::Echo {
        groups: vec![Group::test(6)],
    });
    let buf = m.encode();
    for k in 0..buf.len() {
        let kind = Message::decode(&buf[..k]).unwrap_err().kind();
        assert!(
            matches!(kind, "truncated" | "checksum" | "bad-length" | "malformed"),
            "prefix {k}: unexpected kind {kind}"
        );
    }
}
