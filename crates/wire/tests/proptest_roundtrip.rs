//! Property tests for the wire formats:
//!
//! * every structurally valid message encode→decode round-trips exactly;
//! * no arbitrary byte soup makes a decoder panic (it must return an error
//!   or a message that re-encodes consistently);
//! * the IP header round-trips under arbitrary payloads.

use proptest::prelude::*;
use wire::ip::{Header, Protocol, HEADER_LEN};
use wire::{cbt, dvmrp, igmp, pim, Addr, Group, Message};

fn arb_unicast() -> impl Strategy<Value = Addr> {
    // Any non-class-D, non-zero address.
    (1u32..0xE000_0000).prop_map(Addr)
}

fn arb_group() -> impl Strategy<Value = Group> {
    (0xE000_0000u32..=0xEFFF_FFFF).prop_map(|v| Group::new(Addr(v)).unwrap())
}

fn arb_source_entry() -> impl Strategy<Value = pim::SourceEntry> {
    (arb_unicast(), any::<bool>(), any::<bool>()).prop_map(|(addr, wildcard, rp_bit)| {
        pim::SourceEntry {
            addr,
            wildcard,
            rp_bit,
        }
    })
}

fn arb_group_entry() -> impl Strategy<Value = pim::GroupEntry> {
    (
        arb_group(),
        prop::collection::vec(arb_source_entry(), 0..8),
        prop::collection::vec(arb_source_entry(), 0..8),
    )
        .prop_map(|(group, joins, prunes)| pim::GroupEntry {
            group,
            joins,
            prunes,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u8>().prop_map(|m| Message::HostQuery(igmp::HostQuery { max_resp_time: m })),
        arb_group().prop_map(|group| Message::HostReport(igmp::HostReport { group })),
        (arb_group(), prop::collection::vec(arb_unicast(), 0..5))
            .prop_map(|(group, rps)| Message::RpMapping(igmp::RpMapping { group, rps })),
        any::<u16>().prop_map(|holdtime| Message::PimQuery(pim::Query { holdtime })),
        (
            arb_group(),
            arb_unicast(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(group, source, payload)| {
                Message::PimRegister(pim::Register {
                    group,
                    source,
                    payload,
                })
            }),
        (
            arb_unicast(),
            any::<u16>(),
            prop::collection::vec(arb_group_entry(), 0..5)
        )
            .prop_map(|(upstream_neighbor, holdtime, groups)| {
                Message::PimJoinPrune(pim::JoinPrune {
                    upstream_neighbor,
                    holdtime,
                    groups,
                })
            }),
        (arb_group(), arb_unicast(), any::<u16>()).prop_map(|(group, rp, holdtime)| {
            Message::PimRpReachability(pim::RpReachability {
                group,
                rp,
                holdtime,
            })
        }),
        prop::collection::vec(arb_unicast(), 0..8)
            .prop_map(|neighbors| Message::DvmrpProbe(dvmrp::Probe { neighbors })),
        (arb_unicast(), arb_group(), any::<u32>()).prop_map(|(source, group, lifetime)| {
            Message::DvmrpPrune(dvmrp::Prune {
                source,
                group,
                lifetime,
            })
        }),
        (arb_unicast(), arb_group())
            .prop_map(|(source, group)| Message::DvmrpGraft(dvmrp::Graft { source, group })),
        (arb_unicast(), arb_group()).prop_map(|(source, group)| {
            Message::DvmrpGraftAck(dvmrp::GraftAck { source, group })
        }),
        (arb_group(), arb_unicast(), arb_unicast()).prop_map(|(group, core, originator)| {
            Message::CbtJoinRequest(cbt::JoinRequest {
                group,
                core,
                originator,
            })
        }),
        (arb_group(), arb_unicast(), arb_unicast()).prop_map(|(group, core, originator)| {
            Message::CbtJoinAck(cbt::JoinAck {
                group,
                core,
                originator,
            })
        }),
        prop::collection::vec(arb_group(), 0..8)
            .prop_map(|groups| Message::CbtEcho(cbt::Echo { groups })),
        prop::collection::vec(arb_group(), 0..8)
            .prop_map(|groups| Message::CbtEchoReply(cbt::EchoReply { groups })),
        arb_group().prop_map(|group| Message::CbtQuit(cbt::Quit { group })),
        arb_group().prop_map(|group| Message::CbtFlushTree(cbt::FlushTree { group })),
    ]
}

proptest! {
    #[test]
    fn message_roundtrip(m in arb_message()) {
        let buf = m.encode();
        let decoded = Message::decode(&buf).expect("decode of own encoding");
        prop_assert_eq!(decoded, m);
    }

    #[test]
    fn message_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever happens, no panic; and anything that decodes must
        // re-encode to a decodable buffer describing the same message.
        if let Ok(m) = Message::decode(&bytes) {
            let re = m.encode();
            prop_assert_eq!(Message::decode(&re).unwrap(), m);
        }
    }

    #[test]
    fn ip_header_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in any::<u8>(),
        data in prop::collection::vec(any::<u8>(), 0..512),
        proto in prop_oneof![Just(Protocol::Igmp), Just(Protocol::Data)],
    ) {
        let h = Header { proto, ttl, src: Addr(src), dst: Addr(dst) };
        let pkt = h.encap(&data);
        prop_assert_eq!(pkt.len(), HEADER_LEN + data.len());
        let (h2, payload) = Header::decap(&pkt).expect("decap of own encap");
        prop_assert_eq!(h2, h);
        prop_assert_eq!(payload, &data[..]);
    }

    #[test]
    fn ip_decap_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Header::decap(&bytes);
    }

    #[test]
    fn single_bitflip_detected(m in arb_message(), flip_bit in 0usize..32) {
        // Flipping any single bit in the first 4 bytes (type + checksum
        // region) must not yield the same message back.
        let mut buf = m.encode();
        let byte = flip_bit / 8;
        if byte < buf.len() {
            buf[byte] ^= 1 << (flip_bit % 8);
            if let Ok(decoded) = Message::decode(&buf) { prop_assert_ne!(decoded, m) }
        }
    }
}
