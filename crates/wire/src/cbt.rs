//! Core Based Tree (CBT) control messages — the paper's §1.3 comparison
//! protocol (Ballardie, Francis & Crowcroft, SIGCOMM '93).
//!
//! CBT builds one bidirectional shared tree per group rooted at a *core*.
//! Its engineering contrast with PIM (paper footnote 4) is that CBT uses
//! **explicit hop-by-hop reliability**: joins are acknowledged ([`JoinAck`])
//! and tree liveness is maintained with child→parent [`Echo`] keepalives,
//! whereas PIM relies purely on periodically refreshed soft state.

use crate::{Addr, DecodeError, Group, Reader, Result, Writer};

/// Join request, forwarded hop-by-hop toward the group's core. Each
/// intermediate router records a transient join state until the ack comes
/// back down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinRequest {
    /// The group being joined.
    pub group: Group,
    /// The core toward which this join travels.
    pub core: Addr,
    /// The router that originated the join (for ack matching / debugging).
    pub originator: Addr,
}

impl JoinRequest {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
        w.addr(self.core);
        w.addr(self.originator);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let group = r.group()?;
        let core = r.addr()?;
        let originator = r.addr()?;
        if core.is_multicast() || originator.is_multicast() {
            return Err(DecodeError::Malformed);
        }
        Ok(JoinRequest {
            group,
            core,
            originator,
        })
    }
}

/// Acknowledgment of a [`JoinRequest`], sent hop-by-hop back toward the
/// originator; receipt turns transient join state into a confirmed
/// child/parent tree edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinAck {
    /// The group joined.
    pub group: Group,
    /// The core of the tree.
    pub core: Addr,
    /// The originator of the join being acknowledged.
    pub originator: Addr,
}

impl JoinAck {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
        w.addr(self.core);
        w.addr(self.originator);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let group = r.group()?;
        let core = r.addr()?;
        let originator = r.addr()?;
        if core.is_multicast() || originator.is_multicast() {
            return Err(DecodeError::Malformed);
        }
        Ok(JoinAck {
            group,
            core,
            originator,
        })
    }
}

/// Child→parent keepalive covering all of the child's groups on that
/// parent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Echo {
    /// Groups for which the sender is a child of the addressed parent.
    pub groups: Vec<Group>,
}

impl Echo {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.groups.len() <= u8::MAX as usize);
        w.u8(self.groups.len() as u8);
        for g in &self.groups {
            w.group(*g);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.u8()? as usize;
        if r.remaining() < n * 4 {
            return Err(DecodeError::BadLength);
        }
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(r.group()?);
        }
        Ok(Echo { groups })
    }
}

/// Parent→child reply to an [`Echo`]; lists the groups the parent still has
/// tree state for. A group missing from the reply has been torn down and
/// the child must rejoin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EchoReply {
    /// Groups still alive on the parent.
    pub groups: Vec<Group>,
}

impl EchoReply {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.groups.len() <= u8::MAX as usize);
        w.u8(self.groups.len() as u8);
        for g in &self.groups {
            w.group(*g);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.u8()? as usize;
        if r.remaining() < n * 4 {
            return Err(DecodeError::BadLength);
        }
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(r.group()?);
        }
        Ok(EchoReply { groups })
    }
}

/// Child→parent notification that the child is leaving the tree for a
/// group (its own members and children are gone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quit {
    /// The group being left.
    pub group: Group,
}

impl Quit {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Quit { group: r.group()? })
    }
}

/// Parent→children teardown of a whole subtree (e.g. the parent lost its
/// own path to the core); children must rejoin toward the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushTree {
    /// The group whose subtree is flushed.
    pub group: Group,
}

impl FlushTree {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        Ok(FlushTree { group: r.group()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn join_roundtrip() {
        let m = Message::CbtJoinRequest(JoinRequest {
            group: Group::test(5),
            core: Addr::new(10, 0, 0, 9),
            originator: Addr::new(10, 2, 0, 1),
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn join_ack_roundtrip() {
        let m = Message::CbtJoinAck(JoinAck {
            group: Group::test(5),
            core: Addr::new(10, 0, 0, 9),
            originator: Addr::new(10, 2, 0, 1),
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn echo_roundtrip() {
        let m = Message::CbtEcho(Echo {
            groups: vec![Group::test(1), Group::test(2)],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        let r = Message::CbtEchoReply(EchoReply {
            groups: vec![Group::test(1)],
        });
        assert_eq!(Message::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn quit_and_flush_roundtrip() {
        let q = Message::CbtQuit(Quit {
            group: Group::test(5),
        });
        assert_eq!(Message::decode(&q.encode()).unwrap(), q);
        let f = Message::CbtFlushTree(FlushTree {
            group: Group::test(5),
        });
        assert_eq!(Message::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn join_rejects_multicast_core() {
        let mut w = Writer::new();
        w.group(Group::test(5));
        w.addr(Addr::new(224, 0, 0, 9));
        w.addr(Addr::new(10, 2, 0, 1));
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(
            JoinRequest::decode_body(&mut r),
            Err(DecodeError::Malformed)
        );
    }

    #[test]
    fn echo_count_overflow_rejected() {
        let mut w = Writer::new();
        w.u8(99);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(Echo::decode_body(&mut r), Err(DecodeError::BadLength));
    }
}
