//! DVMRP-style dense-mode control messages (the paper's §1.1 baseline).
//!
//! Dense mode needs only three control messages beyond the data packets
//! themselves (membership is *assumed*; data is flooded by reverse-path
//! forwarding):
//!
//! * [`Probe`] — neighbor discovery / keepalive, also carrying the set of
//!   neighbors already heard from so both ends learn adjacency is
//!   bidirectional;
//! * [`Prune`] — "send a prune message upstream toward the source of the
//!   data packet" when a router has no members and no downstream receivers;
//!   carries a lifetime after which the pruned branch "grows back" (§1.1);
//! * [`Graft`]/[`GraftAck`] — the standard extension that re-attaches a
//!   pruned branch immediately when a member appears, instead of waiting
//!   for the prune to time out. Grafts are the one *acknowledged* DVMRP
//!   message (a lost graft would otherwise silence a new member until the
//!   next flood).

use crate::{Addr, DecodeError, Group, Reader, Result, Writer};

/// Neighbor discovery / keepalive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Neighbors the sender has already heard probes from on this
    /// interface.
    pub neighbors: Vec<Addr>,
}

impl Probe {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.neighbors.len() <= u8::MAX as usize);
        w.u8(self.neighbors.len() as u8);
        for n in &self.neighbors {
            w.addr(*n);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.u8()? as usize;
        if r.remaining() < n * 4 {
            return Err(DecodeError::BadLength);
        }
        let mut neighbors = Vec::with_capacity(n);
        for _ in 0..n {
            neighbors.push(r.addr()?);
        }
        Ok(Probe { neighbors })
    }
}

/// Prune (source, group) state upstream: "the prune messages prune the tree
/// branches not leading to group members" (§1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prune {
    /// The source whose tree is being pruned.
    pub source: Addr,
    /// The group.
    pub group: Group,
    /// Prune lifetime in time units; after expiry the branch grows back and
    /// flooding resumes ("pruned branches will grow back after a time-out
    /// period").
    pub lifetime: u32,
}

impl Prune {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.addr(self.source);
        w.group(self.group);
        w.u32(self.lifetime);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let source = r.addr()?;
        if source.is_multicast() {
            return Err(DecodeError::Malformed);
        }
        Ok(Prune {
            source,
            group: r.group()?,
            lifetime: r.u32()?,
        })
    }
}

/// Re-attach a previously pruned branch (new member appeared downstream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Graft {
    /// The source whose tree is being re-joined.
    pub source: Addr,
    /// The group.
    pub group: Group,
}

impl Graft {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.addr(self.source);
        w.group(self.group);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let source = r.addr()?;
        if source.is_multicast() {
            return Err(DecodeError::Malformed);
        }
        Ok(Graft {
            source,
            group: r.group()?,
        })
    }
}

/// Hop-by-hop acknowledgment of a [`Graft`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraftAck {
    /// Echoed source from the graft.
    pub source: Addr,
    /// Echoed group from the graft.
    pub group: Group,
}

impl GraftAck {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.addr(self.source);
        w.group(self.group);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let source = r.addr()?;
        if source.is_multicast() {
            return Err(DecodeError::Malformed);
        }
        Ok(GraftAck {
            source,
            group: r.group()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn probe_roundtrip() {
        let m = Message::DvmrpProbe(Probe {
            neighbors: vec![Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn probe_empty_roundtrip() {
        let m = Message::DvmrpProbe(Probe { neighbors: vec![] });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn prune_roundtrip() {
        let m = Message::DvmrpPrune(Prune {
            source: Addr::new(10, 1, 1, 1),
            group: Group::test(9),
            lifetime: 7200,
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn graft_and_ack_roundtrip() {
        let g = Message::DvmrpGraft(Graft {
            source: Addr::new(10, 1, 1, 1),
            group: Group::test(9),
        });
        assert_eq!(Message::decode(&g.encode()).unwrap(), g);
        let a = Message::DvmrpGraftAck(GraftAck {
            source: Addr::new(10, 1, 1, 1),
            group: Group::test(9),
        });
        assert_eq!(Message::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn prune_rejects_multicast_source() {
        let mut w = Writer::new();
        w.addr(Addr::new(225, 0, 0, 1));
        w.group(Group::test(0));
        w.u32(1);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(Prune::decode_body(&mut r), Err(DecodeError::Malformed));
    }

    #[test]
    fn probe_count_overflow_rejected() {
        let mut w = Writer::new();
        w.u8(200); // declares 200 neighbors, provides none
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(Probe::decode_body(&mut r), Err(DecodeError::BadLength));
    }
}
