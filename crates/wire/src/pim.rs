//! PIM sparse-mode control messages, carried as IGMP extensions per the
//! 1994 design (paper §5: "a protocol implementation of PIM using extensions
//! to existing IGMP message types is in progress").
//!
//! Four message kinds:
//!
//! * [`Query`] — the PIM hello sent to `224.0.0.2` for neighbor discovery
//!   and designated-router election (paper §3.7, footnote 14);
//! * [`JoinPrune`] — the workhorse: per-group join and prune lists whose
//!   entries carry the WC (wildcard / shared tree) and RP (toward-the-RP)
//!   flag bits from §3.2/§3.3, addressed to `224.0.0.2` on multi-access
//!   subnetworks with the intended upstream neighbor named in the message so
//!   other routers can overhear and suppress/override (§3.7);
//! * [`Register`] — sender's DR → RP, piggybacking the data packet (§3);
//! * [`RpReachability`] — RP → down the (*,G) tree, resetting RP-timers so
//!   receivers can detect RP failure and move to an alternate RP (§3.2,
//!   §3.9).

use crate::{Addr, DecodeError, Group, Reader, Result, Writer};

/// PIM hello / neighbor-discovery message ("PIM query packets to neighbor
/// routers on the same LAN" — footnote 14). The sender with the highest
/// address on a multi-access subnetwork becomes the designated router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// How long, in time units, neighbors should consider the sender alive.
    pub holdtime: u16,
}

impl Query {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.u16(self.holdtime);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Query { holdtime: r.u16()? })
    }
}

/// One source entry in a join or prune list.
///
/// The address is a source, or the RP when the `wildcard` bit is set. The
/// flag bits are exactly the paper's:
///
/// * **WC** — "the WC bit flags an address as being the RP associated with
///   that shared tree" (§3.2); a join with WC+RP set instantiates (*,G)
///   state upstream.
/// * **RP** — "the RP bit indicates that the receiver expects to receive
///   packets from new sources via this (shared tree) path"; in a *prune*
///   list it requests a negative cache (S,G)RP-bit entry along the shared
///   tree (§3.3, footnote 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SourceEntry {
    /// Source address, or RP address when `wildcard` is set.
    pub addr: Addr,
    /// The WC bit.
    pub wildcard: bool,
    /// The RP bit.
    pub rp_bit: bool,
}

impl SourceEntry {
    /// A plain (S,G) entry: join/prune this specific source's SPT.
    pub fn source(addr: Addr) -> Self {
        SourceEntry {
            addr,
            wildcard: false,
            rp_bit: false,
        }
    }

    /// A shared-tree entry `{RP, RPbit, WCbit}` as in the §3.2 join payload.
    pub fn shared_tree(rp: Addr) -> Self {
        SourceEntry {
            addr: rp,
            wildcard: true,
            rp_bit: true,
        }
    }

    /// A negative-cache prune entry `{S, RPbit}` sent toward the RP when a
    /// receiver has switched to S's shortest-path tree (§3.3).
    pub fn source_on_rp_tree(addr: Addr) -> Self {
        SourceEntry {
            addr,
            wildcard: false,
            rp_bit: true,
        }
    }

    const FLAG_WC: u8 = 0x01;
    const FLAG_RP: u8 = 0x02;

    fn encode(&self, w: &mut Writer) {
        w.addr(self.addr);
        let mut flags = 0;
        if self.wildcard {
            flags |= Self::FLAG_WC;
        }
        if self.rp_bit {
            flags |= Self::FLAG_RP;
        }
        w.u8(flags);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let addr = r.addr()?;
        if addr.is_multicast() {
            return Err(DecodeError::Malformed);
        }
        let flags = r.u8()?;
        if flags & !(Self::FLAG_WC | Self::FLAG_RP) != 0 {
            return Err(DecodeError::Malformed);
        }
        Ok(SourceEntry {
            addr,
            wildcard: flags & Self::FLAG_WC != 0,
            rp_bit: flags & Self::FLAG_RP != 0,
        })
    }
}

/// The joins and prunes for a single group within a [`JoinPrune`] message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupEntry {
    /// The multicast group.
    pub group: Group,
    /// Sources (or the RP, with WC set) being joined.
    pub joins: Vec<SourceEntry>,
    /// Sources (or the RP) being pruned.
    pub prunes: Vec<SourceEntry>,
}

impl GroupEntry {
    /// A join-only entry for one source.
    pub fn join(group: Group, entry: SourceEntry) -> Self {
        GroupEntry {
            group,
            joins: vec![entry],
            prunes: Vec::new(),
        }
    }

    /// A prune-only entry for one source.
    pub fn prune(group: Group, entry: SourceEntry) -> Self {
        GroupEntry {
            group,
            joins: Vec::new(),
            prunes: vec![entry],
        }
    }

    fn encode(&self, w: &mut Writer) {
        assert!(self.joins.len() <= u16::MAX as usize);
        assert!(self.prunes.len() <= u16::MAX as usize);
        w.group(self.group);
        w.u16(self.joins.len() as u16);
        w.u16(self.prunes.len() as u16);
        for e in &self.joins {
            e.encode(w);
        }
        for e in &self.prunes {
            e.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let group = r.group()?;
        let nj = r.u16()? as usize;
        let np = r.u16()? as usize;
        // Each entry is 5 bytes; reject counts that exceed the buffer before
        // allocating.
        if r.remaining() < (nj + np) * 5 {
            return Err(DecodeError::BadLength);
        }
        let mut joins = Vec::with_capacity(nj);
        for _ in 0..nj {
            joins.push(SourceEntry::decode(r)?);
        }
        let mut prunes = Vec::with_capacity(np);
        for _ in 0..np {
            prunes.push(SourceEntry::decode(r)?);
        }
        Ok(GroupEntry {
            group,
            joins,
            prunes,
        })
    }
}

/// A PIM Join/Prune message.
///
/// Sent hop-by-hop toward a source or RP. On point-to-point links it is
/// unicast to the upstream router; on multi-access subnetworks it is sent to
/// `224.0.0.2` "with the IP address of the previous hop in the IGMP header"
/// (§3.7) — that previous-hop address is [`JoinPrune::upstream_neighbor`],
/// and it lets every router on the LAN overhear joins/prunes so it can
/// suppress its own duplicate join or override a prune.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPrune {
    /// The router this message is logically addressed to.
    pub upstream_neighbor: Addr,
    /// How long, in time units, the receiver should keep the resulting
    /// oif state alive without a refresh (soft state, §3.4/§3.6).
    pub holdtime: u16,
    /// Per-group join/prune lists.
    pub groups: Vec<GroupEntry>,
}

impl JoinPrune {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.groups.len() <= u8::MAX as usize, "too many groups");
        w.addr(self.upstream_neighbor);
        w.u16(self.holdtime);
        w.u8(self.groups.len() as u8);
        for g in &self.groups {
            g.encode(w);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let upstream_neighbor = r.addr()?;
        let holdtime = r.u16()?;
        let n = r.u8()? as usize;
        let mut groups = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            groups.push(GroupEntry::decode(r)?);
        }
        Ok(JoinPrune {
            upstream_neighbor,
            holdtime,
            groups,
        })
    }
}

/// A PIM Register: the sender's first-hop DR unicasts the source's data
/// packet to the RP, "piggybacked on the data packet" (§3). The RP
/// de-encapsulates and forwards down the shared tree, and responds by
/// joining toward the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Register {
    /// The group the encapsulated packet is addressed to.
    pub group: Group,
    /// The original source of the encapsulated packet.
    pub source: Addr,
    /// The encapsulated data payload.
    pub payload: Vec<u8>,
}

impl Register {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
        w.addr(self.source);
        w.bytes(&self.payload);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let group = r.group()?;
        let source = r.addr()?;
        if source.is_multicast() || source == Addr::UNSPECIFIED {
            return Err(DecodeError::Malformed);
        }
        Ok(Register {
            group,
            source,
            payload: r.rest().to_vec(),
        })
    }
}

/// RP-reachability message, "generated by RPs periodically and distributed
/// down the (*,G) tree established for the group" (§3.2). Receipt resets the
/// RP-timer in each (*,G) entry; expiry of that timer triggers joining
/// toward an alternate RP (§3.9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpReachability {
    /// The group whose tree this message travels down.
    pub group: Group,
    /// The RP asserting its own reachability.
    pub rp: Addr,
    /// How long, in time units, receivers should consider this RP reachable.
    pub holdtime: u16,
}

impl RpReachability {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
        w.addr(self.rp);
        w.u16(self.holdtime);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let group = r.group()?;
        let rp = r.addr()?;
        if rp.is_multicast() || rp == Addr::UNSPECIFIED {
            return Err(DecodeError::Malformed);
        }
        Ok(RpReachability {
            group,
            rp,
            holdtime: r.u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    fn rp() -> Addr {
        Addr::new(10, 0, 0, 3)
    }

    #[test]
    fn query_roundtrip() {
        let m = Message::PimQuery(Query { holdtime: 105 });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn join_prune_roundtrip_shared_tree() {
        // The exact §3.2 payload: Multicast-address=G,
        // PIM-join={RP,RPbit,WCbit}, PIM-prune=NULL.
        let m = Message::PimJoinPrune(JoinPrune {
            upstream_neighbor: Addr::new(10, 0, 0, 2),
            holdtime: 210,
            groups: vec![GroupEntry::join(
                Group::test(7),
                SourceEntry::shared_tree(rp()),
            )],
        });
        let decoded = Message::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        if let Message::PimJoinPrune(jp) = decoded {
            assert!(jp.groups[0].joins[0].wildcard);
            assert!(jp.groups[0].joins[0].rp_bit);
            assert!(jp.groups[0].prunes.is_empty());
        }
    }

    #[test]
    fn join_prune_roundtrip_spt_switch() {
        // §3.3: join toward Sn plus the later prune {Sn, RPbit} toward RP.
        let sn = Addr::new(10, 0, 0, 77);
        let m = Message::PimJoinPrune(JoinPrune {
            upstream_neighbor: Addr::new(10, 0, 0, 2),
            holdtime: 210,
            groups: vec![GroupEntry {
                group: Group::test(7),
                joins: vec![SourceEntry::source(sn)],
                prunes: vec![SourceEntry::source_on_rp_tree(sn)],
            }],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn join_prune_many_groups() {
        let groups: Vec<GroupEntry> = (0..20)
            .map(|i| GroupEntry {
                group: Group::test(i),
                joins: (0..5)
                    .map(|j| SourceEntry::source(Addr(0x0A00_0000 + j)))
                    .collect(),
                prunes: (0..3)
                    .map(|j| SourceEntry::source_on_rp_tree(Addr(0x0A00_0100 + j)))
                    .collect(),
            })
            .collect();
        let m = Message::PimJoinPrune(JoinPrune {
            upstream_neighbor: Addr::new(10, 9, 9, 9),
            holdtime: 1,
            groups,
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn join_prune_entry_count_overflow_rejected() {
        // Declare 1000 joins but supply none: must fail Truncated, not OOM
        // or panic.
        let mut w = Writer::new();
        w.addr(Addr::new(10, 0, 0, 2));
        w.u16(210);
        w.u8(1);
        w.group(Group::test(0));
        w.u16(1000);
        w.u16(0);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(JoinPrune::decode_body(&mut r), Err(DecodeError::BadLength));
    }

    #[test]
    fn source_entry_rejects_unknown_flags() {
        let mut w = Writer::new();
        w.addr(Addr::new(10, 0, 0, 1));
        w.u8(0x80);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(SourceEntry::decode(&mut r), Err(DecodeError::Malformed));
    }

    #[test]
    fn source_entry_rejects_multicast_source() {
        let mut w = Writer::new();
        w.addr(Addr::new(230, 0, 0, 1));
        w.u8(0);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(SourceEntry::decode(&mut r), Err(DecodeError::Malformed));
    }

    #[test]
    fn register_roundtrip() {
        let m = Message::PimRegister(Register {
            group: Group::test(3),
            source: Addr::new(10, 1, 0, 4),
            payload: b"data packet body".to_vec(),
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn register_empty_payload_roundtrip() {
        let m = Message::PimRegister(Register {
            group: Group::test(3),
            source: Addr::new(10, 1, 0, 4),
            payload: Vec::new(),
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rp_reachability_roundtrip() {
        let m = Message::PimRpReachability(RpReachability {
            group: Group::test(3),
            rp: rp(),
            holdtime: 300,
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }
}
