//! IGMP host-membership messages (RFC 1112 flavor) plus the PIM paper's
//! proposed host→router RP-mapping message.
//!
//! The paper (§3.1, footnote 9) requires *some* mechanism for hosts or
//! configuration to provide routers the G → RP(s) mapping, and proposes "a
//! new host message that would allow hosts to inform their
//! directly-connected PIM-speaking routers of G, RP(s) mappings". That
//! message is [`RpMapping`].

use crate::{Addr, DecodeError, Group, Reader, Result, Writer};

/// IGMP membership query, sent by the elected querier to `224.0.0.1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostQuery {
    /// Maximum response time in time units; hosts pick a random delay below
    /// this before reporting, for report suppression.
    pub max_resp_time: u8,
}

impl HostQuery {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.u8(self.max_resp_time);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        Ok(HostQuery {
            max_resp_time: r.u8()?,
        })
    }
}

/// IGMP membership report: "a member of `group` is present here".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostReport {
    /// The group being reported.
    pub group: Group,
}

impl HostReport {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.group(self.group);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        Ok(HostReport { group: r.group()? })
    }
}

/// Host→router advertisement of the rendezvous points for a group.
///
/// "We propose the use of a new host message that would allow hosts to
/// inform their directly-connected PIM-speaking routers of G, RP(s)
/// mappings" — paper §3.1 footnote 9. A group with at least one RP mapping
/// is, by definition, a sparse-mode group (§3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpMapping {
    /// The group the mapping applies to.
    pub group: Group,
    /// The rendezvous points, in preference order. Senders register to all
    /// of them; receivers join toward the first reachable one (§3.9).
    pub rps: Vec<Addr>,
}

impl RpMapping {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.rps.len() <= u8::MAX as usize, "too many RPs");
        w.group(self.group);
        w.u8(self.rps.len() as u8);
        for rp in &self.rps {
            w.addr(*rp);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let group = r.group()?;
        let n = r.u8()? as usize;
        if r.remaining() < n * 4 {
            return Err(DecodeError::BadLength);
        }
        let mut rps = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let rp = r.addr()?;
            if rp.is_multicast() || rp == Addr::UNSPECIFIED {
                return Err(DecodeError::Malformed);
            }
            rps.push(rp);
        }
        Ok(RpMapping { group, rps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn query_roundtrip() {
        let m = Message::HostQuery(HostQuery { max_resp_time: 100 });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn report_roundtrip() {
        let m = Message::HostReport(HostReport {
            group: Group::test(42),
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rp_mapping_roundtrip() {
        let m = Message::RpMapping(RpMapping {
            group: Group::test(1),
            rps: vec![Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 9)],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rp_mapping_empty_rps_roundtrip() {
        let m = Message::RpMapping(RpMapping {
            group: Group::test(1),
            rps: vec![],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rp_mapping_rejects_multicast_rp() {
        let mut w = Writer::new();
        w.group(Group::test(1));
        w.u8(1);
        w.addr(Addr::new(224, 0, 0, 5)); // multicast RP address is invalid
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(RpMapping::decode_body(&mut r), Err(DecodeError::Malformed));
    }

    #[test]
    fn report_rejects_unicast_group() {
        let mut w = Writer::new();
        w.addr(Addr::new(10, 0, 0, 1));
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(HostReport::decode_body(&mut r), Err(DecodeError::Malformed));
    }
}
