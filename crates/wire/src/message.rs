//! Framing for the IGMP message family.
//!
//! Every control message in this reproduction — host IGMP, PIM, DVMRP and
//! CBT — travels as an "IGMP-family" payload (the 1994 PIM design extended
//! IGMP with new message types). The common frame is:
//!
//! ```text
//! +--------+--------+-----------------+
//! |  type  |reserved|    checksum     |
//! +--------+--------+-----------------+
//! |        type-specific body ...     |
//! ```
//!
//! The checksum covers the whole message (with the checksum field zeroed),
//! per RFC 1071.

use crate::{cbt, checksum, dvmrp, igmp, pim, unicast, DecodeError, Reader, Result, Writer};

/// Every message that can appear in an IGMP-family payload.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the per-protocol structs they wrap
pub enum Message {
    HostQuery(igmp::HostQuery),
    HostReport(igmp::HostReport),
    RpMapping(igmp::RpMapping),
    PimQuery(pim::Query),
    PimRegister(pim::Register),
    PimJoinPrune(pim::JoinPrune),
    PimRpReachability(pim::RpReachability),
    DvmrpProbe(dvmrp::Probe),
    DvmrpPrune(dvmrp::Prune),
    DvmrpGraft(dvmrp::Graft),
    DvmrpGraftAck(dvmrp::GraftAck),
    CbtJoinRequest(cbt::JoinRequest),
    CbtJoinAck(cbt::JoinAck),
    CbtEcho(cbt::Echo),
    CbtEchoReply(cbt::EchoReply),
    CbtQuit(cbt::Quit),
    CbtFlushTree(cbt::FlushTree),
    DvUpdate(unicast::DvUpdate),
    Lsa(unicast::Lsa),
    Hello(unicast::Hello),
}

// Type octets. 0x11/0x12 match real IGMPv1 query/report; the rest occupy
// the extension space the paper anticipated.
const T_HOST_QUERY: u8 = 0x11;
const T_HOST_REPORT: u8 = 0x12;
const T_RP_MAPPING: u8 = 0x13;
const T_PIM_QUERY: u8 = 0x20;
const T_PIM_REGISTER: u8 = 0x21;
const T_PIM_JOIN_PRUNE: u8 = 0x22;
const T_PIM_RP_REACH: u8 = 0x23;
const T_DVMRP_PROBE: u8 = 0x30;
const T_DVMRP_PRUNE: u8 = 0x31;
const T_DVMRP_GRAFT: u8 = 0x32;
const T_DVMRP_GRAFT_ACK: u8 = 0x33;
const T_CBT_JOIN: u8 = 0x40;
const T_CBT_JOIN_ACK: u8 = 0x41;
const T_CBT_ECHO: u8 = 0x42;
const T_CBT_ECHO_REPLY: u8 = 0x43;
const T_CBT_QUIT: u8 = 0x44;
const T_CBT_FLUSH: u8 = 0x45;
const T_DV_UPDATE: u8 = 0x50;
const T_LSA: u8 = 0x51;
const T_HELLO: u8 = 0x52;

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::HostQuery(_) => T_HOST_QUERY,
            Message::HostReport(_) => T_HOST_REPORT,
            Message::RpMapping(_) => T_RP_MAPPING,
            Message::PimQuery(_) => T_PIM_QUERY,
            Message::PimRegister(_) => T_PIM_REGISTER,
            Message::PimJoinPrune(_) => T_PIM_JOIN_PRUNE,
            Message::PimRpReachability(_) => T_PIM_RP_REACH,
            Message::DvmrpProbe(_) => T_DVMRP_PROBE,
            Message::DvmrpPrune(_) => T_DVMRP_PRUNE,
            Message::DvmrpGraft(_) => T_DVMRP_GRAFT,
            Message::DvmrpGraftAck(_) => T_DVMRP_GRAFT_ACK,
            Message::CbtJoinRequest(_) => T_CBT_JOIN,
            Message::CbtJoinAck(_) => T_CBT_JOIN_ACK,
            Message::CbtEcho(_) => T_CBT_ECHO,
            Message::CbtEchoReply(_) => T_CBT_ECHO_REPLY,
            Message::CbtQuit(_) => T_CBT_QUIT,
            Message::CbtFlushTree(_) => T_CBT_FLUSH,
            Message::DvUpdate(_) => T_DV_UPDATE,
            Message::Lsa(_) => T_LSA,
            Message::Hello(_) => T_HELLO,
        }
    }

    /// Serialize this message, including the frame header and checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.type_byte());
        w.u8(0); // reserved
        w.u16(0); // checksum placeholder
        match self {
            Message::HostQuery(m) => m.encode_body(&mut w),
            Message::HostReport(m) => m.encode_body(&mut w),
            Message::RpMapping(m) => m.encode_body(&mut w),
            Message::PimQuery(m) => m.encode_body(&mut w),
            Message::PimRegister(m) => m.encode_body(&mut w),
            Message::PimJoinPrune(m) => m.encode_body(&mut w),
            Message::PimRpReachability(m) => m.encode_body(&mut w),
            Message::DvmrpProbe(m) => m.encode_body(&mut w),
            Message::DvmrpPrune(m) => m.encode_body(&mut w),
            Message::DvmrpGraft(m) => m.encode_body(&mut w),
            Message::DvmrpGraftAck(m) => m.encode_body(&mut w),
            Message::CbtJoinRequest(m) => m.encode_body(&mut w),
            Message::CbtJoinAck(m) => m.encode_body(&mut w),
            Message::CbtEcho(m) => m.encode_body(&mut w),
            Message::CbtEchoReply(m) => m.encode_body(&mut w),
            Message::CbtQuit(m) => m.encode_body(&mut w),
            Message::CbtFlushTree(m) => m.encode_body(&mut w),
            Message::DvUpdate(m) => m.encode_body(&mut w),
            Message::Lsa(m) => m.encode_body(&mut w),
            Message::Hello(m) => m.encode_body(&mut w),
        }
        let mut buf = w.finish();
        checksum::fill(&mut buf, 2);
        buf
    }

    /// Parse a framed message, verifying its checksum.
    pub fn decode(buf: &[u8]) -> Result<Message> {
        if buf.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        if !checksum::verify(buf) {
            return Err(DecodeError::Checksum);
        }
        let mut r = Reader::new(buf);
        let ty = r.u8()?;
        let _reserved = r.u8()?;
        let _cksum = r.u16()?;
        let msg = match ty {
            T_HOST_QUERY => Message::HostQuery(igmp::HostQuery::decode_body(&mut r)?),
            T_HOST_REPORT => Message::HostReport(igmp::HostReport::decode_body(&mut r)?),
            T_RP_MAPPING => Message::RpMapping(igmp::RpMapping::decode_body(&mut r)?),
            T_PIM_QUERY => Message::PimQuery(pim::Query::decode_body(&mut r)?),
            T_PIM_REGISTER => Message::PimRegister(pim::Register::decode_body(&mut r)?),
            T_PIM_JOIN_PRUNE => Message::PimJoinPrune(pim::JoinPrune::decode_body(&mut r)?),
            T_PIM_RP_REACH => Message::PimRpReachability(pim::RpReachability::decode_body(&mut r)?),
            T_DVMRP_PROBE => Message::DvmrpProbe(dvmrp::Probe::decode_body(&mut r)?),
            T_DVMRP_PRUNE => Message::DvmrpPrune(dvmrp::Prune::decode_body(&mut r)?),
            T_DVMRP_GRAFT => Message::DvmrpGraft(dvmrp::Graft::decode_body(&mut r)?),
            T_DVMRP_GRAFT_ACK => Message::DvmrpGraftAck(dvmrp::GraftAck::decode_body(&mut r)?),
            T_CBT_JOIN => Message::CbtJoinRequest(cbt::JoinRequest::decode_body(&mut r)?),
            T_CBT_JOIN_ACK => Message::CbtJoinAck(cbt::JoinAck::decode_body(&mut r)?),
            T_CBT_ECHO => Message::CbtEcho(cbt::Echo::decode_body(&mut r)?),
            T_CBT_ECHO_REPLY => Message::CbtEchoReply(cbt::EchoReply::decode_body(&mut r)?),
            T_CBT_QUIT => Message::CbtQuit(cbt::Quit::decode_body(&mut r)?),
            T_CBT_FLUSH => Message::CbtFlushTree(cbt::FlushTree::decode_body(&mut r)?),
            T_DV_UPDATE => Message::DvUpdate(unicast::DvUpdate::decode_body(&mut r)?),
            T_LSA => Message::Lsa(unicast::Lsa::decode_body(&mut r)?),
            T_HELLO => Message::Hello(unicast::Hello::decode_body(&mut r)?),
            other => return Err(DecodeError::UnknownType(other)),
        };
        // Registers deliberately consume the rest of the buffer (their
        // payload is the remainder); everything else must end exactly.
        if r.remaining() != 0 {
            return Err(DecodeError::BadLength);
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, Group};

    #[test]
    fn corrupted_checksum_rejected() {
        let m = Message::HostReport(igmp::HostReport {
            group: Group::test(0),
        });
        let mut buf = m.encode();
        buf[5] ^= 0x01;
        assert_eq!(Message::decode(&buf), Err(DecodeError::Checksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = vec![0x77, 0, 0, 0];
        checksum::fill(&mut buf, 2);
        assert_eq!(Message::decode(&buf), Err(DecodeError::UnknownType(0x77)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let m = Message::PimQuery(pim::Query { holdtime: 1 });
        let mut buf = m.encode();
        // Append trailing bytes and re-checksum so only the length is wrong.
        buf.extend_from_slice(&[0, 0]);
        buf[2] = 0;
        buf[3] = 0;
        checksum::fill(&mut buf, 2);
        assert_eq!(Message::decode(&buf), Err(DecodeError::BadLength));
    }

    #[test]
    fn tiny_buffers_rejected() {
        assert_eq!(Message::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Message::decode(&[0x11]), Err(DecodeError::Truncated));
        assert_eq!(Message::decode(&[0x11, 0, 0]), Err(DecodeError::Truncated));
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            Message::HostQuery(igmp::HostQuery { max_resp_time: 10 }),
            Message::HostReport(igmp::HostReport {
                group: Group::test(1),
            }),
            Message::RpMapping(igmp::RpMapping {
                group: Group::test(1),
                rps: vec![Addr::new(10, 0, 0, 1)],
            }),
            Message::PimQuery(pim::Query { holdtime: 105 }),
            Message::PimRegister(pim::Register {
                group: Group::test(2),
                source: Addr::new(10, 0, 0, 2),
                payload: vec![1, 2, 3],
            }),
            Message::PimJoinPrune(pim::JoinPrune {
                upstream_neighbor: Addr::new(10, 0, 0, 3),
                holdtime: 210,
                groups: vec![],
            }),
            Message::PimRpReachability(pim::RpReachability {
                group: Group::test(3),
                rp: Addr::new(10, 0, 0, 4),
                holdtime: 90,
            }),
            Message::DvmrpProbe(dvmrp::Probe { neighbors: vec![] }),
            Message::DvmrpPrune(dvmrp::Prune {
                source: Addr::new(10, 0, 0, 5),
                group: Group::test(4),
                lifetime: 100,
            }),
            Message::DvmrpGraft(dvmrp::Graft {
                source: Addr::new(10, 0, 0, 5),
                group: Group::test(4),
            }),
            Message::DvmrpGraftAck(dvmrp::GraftAck {
                source: Addr::new(10, 0, 0, 5),
                group: Group::test(4),
            }),
            Message::CbtJoinRequest(cbt::JoinRequest {
                group: Group::test(5),
                core: Addr::new(10, 0, 0, 6),
                originator: Addr::new(10, 0, 0, 7),
            }),
            Message::CbtJoinAck(cbt::JoinAck {
                group: Group::test(5),
                core: Addr::new(10, 0, 0, 6),
                originator: Addr::new(10, 0, 0, 7),
            }),
            Message::CbtEcho(cbt::Echo {
                groups: vec![Group::test(6)],
            }),
            Message::CbtEchoReply(cbt::EchoReply {
                groups: vec![Group::test(6)],
            }),
            Message::CbtQuit(cbt::Quit {
                group: Group::test(7),
            }),
            Message::CbtFlushTree(cbt::FlushTree {
                group: Group::test(7),
            }),
        ];
        for m in msgs {
            let buf = m.encode();
            assert!(checksum::verify(&buf), "{m:?}");
            assert_eq!(Message::decode(&buf).unwrap(), m);
        }
    }
}
