//! A compact IPv4-style network-layer header.
//!
//! The simulator serializes every packet crossing a link as
//! `header || payload`. The header is a fixed 16 bytes:
//!
//! ```text
//!  0       1       2       3
//! +-------+-------+-------+-------+
//! | ver=1 | proto |  ttl  | flags |
//! +-------+-------+-------+-------+
//! |        source address         |
//! +-------------------------------+
//! |      destination address      |
//! +-------------------------------+
//! |  total length |   checksum    |
//! +-------------------------------+
//! ```
//!
//! `total length` covers header + payload, so trailing garbage after a
//! well-formed packet is detected. The checksum covers the header only
//! (like real IPv4); IGMP-family payloads carry their own checksum.

use crate::{checksum, Addr, DecodeError, Result};

/// Protocol numbers carried in the header's `proto` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// IGMP family — host membership plus PIM/DVMRP/CBT control messages
    /// (the 1994 PIM design carried PIM messages as IGMP extensions).
    Igmp,
    /// Application multicast/unicast data.
    Data,
}

impl Protocol {
    fn to_byte(self) -> u8 {
        match self {
            Protocol::Igmp => 2,
            Protocol::Data => 17,
        }
    }

    fn from_byte(b: u8) -> Result<Protocol> {
        match b {
            2 => Ok(Protocol::Igmp),
            17 => Ok(Protocol::Data),
            other => Err(DecodeError::UnknownType(other)),
        }
    }
}

/// The fixed network-layer header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Payload protocol.
    pub proto: Protocol,
    /// Time-to-live; routers decrement on forward and drop at zero. The
    /// paper's incoming-interface check (footnote 4.2) is the primary loop
    /// defense, TTL is the backstop.
    pub ttl: u8,
    /// Source address (a router or host unicast address).
    pub src: Addr,
    /// Destination address (unicast, or a class-D group for multicast).
    pub dst: Addr,
}

/// Fixed encoded size of [`Header`].
pub const HEADER_LEN: usize = 16;

/// Current header version.
const VERSION: u8 = 1;

impl Header {
    /// Encode this header followed by `payload` into a full packet buffer.
    pub fn encap(&self, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        assert!(total <= u16::MAX as usize, "packet too large");
        let mut buf = Vec::with_capacity(total);
        buf.push(VERSION);
        buf.push(self.proto.to_byte());
        buf.push(self.ttl);
        buf.push(0); // flags, reserved
        buf.extend_from_slice(&self.src.to_bytes());
        buf.extend_from_slice(&self.dst.to_bytes());
        buf.extend_from_slice(&(total as u16).to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        checksum::fill(&mut buf[..HEADER_LEN], 14);
        buf.extend_from_slice(payload);
        buf
    }

    /// Decode a packet buffer into its header and payload slice.
    ///
    /// Verifies the version, the header checksum, and that the declared
    /// total length matches the buffer.
    pub fn decap(buf: &[u8]) -> Result<(Header, &[u8])> {
        if buf.len() < HEADER_LEN {
            return Err(DecodeError::Truncated);
        }
        if buf[0] != VERSION {
            return Err(DecodeError::Version(buf[0]));
        }
        if !checksum::verify(&buf[..HEADER_LEN]) {
            return Err(DecodeError::Checksum);
        }
        let proto = Protocol::from_byte(buf[1])?;
        let ttl = buf[2];
        let src = Addr::from_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let dst = Addr::from_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let total = u16::from_be_bytes([buf[12], buf[13]]) as usize;
        if total != buf.len() || total < HEADER_LEN {
            return Err(DecodeError::BadLength);
        }
        Ok((
            Header {
                proto,
                ttl,
                src,
                dst,
            },
            &buf[HEADER_LEN..],
        ))
    }

    /// Return a copy with the TTL decremented, or `None` if the TTL is
    /// exhausted (the packet must be dropped, not forwarded).
    pub fn decrement_ttl(&self) -> Option<Header> {
        if self.ttl <= 1 {
            return None;
        }
        Some(Header {
            ttl: self.ttl - 1,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            proto: Protocol::Data,
            ttl: 64,
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::new(239, 1, 0, 0),
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let pkt = h.encap(b"hello group");
        let (h2, payload) = Header::decap(&pkt).unwrap();
        assert_eq!(h, h2);
        assert_eq!(payload, b"hello group");
    }

    #[test]
    fn roundtrip_empty_payload() {
        let h = sample();
        let pkt = h.encap(&[]);
        assert_eq!(pkt.len(), HEADER_LEN);
        let (h2, payload) = Header::decap(&pkt).unwrap();
        assert_eq!(h, h2);
        assert!(payload.is_empty());
    }

    #[test]
    fn truncated_rejected() {
        let pkt = sample().encap(b"x");
        assert_eq!(
            Header::decap(&pkt[..HEADER_LEN - 1]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut pkt = sample().encap(b"abc");
        pkt.push(0); // trailing garbage
        assert_eq!(Header::decap(&pkt), Err(DecodeError::BadLength));
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut pkt = sample().encap(b"abc");
        pkt[5] ^= 0xFF; // flip a source-address byte
        assert_eq!(Header::decap(&pkt), Err(DecodeError::Checksum));
    }

    #[test]
    fn bad_version_rejected() {
        let mut pkt = sample().encap(&[]);
        pkt[0] = 9;
        assert_eq!(Header::decap(&pkt), Err(DecodeError::Version(9)));
    }

    #[test]
    fn unknown_protocol_rejected() {
        let mut pkt = sample().encap(&[]);
        pkt[1] = 99;
        // Re-fill the checksum so only the protocol is wrong.
        pkt[14] = 0;
        pkt[15] = 0;
        crate::checksum::fill(&mut pkt[..HEADER_LEN], 14);
        assert_eq!(Header::decap(&pkt), Err(DecodeError::UnknownType(99)));
    }

    #[test]
    fn ttl_decrement() {
        let h = sample();
        assert_eq!(h.decrement_ttl().unwrap().ttl, 63);
        let dying = Header { ttl: 1, ..h };
        assert!(dying.decrement_ttl().is_none());
        let dead = Header { ttl: 0, ..h };
        assert!(dead.decrement_ttl().is_none());
    }
}
