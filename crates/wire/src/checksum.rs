//! The internet checksum (RFC 1071), used by the IP-style header and by
//! every IGMP-family message in this reproduction.

/// Compute the 16-bit one's-complement internet checksum of `data`.
///
/// A trailing odd byte is padded with zero, per RFC 1071.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verify a buffer whose checksum field is already filled in: the checksum
/// of the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Fill in the 2-byte checksum field at `offset` in `buf`, which must
/// currently be zero.
///
/// # Panics
/// Panics if `offset + 2 > buf.len()` — checksum offsets are fixed by this
/// crate's own encoders, never attacker-controlled.
pub fn fill(buf: &mut [u8], offset: usize) {
    debug_assert_eq!(
        &buf[offset..offset + 2],
        &[0, 0],
        "checksum field not zeroed"
    );
    let sum = checksum(buf);
    buf[offset..offset + 2].copy_from_slice(&sum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_buffer() {
        assert_eq!(checksum(&[0u8; 8]), 0xFFFF);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(checksum(&[0xFF]), checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn fill_then_verify() {
        let mut buf = vec![0x12, 0x34, 0x00, 0x00, 0xAB, 0xCD, 0x01];
        fill(&mut buf, 2);
        assert!(verify(&buf));
        // Corrupt a byte; verification must fail.
        buf[0] ^= 0x40;
        assert!(!verify(&buf));
    }

    #[test]
    fn fill_verify_empty_payload() {
        let mut buf = vec![0x00, 0x00];
        fill(&mut buf, 0);
        assert!(verify(&buf));
    }
}
