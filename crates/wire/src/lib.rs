//! Byte-level packet formats for the PIM reproduction.
//!
//! The 1994 PIM architecture paper says (§5) that "a protocol implementation
//! of PIM using extensions to existing IGMP message types is in progress" —
//! i.e. the original PIM messages were carried as new IGMP message types
//! inside IP. This crate reproduces that layering:
//!
//! * [`ip`] — a compact IPv4-style network header ([`ip::Header`]) carrying a
//!   protocol number, TTL, source and destination [`Addr`];
//! * [`igmp`] — classic IGMP host-membership messages (RFC 1112) plus the
//!   paper's proposed host→router *RP-mapping* message;
//! * [`pim`] — PIM Query (hello), Join/Prune (with per-entry WC/RP/SPT flag
//!   bits), Register, and RP-Reachability messages;
//! * [`dvmrp`] — the dense-mode baseline's Probe/Prune/Graft/GraftAck;
//! * [`cbt`] — the Core Based Tree baseline's Join/JoinAck/Echo/Quit/Flush
//!   (explicitly acknowledged, in contrast to PIM's soft state).
//!
//! Everything here follows the smoltcp house rules for wire code: no
//! `unsafe`, no panics on untrusted input (decoding returns
//! `Result<_, `[`DecodeError`]`>`), explicit network byte order, and an internet
//! checksum over every message. Encode→decode round-trips are covered by
//! unit tests and property tests.

#![warn(missing_docs)]

pub mod cbt;
pub mod checksum;
pub mod dvmrp;
pub mod igmp;
pub mod ip;
pub mod message;
pub mod pim;
pub mod unicast;

pub use message::Message;

use std::fmt;

/// A 32-bit network address, printed in IPv4 dotted-quad notation.
///
/// Unicast router/host addresses live outside the class-D block; multicast
/// group addresses live inside it (`224.0.0.0/4`), exactly as in IPv4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

impl Addr {
    /// The unspecified address, `0.0.0.0`.
    pub const UNSPECIFIED: Addr = Addr(0);
    /// `224.0.0.2` — all PIM-speaking routers on this subnetwork. Used for
    /// LAN join/prune override and PIM Query messages (paper §3.7,
    /// footnote 14).
    pub const ALL_PIM_ROUTERS: Addr = Addr(0xE000_0002);
    /// `224.0.0.1` — all multicast hosts on this subnetwork (IGMP queries).
    pub const ALL_HOSTS: Addr = Addr(0xE000_0001);
    /// `224.0.0.5` — all routers on this subnetwork (unicast routing
    /// protocol hellos, updates and LSAs).
    pub const ALL_ROUTERS: Addr = Addr(0xE000_0005);

    /// Construct from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// True for class-D (multicast group) addresses: `224.0.0.0/4`.
    #[inline]
    pub fn is_multicast(self) -> bool {
        self.0 & 0xF000_0000 == 0xE000_0000
    }

    /// True for link-local multicast (`224.0.0.0/24`), which routers never
    /// forward off the local subnetwork.
    #[inline]
    pub fn is_link_local_multicast(self) -> bool {
        self.0 & 0xFFFF_FF00 == 0xE000_0000
    }

    /// Encode into 4 big-endian bytes.
    #[inline]
    pub fn to_bytes(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Decode from 4 big-endian bytes.
    #[inline]
    pub fn from_bytes(b: [u8; 4]) -> Addr {
        Addr(u32::from_be_bytes(b))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.to_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A multicast group address — an [`Addr`] guaranteed to be class-D.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Group(Addr);

impl Group {
    /// Wrap a class-D address as a group; `None` otherwise.
    pub fn new(addr: Addr) -> Option<Group> {
        addr.is_multicast().then_some(Group(addr))
    }

    /// The `i`-th routable test group, `239.1.x.y`. Panics if `i` would
    /// overflow the block.
    pub fn test(i: u32) -> Group {
        assert!(i < 0x10000, "test group index out of range");
        Group(Addr(0xEF01_0000 | i))
    }

    /// The underlying class-D address.
    #[inline]
    pub fn addr(self) -> Addr {
        self.0
    }
}

impl fmt::Debug for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Decode-failure taxonomy. Encoding is infallible; decoding of untrusted
/// bytes is not, and every way it can fail is classified so receive paths
/// can account for *why* a frame was dropped (the adversarial-channel
/// experiments break drops down by kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before a fixed-size field it must contain.
    Truncated,
    /// A checksum did not verify.
    Checksum,
    /// An unknown message-type octet.
    UnknownType(u8),
    /// A version field had an unsupported value.
    Version(u8),
    /// A declared length or entry-count field disagrees with the actual
    /// buffer: trailing bytes after a complete message, an IP total length
    /// that is not the buffer length, or an entry count whose entries
    /// cannot fit in the bytes that follow.
    BadLength,
    /// A field held a value that is structurally invalid (e.g. a non-class-D
    /// group address where a group is required).
    Malformed,
}

impl DecodeError {
    /// Stable lower-case label for telemetry and drop accounting.
    pub fn kind(self) -> &'static str {
        match self {
            DecodeError::Truncated => "truncated",
            DecodeError::Checksum => "checksum",
            DecodeError::UnknownType(_) => "unknown-type",
            DecodeError::Version(_) => "version",
            DecodeError::BadLength => "bad-length",
            DecodeError::Malformed => "malformed",
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::Checksum => write!(f, "checksum mismatch"),
            DecodeError::UnknownType(t) => write!(f, "unknown message type {t:#04x}"),
            DecodeError::Version(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadLength => write!(f, "length field disagrees with buffer"),
            DecodeError::Malformed => write!(f, "structurally invalid field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Shorthand result type for decoding.
pub type Result<T> = std::result::Result<T, DecodeError>;

/// Cursor-style reader over untrusted bytes; every accessor bounds-checks.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn addr(&mut self) -> Result<Addr> {
        Ok(Addr(self.u32()?))
    }

    pub(crate) fn group(&mut self) -> Result<Group> {
        Group::new(self.addr()?).ok_or(DecodeError::Malformed)
    }

    /// The rest of the buffer.
    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

/// Append-only writer used by all encoders.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn addr(&mut self, a: Addr) {
        self.u32(a.0);
    }

    pub(crate) fn group(&mut self, g: Group) {
        self.addr(g.addr());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_roundtrip() {
        let a = Addr::new(10, 0, 1, 200);
        assert_eq!(a.to_string(), "10.0.1.200");
        assert_eq!(Addr::from_bytes(a.to_bytes()), a);
    }

    #[test]
    fn multicast_classification() {
        assert!(Addr::new(224, 0, 0, 1).is_multicast());
        assert!(Addr::new(239, 255, 255, 255).is_multicast());
        assert!(!Addr::new(223, 255, 255, 255).is_multicast());
        assert!(!Addr::new(240, 0, 0, 0).is_multicast());
        assert!(Addr::ALL_PIM_ROUTERS.is_link_local_multicast());
        assert!(!Addr::new(224, 0, 1, 0).is_link_local_multicast());
    }

    #[test]
    fn group_rejects_unicast() {
        assert!(Group::new(Addr::new(10, 0, 0, 1)).is_none());
        assert!(Group::new(Addr::new(230, 1, 2, 3)).is_some());
    }

    #[test]
    fn test_groups_distinct() {
        assert_ne!(Group::test(0), Group::test(1));
        assert!(Group::test(65535).addr().is_multicast());
    }

    #[test]
    fn reader_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8(), Ok(1));
        assert_eq!(r.u16(), Ok(0x0203));
        assert_eq!(r.u8(), Err(DecodeError::Truncated));
        assert_eq!(r.u32(), Err(DecodeError::Truncated));
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.addr(Addr::new(1, 2, 3, 4));
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u16(), Ok(0xBEEF));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.addr(), Ok(Addr::new(1, 2, 3, 4)));
        assert_eq!(r.remaining(), 0);
    }
}
