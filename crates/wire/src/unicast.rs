//! Unicast routing-protocol messages.
//!
//! PIM is *protocol independent*: it consumes whatever unicast routing
//! tables exist (paper §2, "Routing Protocol Independent"). To demonstrate
//! that independence this reproduction ships two real unicast routing
//! engines — a RIP-like distance-vector protocol and an OSPF-like
//! link-state protocol — whose wire messages are defined here.

use crate::{Addr, DecodeError, Reader, Result, Writer};

/// Metric value representing "unreachable" (RIP's infinity, generalized).
pub const INFINITY_METRIC: u32 = 0xFFFF_FFFF;

/// One destination/metric pair in a distance-vector update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DvRoute {
    /// Destination address (a router or host).
    pub dst: Addr,
    /// Distance metric; [`INFINITY_METRIC`] poisons the route.
    pub metric: u32,
}

/// A distance-vector routing update (RIP-like), sent periodically and on
/// triggered changes, with split horizon / poisoned reverse applied by the
/// sender per interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DvUpdate {
    /// Advertised routes.
    pub routes: Vec<DvRoute>,
}

impl DvUpdate {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.routes.len() <= u16::MAX as usize);
        w.u16(self.routes.len() as u16);
        for r in &self.routes {
            w.addr(r.dst);
            w.u32(r.metric);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.u16()? as usize;
        if r.remaining() < n * 8 {
            return Err(DecodeError::BadLength);
        }
        let mut routes = Vec::with_capacity(n);
        for _ in 0..n {
            let dst = r.addr()?;
            if dst.is_multicast() {
                return Err(DecodeError::Malformed);
            }
            routes.push(DvRoute {
                dst,
                metric: r.u32()?,
            });
        }
        Ok(DvUpdate { routes })
    }
}

/// Per-interface neighbor keepalive used by the link-state engine to
/// detect adjacency changes (a two-line OSPF Hello).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// How long, in time units, the receiver should consider the sender a
    /// live neighbor.
    pub holdtime: u16,
}

impl Hello {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        w.u16(self.holdtime);
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Hello { holdtime: r.u16()? })
    }
}

/// One adjacency in a link-state advertisement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsaLink {
    /// Neighbor router (or directly attached host) address.
    pub neighbor: Addr,
    /// Cost of the link toward it.
    pub cost: u32,
}

/// A link-state advertisement (OSPF-like), flooded to all routers.
///
/// Sequence numbers order advertisements from the same origin; receivers
/// drop stale or duplicate LSAs and re-flood fresh ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lsa {
    /// The router describing its own links.
    pub origin: Addr,
    /// Monotonically increasing per-origin sequence number.
    pub seq: u32,
    /// The origin's current adjacencies.
    pub links: Vec<LsaLink>,
}

impl Lsa {
    pub(crate) fn encode_body(&self, w: &mut Writer) {
        assert!(self.links.len() <= u16::MAX as usize);
        w.addr(self.origin);
        w.u32(self.seq);
        w.u16(self.links.len() as u16);
        for l in &self.links {
            w.addr(l.neighbor);
            w.u32(l.cost);
        }
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self> {
        let origin = r.addr()?;
        if origin.is_multicast() || origin == Addr::UNSPECIFIED {
            return Err(DecodeError::Malformed);
        }
        let seq = r.u32()?;
        let n = r.u16()? as usize;
        if r.remaining() < n * 8 {
            return Err(DecodeError::BadLength);
        }
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let neighbor = r.addr()?;
            if neighbor.is_multicast() {
                return Err(DecodeError::Malformed);
            }
            links.push(LsaLink {
                neighbor,
                cost: r.u32()?,
            });
        }
        Ok(Lsa { origin, seq, links })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn dv_update_roundtrip() {
        let m = Message::DvUpdate(DvUpdate {
            routes: vec![
                DvRoute {
                    dst: Addr::new(10, 0, 0, 1),
                    metric: 3,
                },
                DvRoute {
                    dst: Addr::new(10, 0, 7, 1),
                    metric: INFINITY_METRIC,
                },
            ],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn dv_update_empty_roundtrip() {
        let m = Message::DvUpdate(DvUpdate { routes: vec![] });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hello_roundtrip() {
        let m = Message::Hello(Hello { holdtime: 30 });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lsa_roundtrip() {
        let m = Message::Lsa(Lsa {
            origin: Addr::new(10, 0, 0, 1),
            seq: 42,
            links: vec![
                LsaLink {
                    neighbor: Addr::new(10, 0, 0, 2),
                    cost: 5,
                },
                LsaLink {
                    neighbor: Addr::new(10, 0, 0, 3),
                    cost: 1,
                },
            ],
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn dv_rejects_multicast_destination() {
        let mut w = Writer::new();
        w.u16(1);
        w.addr(Addr::new(230, 0, 0, 1));
        w.u32(1);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(DvUpdate::decode_body(&mut r), Err(DecodeError::Malformed));
    }

    #[test]
    fn lsa_rejects_zero_origin() {
        let mut w = Writer::new();
        w.addr(Addr::UNSPECIFIED);
        w.u32(0);
        w.u16(0);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(Lsa::decode_body(&mut r), Err(DecodeError::Malformed));
    }

    #[test]
    fn counts_overflowing_buffer_rejected() {
        let mut w = Writer::new();
        w.u16(500);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert_eq!(DvUpdate::decode_body(&mut r), Err(DecodeError::BadLength));
    }
}
