//! Property tests for the Figure 2 machinery, including the theoretical
//! anchor the paper cites: "David Wall proved that the bound on maximum
//! delay of an optimal core-based tree (which he called a center-based
//! tree) is 2 times the shortest-path delay" (§1.3).

use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::{cbt_link_flows, optimal_center_tree, spt_link_flows, spt_max_delay, GroupSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(
    seed: u64,
    nodes: usize,
    degree: f64,
    members: usize,
) -> (graph::Graph, AllPairs, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_connected(
        &RandomGraphParams {
            nodes,
            avg_degree: degree,
            delay_range: (1, 10),
        },
        &mut rng,
    );
    let ap = AllPairs::new(&g);
    let spec = GroupSpec::random(nodes, members, members, &mut rng);
    (g, ap, spec.members)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wall's bound: optimal-center-tree max delay ≤ 2 × SPT max delay.
    #[test]
    fn wall_bound_holds(seed in 0u64..10_000, degree in 3u32..=8, members in 2usize..=12) {
        let (g, ap, m) = random_instance(seed, 20, degree as f64, members);
        let (_, center_delay) = optimal_center_tree(&g, &ap, &m);
        let spt_delay = spt_max_delay(&ap, &m);
        prop_assert!(
            center_delay <= 2 * spt_delay,
            "Wall bound violated: center {center_delay} > 2×SPT {spt_delay}"
        );
    }

    /// The center tree can never beat shortest paths (its max delay is a
    /// real path between two members, so ≥ their shortest-path distance ≥
    /// ... ≥ nothing smaller than the SPT maximum — the ratio in Figure
    /// 2(a) is ≥ 1; the error bars below 1 in the paper's plot are
    /// artifacts of symmetric bars, as footnote 2 explains).
    #[test]
    fn center_tree_never_beats_spt(seed in 0u64..10_000, members in 2usize..=10) {
        let (g, ap, m) = random_instance(seed, 20, 4.0, members);
        let (_, center_delay) = optimal_center_tree(&g, &ap, &m);
        let spt_delay = spt_max_delay(&ap, &m);
        prop_assert!(center_delay >= spt_delay);
    }

    /// The optimal core search really is optimal: no single candidate core
    /// yields a smaller max pair delay.
    #[test]
    fn optimal_core_is_minimal(seed in 0u64..1_000, members in 2usize..=8) {
        let (g, ap, m) = random_instance(seed, 12, 3.5, members);
        let (_, best) = optimal_center_tree(&g, &ap, &m);
        for core in g.nodes() {
            let t = mctree::center_tree(&g, &ap, core, &m);
            prop_assert!(t.max_pair_delay(m.len()) >= best);
        }
    }

    /// Tree-path delays satisfy the triangle-through-core upper bound and
    /// symmetry.
    #[test]
    fn pair_delay_sane(seed in 0u64..1_000, members in 2usize..=8) {
        let (g, ap, m) = random_instance(seed, 15, 4.0, members);
        let core = m[0];
        let t = mctree::center_tree(&g, &ap, core, &m);
        for i in 0..m.len() {
            for j in 0..m.len() {
                let dij = t.member_pair_delay(i, j);
                prop_assert_eq!(dij, t.member_pair_delay(j, i), "symmetry");
                let via_core = ap.dist(core, m[i]).unwrap() + ap.dist(core, m[j]).unwrap();
                prop_assert!(dij <= via_core, "paths share segments, never exceed via-core");
                if i == j {
                    prop_assert_eq!(dij, 0);
                }
                // A tree path is a real path: at least the shortest-path
                // distance.
                prop_assert!(dij >= ap.dist(m[i], m[j]).unwrap());
            }
        }
    }

    /// Flow-count invariants: total SPT flows on any link never exceed the
    /// group-count × sender-count ceiling, and CBT concentrates at least
    /// as much traffic on its hottest link as SPT does on groups with
    /// identical membership (the Figure 2(b) direction), up to core
    /// placement luck on tiny graphs — so we assert the weaker, always
    /// true direction: CBT's hottest link carries ≥ the per-group sender
    /// count if any group is nonempty.
    #[test]
    fn flow_counting_invariants(seed in 0u64..1_000) {
        let (g, ap, _) = random_instance(seed, 15, 4.0, 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let groups: Vec<GroupSpec> = (0..5)
            .map(|_| GroupSpec::random(15, 6, 4, &mut rng))
            .collect();
        let spt = spt_link_flows(&g, &ap, &groups);
        let cbt = cbt_link_flows(&g, &ap, &groups, |spec| {
            mctree::flows::one_center(&g, &ap, &spec.members)
        });
        let ceiling = (5 * 4) as u32;
        for &f in &spt {
            prop_assert!(f <= ceiling);
        }
        for &f in &cbt {
            prop_assert!(f <= ceiling);
        }
        prop_assert!(mctree::flows::max_flows(&cbt) >= 4, "each group's tree carries all its senders");
        // Conservation: every member pair is connected by some flow, so
        // totals are positive.
        prop_assert!(spt.iter().sum::<u32>() > 0);
        prop_assert!(cbt.iter().sum::<u32>() > 0);
    }
}
