//! The pruned, tree-free optimal-core search must be *exactly* the
//! exhaustive search: same winning core, same max pair delay, on any
//! graph — the prunes are lower-bound sound and the tie-break (smallest
//! node id among minimal cores) is preserved. This is the contract the
//! Figure-2(a) bench relies on after switching its hot loop from
//! `optimal_center_tree_exhaustive` to `optimal_center_delay`.

use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::{center_tree, optimal_center_delay, optimal_center_tree_exhaustive, GroupSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pruned == exhaustive on random connected graphs across the degree
    /// range of the Figure-2 sweep.
    #[test]
    fn pruned_search_matches_exhaustive(
        seed in 0u64..100_000,
        nodes in 6usize..=30,
        degree in 3u32..=6,
        members in 2usize..=10,
    ) {
        let members = members.min(nodes);
        let degree = (degree as f64).min((nodes - 1) as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_connected(
            &RandomGraphParams {
                nodes,
                avg_degree: degree,
                delay_range: (1, 10),
            },
            &mut rng,
        );
        let ap = AllPairs::new(&g);
        let spec = GroupSpec::random(nodes, members, members, &mut rng);

        let (ref_tree, ref_delay) = optimal_center_tree_exhaustive(&g, &ap, &spec.members);
        let (core, delay) = optimal_center_delay(&g, &ap, &spec.members);
        prop_assert_eq!(delay, ref_delay, "pruned delay diverged");
        prop_assert_eq!(core, ref_tree.core, "pruned winner diverged");
        // And the tree the public API materializes for that winner scores
        // what the search claimed.
        let tree = center_tree(&g, &ap, core, &spec.members);
        prop_assert_eq!(tree.max_pair_delay(spec.members.len()), delay);
    }
}

/// The documented counterexample to the unsound `max_i d(core, mᵢ)`
/// "lower bound": on a line with both members at the far end, the pair
/// delay through the tree is far below the core's eccentricity — only
/// the spread `max_i − min_i` is a sound per-core bound.
#[test]
fn max_dist_is_not_a_lower_bound_on_tree_delay() {
    let mut g = graph::Graph::with_nodes(7);
    for i in 0..6u32 {
        g.add_edge(NodeId(i), NodeId(i + 1), 1);
    }
    let ap = AllPairs::new(&g);
    let members = [NodeId(5), NodeId(6)];
    let tree = center_tree(&g, &ap, NodeId(0), &members);
    let delay = tree.max_pair_delay(members.len());
    assert_eq!(delay, 1, "members meet at their own LCA, not the core");
    let dmax = members
        .iter()
        .map(|&m| ap.dist(NodeId(0), m).unwrap())
        .max()
        .unwrap();
    assert_eq!(dmax, 6);
    assert!(
        delay < dmax,
        "eccentricity must not be used to prune: it exceeds the true score"
    );
    // The pruned search still gets the right answer on this topology.
    let (_, best) = optimal_center_delay(&g, &ap, &members);
    let (_, best_ref) = optimal_center_tree_exhaustive(&g, &ap, &members);
    assert_eq!(best, best_ref);
}
