//! Center-based (core-based) shared trees, with exhaustive optimal-core
//! search — the "optimal core-based tree algorithm" the paper simulated
//! for Figure 2(a).

use graph::algo::AllPairs;
use graph::{EdgeId, Graph, NodeId, Weight};
use std::collections::BTreeSet;

/// A core-rooted shared tree: the union of shortest paths from the core to
/// every member (which is how CBT joins, traveling hop-by-hop along
/// unicast-shortest routes, materialize).
#[derive(Clone, Debug)]
pub struct CenterTree {
    /// The core (center) node.
    pub core: NodeId,
    /// The tree's links.
    pub edges: BTreeSet<EdgeId>,
    /// For each member (in input order): the node sequence of its
    /// core→member path. Used for tree-path delay computations.
    member_paths: Vec<Vec<NodeId>>,
    /// Distance from the core to each node on some member path (indexed by
    /// node id; `u64::MAX` for off-tree nodes).
    dist_from_core: Vec<Weight>,
}

impl CenterTree {
    /// Delay from the core to `n` along the tree (`None` if off-tree).
    pub fn dist_from_core(&self, n: NodeId) -> Option<Weight> {
        let d = self.dist_from_core[n.index()];
        (d != Weight::MAX).then_some(d)
    }

    /// Tree-path delay between member `i` and member `j` (indices into the
    /// member list the tree was built with).
    ///
    /// The packet travels member-i → LCA → member-j, so the delay is
    /// `d(core,i) + d(core,j) − 2·d(core,lca)`.
    pub fn member_pair_delay(&self, i: usize, j: usize) -> Weight {
        let pi = &self.member_paths[i];
        let pj = &self.member_paths[j];
        // Find the last common node of the two core-rooted paths.
        let mut lca = pi[0];
        for (a, b) in pi.iter().zip(pj.iter()) {
            if a == b {
                lca = *a;
            } else {
                break;
            }
        }
        let di = self.dist_from_core[pi.last().expect("nonempty path").index()];
        let dj = self.dist_from_core[pj.last().expect("nonempty path").index()];
        let dl = self.dist_from_core[lca.index()];
        di + dj - 2 * dl
    }

    /// The maximum delay between any two members through the tree — the
    /// quantity Figure 2(a) reports for core-based trees.
    pub fn max_pair_delay(&self, members_len: usize) -> Weight {
        let mut max = 0;
        for i in 0..members_len {
            for j in (i + 1)..members_len {
                max = max.max(self.member_pair_delay(i, j));
            }
        }
        max
    }
}

/// Build the shared tree for `members` rooted at `core`.
///
/// # Panics
/// Panics if any member is unreachable from the core.
pub fn center_tree(g: &Graph, ap: &AllPairs, core: NodeId, members: &[NodeId]) -> CenterTree {
    let sp = ap.from(core);
    let mut edges = BTreeSet::new();
    let mut dist_from_core = vec![Weight::MAX; g.node_count()];
    dist_from_core[core.index()] = 0;
    let mut member_paths = Vec::with_capacity(members.len());
    for &m in members {
        let path = sp
            .path_to(g, m)
            .expect("member must be reachable from core");
        for &n in &path {
            dist_from_core[n.index()] = sp.dist_to(n).expect("node on path");
        }
        for e in sp.path_edges_to(g, m).expect("member reachable") {
            edges.insert(e);
        }
        member_paths.push(path);
    }
    CenterTree {
        core,
        edges,
        member_paths,
        dist_from_core,
    }
}

/// Optimal-core search: the core minimizing the maximum member-pair
/// delay, with ties broken toward the smaller node id. Returns the tree
/// and its max delay. This is the strongest possible core placement —
/// the paper's point is that *even this* loses to SPTs on delay.
///
/// Equivalent to [`optimal_center_tree_exhaustive`] (the property tests
/// pin the equivalence) but only the *winning* tree is materialized:
/// candidate cores are scored by [`optimal_center_delay`], which works
/// from the all-pairs parent arrays and distance rows alone.
pub fn optimal_center_tree(g: &Graph, ap: &AllPairs, members: &[NodeId]) -> (CenterTree, Weight) {
    let (core, d) = optimal_center_delay(g, ap, members);
    (center_tree(g, ap, core, members), d)
}

/// Reference implementation of the optimal-core search: build the full
/// [`CenterTree`] for every candidate core and keep the best. Kept (and
/// exercised by the `prune_equivalence` property tests and the fig2a
/// `--json` timing comparison) as the ground truth for
/// [`optimal_center_delay`]'s pruned search.
pub fn optimal_center_tree_exhaustive(
    g: &Graph,
    ap: &AllPairs,
    members: &[NodeId],
) -> (CenterTree, Weight) {
    assert!(members.len() >= 2, "need at least two members");
    let mut best: Option<(CenterTree, Weight)> = None;
    for core in g.nodes() {
        // Skip cores that can't reach everyone (disconnected graphs).
        if members.iter().any(|&m| ap.dist(core, m).is_none()) {
            continue;
        }
        let tree = center_tree(g, ap, core, members);
        let d = tree.max_pair_delay(members.len());
        if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
            best = Some((tree, d));
        }
    }
    best.expect("at least one core can reach all members")
}

/// Tree-free optimal-core search: score every candidate core straight
/// from the all-pairs data and return `(core, max_pair_delay)` without
/// materializing any [`CenterTree`]. Exactly matches
/// [`optimal_center_tree_exhaustive`], including tie-breaks (smallest
/// node id among cores achieving the minimum).
///
/// Why this is the hot-path form: the Figure-2(a) study evaluates all 50
/// candidate cores of every one of 3 000 topologies, and the exhaustive
/// search pays for an edge set, per-member path vectors, and a
/// distance array per *candidate* just to read one scalar. Here each
/// candidate is scored with reused scratch buffers (zero steady-state
/// allocation), and two sound prunes cut work further:
///
/// * **spread prune** — any member pair's tree delay is at least
///   `|d(core,i) − d(core,j)|` (the LCA is no nearer the core than the
///   closer member), so `max_i d(core,mᵢ) − min_i d(core,mᵢ)` lower-bounds
///   the score and candidates whose spread already exceeds the best are
///   skipped without scoring. (The tempting stronger bound
///   `max_i d(core,mᵢ)` is *not* sound: put two members at the far end
///   of a line and the core at the near end — their pair delay is tiny
///   while `max_i` is the whole line.)
/// * **diameter early-exit** — a tree path can never beat the
///   shortest path, so no core scores below the members' pairwise
///   shortest-path diameter; once a candidate achieves exactly that,
///   later candidates can at best tie and the scan stops.
pub fn optimal_center_delay(g: &Graph, ap: &AllPairs, members: &[NodeId]) -> (NodeId, Weight) {
    assert!(members.len() >= 2, "need at least two members");

    // Members' pairwise shortest-path diameter: the global lower bound.
    let mut diameter = 0;
    for (i, &a) in members.iter().enumerate() {
        let row = ap.dist_row(a);
        for &b in &members[i + 1..] {
            let d = row[b.index()];
            if d != Weight::MAX {
                diameter = diameter.max(d);
            }
        }
    }

    // Reused scratch: one core→member node path per member, oldest core's
    // contents overwritten in place.
    let mut paths: Vec<Vec<NodeId>> = vec![Vec::new(); members.len()];

    let mut best: Option<(Weight, NodeId)> = None;
    for core in g.nodes() {
        let row = ap.dist_row(core);
        let mut dmax = 0;
        let mut dmin = Weight::MAX;
        let mut reachable = true;
        for &m in members {
            let d = row[m.index()];
            if d == Weight::MAX {
                reachable = false;
                break;
            }
            dmax = dmax.max(d);
            dmin = dmin.min(d);
        }
        if !reachable {
            continue;
        }
        if let Some((bd, _)) = best {
            // Sound skip: score(core) >= dmax - dmin, so a spread already
            // at/above the incumbent can never *strictly* beat it (and
            // ties never replace, matching the exhaustive iteration).
            if dmax - dmin >= bd {
                continue;
            }
        }
        let d = score_core(g, ap, core, members, &mut paths);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, core));
            if d == diameter {
                // No core can score below the member diameter, and later
                // (larger-id) candidates can only tie: the scan is done.
                break;
            }
        }
    }
    let (d, core) = best.expect("at least one core can reach all members");
    (core, d)
}

/// Exact max member-pair tree delay for one candidate core, computed
/// from the core's shortest-path parent array. Identical arithmetic to
/// [`CenterTree::member_pair_delay`] over [`center_tree`]'s paths —
/// just without the edge set, the per-call path allocations, or the
/// per-node distance array.
fn score_core(
    g: &Graph,
    ap: &AllPairs,
    core: NodeId,
    members: &[NodeId],
    paths: &mut [Vec<NodeId>],
) -> Weight {
    let sp = ap.from(core);
    let row = ap.dist_row(core);
    for (&m, path) in members.iter().zip(paths.iter_mut()) {
        path.clear();
        let mut cur = m;
        path.push(cur);
        while let Some((p, _)) = sp.parent_of(g, cur) {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(*path.last().expect("nonempty"), core);
        path.reverse();
    }
    let mut max = 0;
    for i in 0..members.len() {
        let pi = &paths[i];
        let di = row[members[i].index()];
        for (j, pj) in paths.iter().enumerate().skip(i + 1) {
            // Deepest common node of the two core-rooted paths.
            let mut lca = pi[0];
            for (a, b) in pi.iter().zip(pj.iter()) {
                if a == b {
                    lca = *a;
                } else {
                    break;
                }
            }
            let dj = row[members[j].index()];
            max = max.max(di + dj - 2 * row[lca.index()]);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A star: center 0, leaves 1..=4, each edge weight 2.
    fn star() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 2);
        }
        g
    }

    #[test]
    fn star_center_is_optimal() {
        let g = star();
        let ap = AllPairs::new(&g);
        let members = [NodeId(1), NodeId(2), NodeId(3)];
        let (tree, d) = optimal_center_tree(&g, &ap, &members);
        assert_eq!(tree.core, NodeId(0));
        assert_eq!(d, 4, "leaf→center→leaf");
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn pair_delay_through_lca() {
        // Path 0-1-2-3; members 0 and 3, core 1.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 3);
        g.add_edge(NodeId(2), NodeId(3), 5);
        let ap = AllPairs::new(&g);
        let tree = center_tree(&g, &ap, NodeId(1), &[NodeId(0), NodeId(3)]);
        assert_eq!(tree.member_pair_delay(0, 1), 9, "0→1→2→3");
        assert_eq!(tree.dist_from_core(NodeId(3)), Some(8));
        assert_eq!(tree.dist_from_core(NodeId(0)), Some(1));
    }

    #[test]
    fn shared_segments_not_double_counted() {
        // Y shape: core 0 - 1, then 1 - 2 and 1 - 3. Members 2,3.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 10);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(1), NodeId(3), 1);
        let ap = AllPairs::new(&g);
        let tree = center_tree(&g, &ap, NodeId(0), &[NodeId(2), NodeId(3)]);
        // 2 and 3 meet at node 1, not at the core: delay 2, not 22.
        assert_eq!(tree.member_pair_delay(0, 1), 2);
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn member_at_core_has_zero_distance() {
        let g = star();
        let ap = AllPairs::new(&g);
        let tree = center_tree(&g, &ap, NodeId(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(tree.member_pair_delay(0, 1), 2);
    }

    #[test]
    fn optimal_beats_or_equals_arbitrary_core() {
        let g = star();
        let ap = AllPairs::new(&g);
        let members = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let (_, opt) = optimal_center_tree(&g, &ap, &members);
        for core in g.nodes() {
            let tree = center_tree(&g, &ap, core, &members);
            assert!(tree.max_pair_delay(members.len()) >= opt);
        }
    }
}
