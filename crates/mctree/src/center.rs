//! Center-based (core-based) shared trees, with exhaustive optimal-core
//! search — the "optimal core-based tree algorithm" the paper simulated
//! for Figure 2(a).

use graph::algo::AllPairs;
use graph::{EdgeId, Graph, NodeId, Weight};
use std::collections::BTreeSet;

/// A core-rooted shared tree: the union of shortest paths from the core to
/// every member (which is how CBT joins, traveling hop-by-hop along
/// unicast-shortest routes, materialize).
#[derive(Clone, Debug)]
pub struct CenterTree {
    /// The core (center) node.
    pub core: NodeId,
    /// The tree's links.
    pub edges: BTreeSet<EdgeId>,
    /// For each member (in input order): the node sequence of its
    /// core→member path. Used for tree-path delay computations.
    member_paths: Vec<Vec<NodeId>>,
    /// Distance from the core to each node on some member path (indexed by
    /// node id; `u64::MAX` for off-tree nodes).
    dist_from_core: Vec<Weight>,
}

impl CenterTree {
    /// Delay from the core to `n` along the tree (`None` if off-tree).
    pub fn dist_from_core(&self, n: NodeId) -> Option<Weight> {
        let d = self.dist_from_core[n.index()];
        (d != Weight::MAX).then_some(d)
    }

    /// Tree-path delay between member `i` and member `j` (indices into the
    /// member list the tree was built with).
    ///
    /// The packet travels member-i → LCA → member-j, so the delay is
    /// `d(core,i) + d(core,j) − 2·d(core,lca)`.
    pub fn member_pair_delay(&self, i: usize, j: usize) -> Weight {
        let pi = &self.member_paths[i];
        let pj = &self.member_paths[j];
        // Find the last common node of the two core-rooted paths.
        let mut lca = pi[0];
        for (a, b) in pi.iter().zip(pj.iter()) {
            if a == b {
                lca = *a;
            } else {
                break;
            }
        }
        let di = self.dist_from_core[pi.last().expect("nonempty path").index()];
        let dj = self.dist_from_core[pj.last().expect("nonempty path").index()];
        let dl = self.dist_from_core[lca.index()];
        di + dj - 2 * dl
    }

    /// The maximum delay between any two members through the tree — the
    /// quantity Figure 2(a) reports for core-based trees.
    pub fn max_pair_delay(&self, members_len: usize) -> Weight {
        let mut max = 0;
        for i in 0..members_len {
            for j in (i + 1)..members_len {
                max = max.max(self.member_pair_delay(i, j));
            }
        }
        max
    }
}

/// Build the shared tree for `members` rooted at `core`.
///
/// # Panics
/// Panics if any member is unreachable from the core.
pub fn center_tree(g: &Graph, ap: &AllPairs, core: NodeId, members: &[NodeId]) -> CenterTree {
    let sp = ap.from(core);
    let mut edges = BTreeSet::new();
    let mut dist_from_core = vec![Weight::MAX; g.node_count()];
    dist_from_core[core.index()] = 0;
    let mut member_paths = Vec::with_capacity(members.len());
    for &m in members {
        let path = sp
            .path_to(g, m)
            .expect("member must be reachable from core");
        for &n in &path {
            dist_from_core[n.index()] = sp.dist_to(n).expect("node on path");
        }
        for e in sp.path_edges_to(g, m).expect("member reachable") {
            edges.insert(e);
        }
        member_paths.push(path);
    }
    CenterTree {
        core,
        edges,
        member_paths,
        dist_from_core,
    }
}

/// Exhaustive optimal-core search: try every node as the core and keep the
/// tree minimizing the maximum member-pair delay. Returns the tree and its
/// max delay. This is the strongest possible core placement — the paper's
/// point is that *even this* loses to SPTs on delay.
pub fn optimal_center_tree(g: &Graph, ap: &AllPairs, members: &[NodeId]) -> (CenterTree, Weight) {
    assert!(members.len() >= 2, "need at least two members");
    let mut best: Option<(CenterTree, Weight)> = None;
    for core in g.nodes() {
        // Skip cores that can't reach everyone (disconnected graphs).
        if members.iter().any(|&m| ap.dist(core, m).is_none()) {
            continue;
        }
        let tree = center_tree(g, ap, core, members);
        let d = tree.max_pair_delay(members.len());
        if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
            best = Some((tree, d));
        }
    }
    best.expect("at least one core can reach all members")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A star: center 0, leaves 1..=4, each edge weight 2.
    fn star() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 2);
        }
        g
    }

    #[test]
    fn star_center_is_optimal() {
        let g = star();
        let ap = AllPairs::new(&g);
        let members = [NodeId(1), NodeId(2), NodeId(3)];
        let (tree, d) = optimal_center_tree(&g, &ap, &members);
        assert_eq!(tree.core, NodeId(0));
        assert_eq!(d, 4, "leaf→center→leaf");
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn pair_delay_through_lca() {
        // Path 0-1-2-3; members 0 and 3, core 1.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 3);
        g.add_edge(NodeId(2), NodeId(3), 5);
        let ap = AllPairs::new(&g);
        let tree = center_tree(&g, &ap, NodeId(1), &[NodeId(0), NodeId(3)]);
        assert_eq!(tree.member_pair_delay(0, 1), 9, "0→1→2→3");
        assert_eq!(tree.dist_from_core(NodeId(3)), Some(8));
        assert_eq!(tree.dist_from_core(NodeId(0)), Some(1));
    }

    #[test]
    fn shared_segments_not_double_counted() {
        // Y shape: core 0 - 1, then 1 - 2 and 1 - 3. Members 2,3.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 10);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(1), NodeId(3), 1);
        let ap = AllPairs::new(&g);
        let tree = center_tree(&g, &ap, NodeId(0), &[NodeId(2), NodeId(3)]);
        // 2 and 3 meet at node 1, not at the core: delay 2, not 22.
        assert_eq!(tree.member_pair_delay(0, 1), 2);
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn member_at_core_has_zero_distance() {
        let g = star();
        let ap = AllPairs::new(&g);
        let tree = center_tree(&g, &ap, NodeId(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(tree.member_pair_delay(0, 1), 2);
    }

    #[test]
    fn optimal_beats_or_equals_arbitrary_core() {
        let g = star();
        let ap = AllPairs::new(&g);
        let members = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let (_, opt) = optimal_center_tree(&g, &ap, &members);
        for core in g.nodes() {
            let tree = center_tree(&g, &ap, core, &members);
            assert!(tree.max_pair_delay(members.len()) >= opt);
        }
    }
}
