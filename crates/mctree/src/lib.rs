//! Multicast tree construction algorithms and quality metrics — the
//! machinery behind the paper's Figure 2 study.
//!
//! The paper compares the two tree types PIM can build:
//!
//! * **shortest-path trees (SPTs)** — one tree per source, delivering along
//!   unicast-shortest paths (what PIM builds after the §3.3 switchover);
//! * **center-based (core-based) trees** — one shared tree per group,
//!   rooted at a core, as in CBT and in PIM's shared-tree-only mode.
//!
//! Two experiments quantify the trade-off:
//!
//! * **Figure 2(a)** — "we simulated an optimal core-based tree algorithm
//!   over large number of different random graphs. We measured the maximum
//!   delay within each group ... the maximum delays of core-based trees
//!   with optimal core placement are up to 1.4 times of the shortest-path
//!   trees". Here: [`optimal_center_tree`] (exhaustive core search,
//!   maximum member-pair delay *through the tree*) vs [`spt_max_delay`].
//!   David Wall proved the optimal center tree is within 2× of
//!   shortest-path delay; the property tests pin that bound.
//! * **Figure 2(b)** — traffic concentration: "we measured the number of
//!   traffic flows on each link of the network, then recorded the maximum
//!   number within the network" for 300 × 40-member groups with 32 senders
//!   each. Here: [`flows::spt_link_flows`] vs [`flows::cbt_link_flows`].

#![warn(missing_docs)]

pub mod center;
pub mod flows;
pub mod spt;

pub use center::{
    center_tree, optimal_center_delay, optimal_center_tree, optimal_center_tree_exhaustive,
    CenterTree,
};
pub use flows::{cbt_link_flows, spt_link_flows};
pub use spt::{spt_max_delay, spt_tree_edges};

use graph::NodeId;

/// A multicast group for the Monte-Carlo experiments: the member set and
/// the subset of members that transmit.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// Receivers (in the Figure 2 experiments, senders are members too).
    pub members: Vec<NodeId>,
    /// Transmitting members.
    pub senders: Vec<NodeId>,
}

impl GroupSpec {
    /// A group in which every member also sends (Figure 2(a)'s setup).
    pub fn all_send(members: Vec<NodeId>) -> GroupSpec {
        GroupSpec {
            senders: members.clone(),
            members,
        }
    }

    /// Choose a random group: `members` distinct random nodes, of which
    /// the first `senders` also send (Figure 2(b): 40 members, 32
    /// senders).
    pub fn random(
        node_count: usize,
        members: usize,
        senders: usize,
        rng: &mut impl rand::Rng,
    ) -> GroupSpec {
        assert!(members <= node_count, "more members than nodes");
        assert!(senders <= members, "senders must be members");
        let mut pool: Vec<NodeId> = (0..node_count as u32).map(NodeId).collect();
        // Partial Fisher-Yates: shuffle the first `members` positions.
        for i in 0..members {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let members_vec: Vec<NodeId> = pool[..members].to_vec();
        GroupSpec {
            senders: members_vec[..senders].to_vec(),
            members: members_vec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_group_is_distinct_and_nested() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let gs = GroupSpec::random(50, 40, 32, &mut rng);
            assert_eq!(gs.members.len(), 40);
            assert_eq!(gs.senders.len(), 32);
            let set: std::collections::HashSet<_> = gs.members.iter().collect();
            assert_eq!(set.len(), 40, "members must be distinct");
            assert!(gs.senders.iter().all(|s| set.contains(s)));
        }
    }

    #[test]
    fn all_send_mirrors_members() {
        let gs = GroupSpec::all_send(vec![NodeId(1), NodeId(2)]);
        assert_eq!(gs.members, gs.senders);
    }
}
