//! Per-link traffic-flow counting — Figure 2(b)'s metric.
//!
//! "In each network, there were 300 active groups all having 40 members,
//! of which 32 members were also senders. We measured the number of
//! traffic flows on each link of the network, then recorded the maximum
//! number within the network."
//!
//! A *flow* is one (group, sender) pair. A link carries the flow if the
//! sender's packets traverse it:
//!
//! * **SPT**: the flow covers the sender's shortest-path tree pruned to
//!   the group's members;
//! * **CBT**: packets propagate over the whole bidirectional shared tree
//!   (every tree leaf is a member by construction, so no branch is
//!   spared) — every link of the group's tree carries every sender's
//!   flow. This is the traffic-concentration effect of Figure 1(c).

use crate::center::center_tree;
use crate::spt::spt_tree_edges;
use crate::GroupSpec;
use graph::algo::AllPairs;
use graph::{Graph, NodeId, Weight};

/// Per-link flow counts when every sender uses its own SPT.
/// `result[e]` = number of (group, sender) flows crossing edge `e`.
pub fn spt_link_flows(g: &Graph, ap: &AllPairs, groups: &[GroupSpec]) -> Vec<u32> {
    let mut flows = vec![0u32; g.edge_count()];
    for spec in groups {
        for &s in &spec.senders {
            for e in spt_tree_edges(g, ap, s, &spec.members) {
                flows[e.index()] += 1;
            }
        }
    }
    flows
}

/// Per-link flow counts when each group uses one shared core-based tree.
/// `core_of` selects the core for each group (e.g. the optimal placement).
pub fn cbt_link_flows(
    g: &Graph,
    ap: &AllPairs,
    groups: &[GroupSpec],
    mut core_of: impl FnMut(&GroupSpec) -> NodeId,
) -> Vec<u32> {
    let mut flows = vec![0u32; g.edge_count()];
    for spec in groups {
        let core = core_of(spec);
        let tree = center_tree(g, ap, core, &spec.members);
        let senders = spec.senders.len() as u32;
        for e in &tree.edges {
            flows[e.index()] += senders;
        }
    }
    flows
}

/// The core placement used for the Figure 2(b) experiment: the member-set
/// 1-center — the node minimizing the maximum shortest-path distance to
/// any member (cheap, and near-optimal for delay).
pub fn one_center(g: &Graph, ap: &AllPairs, members: &[NodeId]) -> NodeId {
    g.nodes()
        .filter_map(|c| {
            let ecc: Option<Weight> = members
                .iter()
                .map(|&m| ap.dist(c, m))
                .try_fold(0, |acc, d| d.map(|d| std::cmp::max(acc, d)));
            ecc.map(|e| (e, c))
        })
        .min_by_key(|&(e, c)| (e, c.0))
        .map(|(_, c)| c)
        .expect("graph must be nonempty and connected")
}

/// The maximum flow count over all links (the quantity Figure 2(b)
/// plots).
pub fn max_flows(flows: &[u32]) -> u32 {
    flows.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::EdgeId;

    /// 0-1-2 path plus 3 hanging off 1.
    fn tee() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1); // e0
        g.add_edge(NodeId(1), NodeId(2), 1); // e1
        g.add_edge(NodeId(1), NodeId(3), 1); // e2
        g
    }

    #[test]
    fn spt_flows_count_per_sender() {
        let g = tee();
        let ap = AllPairs::new(&g);
        let spec = GroupSpec::all_send(vec![NodeId(0), NodeId(2)]);
        let flows = spt_link_flows(&g, &ap, &[spec]);
        // Sender 0's tree uses e0,e1; sender 2's tree uses e1,e0. Edge e2
        // leads to no member.
        assert_eq!(flows, vec![2, 2, 0]);
    }

    #[test]
    fn cbt_flows_concentrate_on_tree() {
        let g = tee();
        let ap = AllPairs::new(&g);
        let spec = GroupSpec {
            members: vec![NodeId(0), NodeId(2), NodeId(3)],
            senders: vec![NodeId(0), NodeId(2)],
        };
        let flows = cbt_link_flows(&g, &ap, &[spec], |_| NodeId(1));
        // Every tree link carries both senders' flows.
        assert_eq!(flows, vec![2, 2, 2]);
    }

    #[test]
    fn one_center_picks_topological_middle() {
        let g = tee();
        let ap = AllPairs::new(&g);
        assert_eq!(
            one_center(&g, &ap, &[NodeId(0), NodeId(2), NodeId(3)]),
            NodeId(1)
        );
        // Ties break toward the smaller node id.
        assert_eq!(one_center(&g, &ap, &[NodeId(0), NodeId(1)]), NodeId(0));
    }

    #[test]
    fn multiple_groups_accumulate() {
        let g = tee();
        let ap = AllPairs::new(&g);
        let a = GroupSpec::all_send(vec![NodeId(0), NodeId(2)]);
        let b = GroupSpec::all_send(vec![NodeId(0), NodeId(3)]);
        let flows = spt_link_flows(&g, &ap, &[a, b]);
        assert_eq!(flows[EdgeId(0).index()], 4); // both groups cross e0
        assert_eq!(max_flows(&flows), 4);
    }

    #[test]
    fn max_flows_empty() {
        assert_eq!(max_flows(&[]), 0);
    }
}
