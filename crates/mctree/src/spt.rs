//! Shortest-path-tree construction and metrics.

use graph::algo::AllPairs;
use graph::{EdgeId, Graph, NodeId, Weight};
use std::collections::BTreeSet;

/// The maximum delay within a group when shortest-path trees are used:
/// every sender reaches every receiver along a unicast-shortest path, so
/// the group's worst delay is the largest pairwise shortest-path distance
/// among members.
///
/// # Panics
/// Panics if any member pair is disconnected (the generators guarantee
/// connectivity) or if fewer than two members are given.
pub fn spt_max_delay(ap: &AllPairs, members: &[NodeId]) -> Weight {
    assert!(members.len() >= 2, "need at least two members");
    // Half-triangle over the flat distance rows: one row fetch per
    // source, one array read per pair — this runs inside the Figure-2
    // Monte-Carlo loop, millions of pairs per sweep.
    let mut max = 0;
    for (i, &s) in members.iter().enumerate() {
        let row = ap.dist_row(s);
        for &r in &members[i + 1..] {
            let d = row[r.index()];
            assert!(d != Weight::MAX, "members must be connected");
            max = max.max(d);
        }
    }
    max
}

/// The edges of the shortest-path tree rooted at `source`, pruned to the
/// paths that reach `members` — i.e. the links that carry `source`'s data
/// once PIM's prunes have stabilized (or DVMRP's, post-prune).
pub fn spt_tree_edges(
    g: &Graph,
    ap: &AllPairs,
    source: NodeId,
    members: &[NodeId],
) -> BTreeSet<EdgeId> {
    let sp = ap.from(source);
    let mut edges = BTreeSet::new();
    for &m in members {
        if m == source {
            continue;
        }
        for e in sp.path_edges_to(g, m).expect("members must be connected") {
            edges.insert(e);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph 0-1-2-3 with unit weights plus a heavy shortcut 0-3.
    fn line_with_shortcut() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        g.add_edge(NodeId(0), NodeId(3), 10);
        g
    }

    #[test]
    fn max_delay_is_largest_pairwise_distance() {
        let g = line_with_shortcut();
        let ap = AllPairs::new(&g);
        assert_eq!(spt_max_delay(&ap, &[NodeId(0), NodeId(3)]), 3);
        assert_eq!(spt_max_delay(&ap, &[NodeId(0), NodeId(1), NodeId(2)]), 2);
    }

    #[test]
    fn tree_edges_follow_shortest_paths_only() {
        let g = line_with_shortcut();
        let ap = AllPairs::new(&g);
        let edges = spt_tree_edges(&g, &ap, NodeId(0), &[NodeId(3)]);
        // Via 0-1-2-3, never the weight-10 shortcut (edge 3).
        assert_eq!(
            edges.iter().copied().collect::<Vec<_>>(),
            vec![EdgeId(0), EdgeId(1), EdgeId(2)]
        );
    }

    #[test]
    fn tree_edges_shared_prefix_counted_once() {
        let g = line_with_shortcut();
        let ap = AllPairs::new(&g);
        let edges = spt_tree_edges(&g, &ap, NodeId(0), &[NodeId(2), NodeId(3)]);
        assert_eq!(edges.len(), 3, "paths to 2 and 3 share edges 0,1");
    }

    #[test]
    fn source_in_members_is_skipped() {
        let g = line_with_shortcut();
        let ap = AllPairs::new(&g);
        let edges = spt_tree_edges(&g, &ap, NodeId(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(edges.len(), 1);
    }
}
