//! Causal tracing: folding the provenance-linked event stream into a
//! queryable causal DAG.
//!
//! The paper's hardest claims (soft-state recovery after router loss,
//! RP failover, SPT switchover) are claims about *chains* of cause and
//! effect. The plain event stream records what happened; this module
//! records *why*: every dispatch the simulator runs arrives here as a
//! [`Sink::link`] edge (`dispatch` ← `the dispatch that created the
//! event it handled`), and every emitted event arrives via
//! [`Sink::event_caused`] tagged with the dispatch it was emitted from.
//!
//! Three queries come out of the DAG:
//!
//! * [`CausalIndex::backward_slice`] — the minimal ancestry chain
//!   explaining one dispatch (each dispatch has exactly one cause, so
//!   the slice is a chain, not a cone) — `trace why` renders this;
//! * [`CausalIndex::forward_slice`] — the blast radius of a dispatch,
//!   e.g. every consequence of one injected fault;
//! * [`CausalIndex::critical_path`] — the hop/timer chain that carried
//!   a member's first data delivery, with per-hop latency attribution.
//!
//! Everything here is keyed by the partition-independent [`EventId`],
//! so every rendered slice is byte-identical at any `--threads` — a
//! property CI asserts on the committed regression corpus.

use std::collections::BTreeMap;

use crate::{Event, EventId, Provenance, Sink, Ticks, FNV_OFFSET};

/// One event emitted during a dispatch, as stored in the index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Node that emitted the event.
    pub node: u32,
    /// Sim time of emission.
    pub at: Ticks,
    /// Stable kind tag ([`Event::kind`]).
    pub kind: &'static str,
    /// Group address bits, for membership/delivery events.
    pub group: Option<u32>,
    /// Stable single-line rendering ([`Event::render`]).
    pub line: String,
}

/// One dispatch in the causal DAG: its single cause and the events it
/// emitted (possibly none — data-plane forwards are silent).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dispatch {
    /// The dispatch that created the event this one handled; `None`
    /// for roots (`on_start`, scripted faults).
    pub cause: Option<EventId>,
    /// Events emitted while handling, in emission order.
    pub records: Vec<Record>,
}

/// A [`Sink`] folding the provenance-linked event stream into a causal
/// DAG over dispatches. See the module docs for the three queries.
///
/// Like every sink, the index observes and never participates: it is
/// fed from the same deterministic flush the JSONL stream is, so its
/// contents — and every rendered slice — are partition-independent.
#[derive(Clone, Debug, Default)]
pub struct CausalIndex {
    dispatches: BTreeMap<EventId, Dispatch>,
    children: BTreeMap<EventId, Vec<EventId>>,
}

impl CausalIndex {
    /// An empty index.
    pub fn new() -> CausalIndex {
        CausalIndex::default()
    }

    /// Number of dispatches observed.
    pub fn len(&self) -> usize {
        self.dispatches.len()
    }

    /// Whether no dispatch has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.dispatches.is_empty()
    }

    /// The dispatch record for `id`, if observed.
    pub fn dispatch(&self, id: EventId) -> Option<&Dispatch> {
        self.dispatches.get(&id)
    }

    /// Direct consequences of `id`, in canonical order.
    pub fn children(&self, id: EventId) -> &[EventId] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    // -- anchors ------------------------------------------------------

    /// The last dispatch (canonical order) that emitted an entry-flag
    /// transition (`entry_created` / `entry_modified` / `entry_expired`),
    /// optionally restricted to one node. The explorer anchors oracle
    /// post-mortems here: the final state transition is the event the
    /// violated invariant is *about*.
    pub fn last_flag_transition(&self, node: Option<u32>) -> Option<EventId> {
        let mut last = None;
        for (id, d) in &self.dispatches {
            if d.records
                .iter()
                .any(|r| r.kind.starts_with("entry_") && node.map(|n| r.node == n).unwrap_or(true))
            {
                last = Some(*id);
            }
        }
        last
    }

    /// The last dispatch that emitted any event from `node`.
    pub fn last_event_on(&self, node: u32) -> Option<EventId> {
        let mut last = None;
        for (id, d) in &self.dispatches {
            if d.records.iter().any(|r| r.node == node) {
                last = Some(*id);
            }
        }
        last
    }

    /// Root dispatches (no cause) that emitted a `fault` mark — the
    /// scripted fault injections, in canonical order. Forward-slicing
    /// one of these yields the fault's blast radius.
    pub fn fault_roots(&self) -> Vec<EventId> {
        self.dispatches
            .iter()
            .filter(|(_, d)| d.cause.is_none() && d.records.iter().any(|r| r.kind == "fault"))
            .map(|(id, _)| *id)
            .collect()
    }

    // -- slicing ------------------------------------------------------

    /// The ancestry chain of `id`, root first. Each dispatch has
    /// exactly one cause, so this is the *minimal* explanation: no
    /// unrelated concurrent events appear. Empty if `id` was never
    /// observed.
    pub fn backward_chain(&self, id: EventId) -> Vec<EventId> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if !self.dispatches.contains_key(&c) || chain.len() > self.dispatches.len() {
                break;
            }
            chain.push(c);
            cur = self.dispatches[&c].cause;
        }
        chain.reverse();
        chain
    }

    /// The rendered backward slice of `id`, root first: one header per
    /// hop (`#depth [id] who`) followed by the events that hop emitted,
    /// indented. Byte-stable: asserted identical across `--threads` and
    /// partitionings.
    pub fn backward_slice(&self, id: EventId) -> Vec<String> {
        let chain = self.backward_chain(id);
        let mut out = Vec::new();
        for (i, hop) in chain.iter().enumerate() {
            out.extend(self.render_hop(i, *hop, ""));
        }
        out
    }

    /// Every dispatch reachable from `id` (including `id`), in BFS
    /// order — the blast radius of a fault injection.
    pub fn forward_slice(&self, id: EventId) -> Vec<EventId> {
        if !self.dispatches.contains_key(&id) {
            return Vec::new();
        }
        let mut out = vec![id];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            i += 1;
            out.extend(self.children(cur).iter().copied());
        }
        out
    }

    /// The attributed path that carried `member`'s first data delivery
    /// for `group` (group address bits): the backward slice of the
    /// delivering dispatch, annotated with per-hop sim-time deltas and
    /// the dominant hop — the MetricsAggregator's join-latency
    /// histogram, turned into a path. Empty when the member never
    /// joined or never received data.
    pub fn critical_path(&self, group: u32, member: u32) -> Vec<String> {
        let mut join_at = None;
        let mut delivery = None;
        'outer: for (id, d) in &self.dispatches {
            for r in &d.records {
                if r.node != member || r.group != Some(group) {
                    continue;
                }
                if r.kind == "member_joined" && join_at.is_none() {
                    join_at = Some(r.at);
                }
                if r.kind == "data_delivered" {
                    if let Some(j) = join_at {
                        delivery = Some((*id, r.at, j));
                        break 'outer;
                    }
                }
            }
        }
        let Some((id, at, join)) = delivery else {
            return Vec::new();
        };
        let chain = self.backward_chain(id);
        let mut out = vec![format!(
            "join at t{join}, first delivery at t{at} (latency {})",
            at - join
        )];
        // Per-hop latency: the sim-time this hop waited on its cause
        // (propagation delay or timer sleep). The dominant hop is where
        // the latency budget went.
        let deltas: Vec<Ticks> = chain
            .iter()
            .enumerate()
            .map(|(i, hop)| {
                if i == 0 {
                    0
                } else {
                    hop.time - chain[i - 1].time
                }
            })
            .collect();
        let dominant = deltas
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for (i, hop) in chain.iter().enumerate() {
            let mark = if i == dominant && deltas[i] > 0 {
                "  <- dominant"
            } else {
                ""
            };
            out.extend(self.render_hop(i, *hop, &format!(" (+{}){mark}", deltas[i])));
        }
        out
    }

    fn render_hop(&self, depth: usize, id: EventId, suffix: &str) -> Vec<String> {
        let who = match id.epoch {
            0 => format!("n{} on-start", id.origin.saturating_sub(1)),
            1 => format!("script step {}", id.seq),
            _ => format!("n{}", id.origin.saturating_sub(1)),
        };
        let mut out = vec![format!("#{depth} [{}] {who}{suffix}", id.render())];
        match self.dispatches.get(&id) {
            Some(d) if !d.records.is_empty() => {
                for r in &d.records {
                    out.push(format!("    t{} r{} {}", r.at, r.node, r.line));
                }
            }
            _ => out.push("    (silent)".into()),
        }
        out
    }

    // -- integrity ----------------------------------------------------

    /// Check the DAG's structural invariants: every cause was itself
    /// observed as a dispatch, and every cause strictly precedes its
    /// child in canonical-key order (which also proves acyclicity —
    /// `<` is well-founded). Returns the first violation found.
    pub fn check(&self) -> Result<(), String> {
        for (id, d) in &self.dispatches {
            if let Some(c) = d.cause {
                if !self.dispatches.contains_key(&c) {
                    return Err(format!(
                        "dispatch {} has unobserved cause {}",
                        id.render(),
                        c.render()
                    ));
                }
                if c >= *id {
                    return Err(format!(
                        "cause {} does not precede child {}",
                        c.render(),
                        id.render()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Stable FNV-1a digest over the full canonical dump — the
    /// causal-index fingerprint CI diffs at `--threads 1` vs `4`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for line in self.dump() {
            h = crate::fnv1a(line.as_bytes(), h);
            h = crate::fnv1a(b"\n", h);
        }
        h
    }

    /// Canonical text dump: one line per dispatch, in canonical order,
    /// with its cause and emitted-event count.
    pub fn dump(&self) -> Vec<String> {
        self.dispatches
            .iter()
            .map(|(id, d)| {
                format!(
                    "{} cause={} records={}",
                    id.render(),
                    d.cause.map(|c| c.render()).unwrap_or_else(|| "-".into()),
                    d.records.len()
                )
            })
            .collect()
    }
}

impl Sink for CausalIndex {
    /// Provenance-blind delivery carries no dispatch identity; the
    /// index only learns from [`Sink::event_caused`] and [`Sink::link`].
    fn event(&mut self, _node: u32, _at: Ticks, _ev: &Event) {}

    fn event_caused(&mut self, node: u32, at: Ticks, ev: &Event, prov: Provenance) {
        let group = match ev {
            Event::DataDelivered { group, .. }
            | Event::LocalMemberJoined { group }
            | Event::LocalMemberLeft { group } => Some(group.addr().0),
            _ => None,
        };
        self.dispatches
            .entry(prov.id)
            .or_insert_with(|| Dispatch {
                cause: prov.cause,
                records: Vec::new(),
            })
            .records
            .push(Record {
                node,
                at,
                kind: ev.kind(),
                group,
                line: ev.render(),
            });
    }

    fn link(&mut self, id: EventId, cause: Option<EventId>) {
        if self.dispatches.contains_key(&id) {
            return;
        }
        self.dispatches.insert(
            id,
            Dispatch {
                cause,
                records: Vec::new(),
            },
        );
        if let Some(c) = cause {
            self.children.entry(c).or_default().push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{Addr, Group};

    fn id(time: Ticks, epoch: u8, origin: u32, seq: u64) -> EventId {
        EventId {
            time,
            epoch,
            origin,
            seq,
        }
    }

    /// start(n0) -> deliver(n1) -> deliver(n2), plus a scripted fault
    /// root with one child.
    fn small_dag() -> CausalIndex {
        let g = Group::test(7);
        let mut ix = CausalIndex::new();
        let root = id(0, 0, 1, 0);
        let hop1 = id(5, 2, 2, 0);
        let hop2 = id(9, 2, 3, 0);
        let fault = id(20, 1, 0, 3);
        let after = id(25, 2, 2, 4);
        ix.link(root, None);
        ix.link(hop1, Some(root));
        ix.link(hop2, Some(hop1));
        ix.link(fault, None);
        ix.link(after, Some(fault));
        ix.event_caused(
            1,
            5,
            &Event::LocalMemberJoined { group: g },
            Provenance {
                id: hop1,
                cause: Some(root),
            },
        );
        ix.event_caused(
            1,
            9,
            &Event::DataDelivered {
                group: g,
                source: Addr::new(10, 0, 0, 1),
            },
            Provenance {
                id: hop2,
                cause: Some(hop1),
            },
        );
        ix.event_caused(
            0,
            20,
            &Event::Fault {
                desc: "crash r2".into(),
            },
            Provenance {
                id: fault,
                cause: None,
            },
        );
        ix
    }

    #[test]
    fn backward_slice_walks_to_root() {
        let ix = small_dag();
        let slice = ix.backward_slice(id(9, 2, 3, 0));
        assert_eq!(
            slice,
            vec![
                "#0 [t0/e0/o1#0] n0 on-start",
                "    (silent)",
                "#1 [t5/e2/o2#0] n1",
                "    t5 r1 member-joined group=239.1.0.7",
                "#2 [t9/e2/o3#0] n2",
                "    t9 r1 data-delivered group=239.1.0.7 source=10.0.0.1",
            ]
        );
        assert!(ix.backward_slice(id(99, 2, 9, 9)).is_empty());
    }

    #[test]
    fn forward_slice_is_the_blast_radius() {
        let ix = small_dag();
        let fwd = ix.forward_slice(id(0, 0, 1, 0));
        assert_eq!(fwd, vec![id(0, 0, 1, 0), id(5, 2, 2, 0), id(9, 2, 3, 0)]);
        let roots = ix.fault_roots();
        assert_eq!(roots, vec![id(20, 1, 0, 3)]);
        assert_eq!(ix.forward_slice(roots[0]).len(), 2);
    }

    #[test]
    fn critical_path_attributes_the_dominant_hop() {
        let ix = small_dag();
        // Delivery and join are both on node 1 for group 7.
        let path = ix.critical_path(Group::test(7).addr().0, 1);
        assert_eq!(path[0], "join at t5, first delivery at t9 (latency 4)");
        assert!(path.iter().any(|l| l.contains("<- dominant")), "{path:?}");
        assert!(ix.critical_path(1234, 0).is_empty());
    }

    #[test]
    fn invariants_hold_and_fingerprint_is_stable() {
        let ix = small_dag();
        ix.check().expect("small DAG is well-formed");
        assert_eq!(ix.fingerprint(), small_dag().fingerprint());
        assert_eq!(ix.len(), 5);

        let mut bad = CausalIndex::new();
        bad.link(id(5, 2, 1, 0), Some(id(9, 2, 1, 1)));
        assert!(bad.check().is_err(), "cause after child must be rejected");
        let mut orphan = CausalIndex::new();
        orphan.link(id(5, 2, 1, 0), None);
        let d = orphan.dispatches.get_mut(&id(5, 2, 1, 0)).unwrap();
        d.cause = Some(id(1, 2, 9, 9));
        assert!(orphan.check().is_err(), "unobserved cause must be rejected");
    }

    #[test]
    fn anchors_find_flag_transitions() {
        let g = Group::test(7);
        let mut ix = small_dag();
        let hop3 = id(30, 2, 4, 0);
        ix.link(hop3, Some(id(9, 2, 3, 0)));
        ix.event_caused(
            3,
            30,
            &Event::EntryCreated {
                group: g,
                key: crate::EntryKey::Star,
                flags: crate::flags::WC,
            },
            Provenance {
                id: hop3,
                cause: Some(id(9, 2, 3, 0)),
            },
        );
        assert_eq!(ix.last_flag_transition(None), Some(hop3));
        assert_eq!(ix.last_flag_transition(Some(3)), Some(hop3));
        assert_eq!(ix.last_flag_transition(Some(9)), None);
        assert_eq!(ix.last_event_on(1), Some(id(9, 2, 3, 0)));
    }
}
