//! Structured protocol-event telemetry.
//!
//! The paper's evaluation (§1, §4) compares protocols by the state they
//! hold, the control messages they process, and the data packets they
//! forward. This crate provides the per-event observability layer that
//! makes those comparisons possible inside the simulator: a typed
//! [`Event`] stream emitted by netsim, the node adapter, and all three
//! protocol engines, consumed through the [`Sink`] trait.
//!
//! Three sinks ship with the crate:
//!
//! * [`FlightRecorder`] — a bounded per-node ring buffer of rendered
//!   events, dumped into replay artifacts when an oracle fires;
//! * [`JsonlSink`] — a JSON-lines writer keyed by deterministic sim
//!   time, whose byte stream doubles as the determinism fingerprint;
//! * [`MetricsAggregator`] — sim-time histograms of join latency,
//!   SPT-switchover time, and post-fault reconvergence time.
//!
//! # Determinism rules
//!
//! Telemetry *observes*; it never participates. Emitters consume no
//! randomness and take no behavioral branches on whether a sink is
//! attached, so packet traces are bit-identical with telemetry on or
//! off. Every event is keyed by deterministic sim time ([`Ticks`]) —
//! wall-clock time never appears in an event or a rendered line.
//!
//! # Zero overhead when disabled
//!
//! The [`Telem`] handle is an `Option` internally; [`Telem::emit`]
//! takes a closure so a disabled handle costs one branch and never
//! constructs the [`Event`].

#![warn(missing_docs)]

pub mod trace;

pub use trace::CausalIndex;

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

use wire::{Addr, Group, Message};

/// Simulator time in ticks.
///
/// This crate sits below `netsim` in the dependency graph (so the
/// protocol crates can use it without a cycle), so it cannot name
/// `netsim::SimTime`; emitters pass `SimTime.0` and sinks treat the
/// value as opaque ordered time.
pub type Ticks = u64;

/// The canonical identity of one simulator *dispatch* — the handling of
/// a single event (packet delivery, timer firing, scripted fault, or a
/// node's `on_start`). The fields mirror netsim's internal canonical
/// event key, which is partition-independent by construction: the same
/// dispatch has the same `EventId` at any `--threads` and under any
/// region partitioning.
///
/// Ordering is lexicographic `(time, epoch, origin, seq)` — exactly the
/// simulator's deterministic execution order — so "parent precedes
/// child" is checkable as plain `<` on ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// Sim time of the dispatch.
    pub time: Ticks,
    /// Scheduling epoch (0 = start-of-world, 1 = script, 2 = runtime).
    pub epoch: u8,
    /// Origin discriminator (node index + 1, or 0 for scripts).
    pub origin: u32,
    /// Per-origin dispatch sequence number.
    pub seq: u64,
}

impl EventId {
    /// Stable short rendering, e.g. `t240/e2/o3#17` — part of the
    /// causal-slice byte format asserted identical across `--threads`.
    pub fn render(&self) -> String {
        format!(
            "t{}/e{}/o{}#{}",
            self.time, self.epoch, self.origin, self.seq
        )
    }
}

/// Causal provenance of one emitted event: the dispatch it was emitted
/// from (`id`) and that dispatch's own cause — the dispatch that created
/// the event being handled (`None` for roots: `on_start` and scripted
/// faults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// The dispatch this event was emitted during.
    pub id: EventId,
    /// The dispatch that caused `id` to run, if any.
    pub cause: Option<EventId>,
}

/// Bit flags describing a multicast state entry, shared across all
/// three protocols so sinks can diff transitions uniformly.
///
/// PIM uses [`flags::WC`]/[`flags::RP`]/[`flags::SPT`] exactly as the
/// paper's join/prune entry bits; DVMRP expresses its negative cache
/// with [`flags::PRUNED`]; CBT expresses tree membership with
/// [`flags::ON_TREE`].
pub mod flags {
    /// Wildcard entry — PIM (*,G).
    pub const WC: u8 = 1;
    /// RP-bit — state toward the rendezvous point (also marks PIM
    /// negative cache entries).
    pub const RP: u8 = 2;
    /// SPT-bit — packets arriving on the shortest-path tree.
    pub const SPT: u8 = 4;
    /// DVMRP prune state: the entry's upstream has been pruned.
    pub const PRUNED: u8 = 8;
    /// CBT: this router is attached to the group's core-based tree.
    pub const ON_TREE: u8 = 16;

    /// Render a flag set as a stable short string, e.g. `WC|RP`.
    /// Empty sets render as `-`.
    pub fn render(f: u8) -> String {
        const NAMES: [(u8, &str); 5] = [
            (WC, "WC"),
            (RP, "RP"),
            (SPT, "SPT"),
            (PRUNED, "PRUNED"),
            (ON_TREE, "ON_TREE"),
        ];
        let mut out = String::new();
        for (bit, name) in NAMES {
            if f & bit != 0 {
                if !out.is_empty() {
                    out.push('|');
                }
                out.push_str(name);
            }
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }
}

/// The key of a multicast routing entry: the shared tree or a source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EntryKey {
    /// The shared (*,G) entry.
    Star,
    /// A source-specific (S,G) entry.
    Source(Addr),
}

impl fmt::Display for EntryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryKey::Star => write!(f, "*"),
            EntryKey::Source(s) => write!(f, "{s}"),
        }
    }
}

/// One structured protocol event, keyed by the emitting node and sim
/// time at the [`Sink`] boundary (see [`Sink::event`]).
///
/// The taxonomy covers every transition class the paper's evaluation
/// reasons about: entry lifecycle with flag deltas, timers, control
/// traffic, local membership, elections, RP failover, SPT switchover,
/// and unicast route change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A (*,G) or (S,G) entry was created with the given flags.
    EntryCreated {
        /// Group the entry belongs to.
        group: Group,
        /// Shared-tree or source key.
        key: EntryKey,
        /// Initial [`flags`] bit set.
        flags: u8,
    },
    /// An entry's flag bits changed (e.g. SPT-bit set, prune installed).
    EntryModified {
        /// Group the entry belongs to.
        group: Group,
        /// Shared-tree or source key.
        key: EntryKey,
        /// Flag bits before the transition.
        from: u8,
        /// Flag bits after the transition.
        to: u8,
    },
    /// An entry timed out or was deleted.
    EntryExpired {
        /// Group the entry belonged to.
        group: Group,
        /// Shared-tree or source key.
        key: EntryKey,
    },
    /// A timer was armed for `deadline`.
    TimerArmed {
        /// Node-local timer token.
        token: u64,
        /// Absolute sim-time deadline.
        deadline: Ticks,
    },
    /// A live timer fired.
    TimerFired {
        /// Node-local timer token.
        token: u64,
    },
    /// A pending timer was cancelled before firing.
    TimerCancelled {
        /// Node-local timer token.
        token: u64,
    },
    /// A control message was sent (join/prune, register, graft, hello…).
    CtrlSend {
        /// Stable message-kind name from [`message_kind`].
        kind: &'static str,
        /// Destination address.
        dst: Addr,
    },
    /// A control message was received and decoded.
    CtrlRecv {
        /// Stable message-kind name from [`message_kind`].
        kind: &'static str,
        /// Source address.
        src: Addr,
    },
    /// Multicast data was delivered to local group members.
    DataDelivered {
        /// Destination group.
        group: Group,
        /// Original data source.
        source: Addr,
    },
    /// IGMP reported a first local member for `group`.
    LocalMemberJoined {
        /// The joined group.
        group: Group,
    },
    /// IGMP reported the last local member of `group` expired.
    LocalMemberLeft {
        /// The departed group.
        group: Group,
    },
    /// This router's designated-router status on an interface changed.
    DrChanged {
        /// Interface index.
        iface: u32,
        /// Whether this router is now the DR.
        is_dr: bool,
    },
    /// This router's IGMP querier status on an interface changed.
    QuerierChanged {
        /// Interface index.
        iface: u32,
        /// Whether this router is now the querier.
        is_querier: bool,
    },
    /// The group's reachable RP changed (paper §3.3: RP failure).
    RpFailover {
        /// The affected group.
        group: Group,
        /// Previous RP.
        from: Addr,
        /// Newly selected RP.
        to: Addr,
    },
    /// A receiver-side switch from shared tree to source SPT began.
    SptSwitchStart {
        /// The affected group.
        group: Group,
        /// The source being switched to.
        source: Addr,
    },
    /// The unicast RIB's route toward `dst` changed.
    RouteChanged {
        /// Route destination.
        dst: Addr,
    },
    /// An injected fault (scenario schedules mark these so sinks can
    /// measure post-fault reconvergence).
    Fault {
        /// Human-readable fault description, e.g. `crash r2`.
        desc: String,
    },
    /// A received payload failed to decode and was dropped (adversarial
    /// channel accounting; never opens a reconvergence window).
    DecodeFailed {
        /// Stable [`wire::DecodeError::kind`] label, e.g. `checksum`.
        kind: &'static str,
        /// Ingress interface the undecodable payload arrived on.
        iface: u32,
    },
    /// The channel model impaired a packet copy in flight (corrupted,
    /// duplicated, or delayed out of order). A per-packet mark, distinct
    /// from [`Event::Fault`] so it never opens a reconvergence window.
    ChannelImpaired {
        /// What happened: `corrupt`, `duplicate`, or `reorder`.
        what: &'static str,
        /// The link the impairment occurred on.
        link: u32,
    },
    /// The capacity model tail-dropped a packet at a full transmit
    /// queue. Per-packet congestion noise like [`Event::ChannelImpaired`]
    /// — never opens a reconvergence window.
    QueueDrop {
        /// Dropped packet's class: `data` or `ctrl`.
        what: &'static str,
        /// The congested link.
        link: u32,
    },
    /// The capacity model counted an ECN-style congestion mark (an
    /// enqueue crossed the link's marking threshold).
    EcnMark {
        /// The congested link.
        link: u32,
    },
    /// A transmit-queue backlog reached a new per-direction peak
    /// power-of-2 bucket. Rate-limited by construction — at most 64
    /// events per link direction however long the overload lasts — so
    /// the telemetry stream stays bounded and deterministic.
    QueueDepth {
        /// The congested link.
        link: u32,
        /// The backlog, in bytes, at the new peak.
        bytes: u64,
    },
}

impl Event {
    /// Stable single-line text rendering (used by the flight recorder
    /// and replay artifacts; changing it invalidates recorded dumps).
    pub fn render(&self) -> String {
        match self {
            Event::EntryCreated {
                group,
                key,
                flags: f,
            } => {
                format!("entry-created ({key},{group}) flags={}", flags::render(*f))
            }
            Event::EntryModified {
                group,
                key,
                from,
                to,
            } => format!(
                "entry-modified ({key},{group}) {}->{}",
                flags::render(*from),
                flags::render(*to)
            ),
            Event::EntryExpired { group, key } => format!("entry-expired ({key},{group})"),
            Event::TimerArmed { token, deadline } => {
                format!("timer-armed token={token} deadline={deadline}")
            }
            Event::TimerFired { token } => format!("timer-fired token={token}"),
            Event::TimerCancelled { token } => format!("timer-cancelled token={token}"),
            Event::CtrlSend { kind, dst } => format!("ctrl-send {kind} dst={dst}"),
            Event::CtrlRecv { kind, src } => format!("ctrl-recv {kind} src={src}"),
            Event::DataDelivered { group, source } => {
                format!("data-delivered group={group} source={source}")
            }
            Event::LocalMemberJoined { group } => format!("member-joined group={group}"),
            Event::LocalMemberLeft { group } => format!("member-left group={group}"),
            Event::DrChanged { iface, is_dr } => format!("dr-changed iface={iface} is_dr={is_dr}"),
            Event::QuerierChanged { iface, is_querier } => {
                format!("querier-changed iface={iface} is_querier={is_querier}")
            }
            Event::RpFailover { group, from, to } => {
                format!("rp-failover group={group} from={from} to={to}")
            }
            Event::SptSwitchStart { group, source } => {
                format!("spt-switch-start group={group} source={source}")
            }
            Event::RouteChanged { dst } => format!("route-changed dst={dst}"),
            Event::Fault { desc } => format!("fault {desc}"),
            Event::DecodeFailed { kind, iface } => {
                format!("decode-failed kind={kind} iface={iface}")
            }
            Event::ChannelImpaired { what, link } => format!("channel {what} link={link}"),
            Event::QueueDrop { what, link } => format!("queue-drop {what} link={link}"),
            Event::EcnMark { link } => format!("ecn-mark link={link}"),
            Event::QueueDepth { link, bytes } => format!("queue-depth link={link} bytes={bytes}"),
        }
    }

    /// The event's stable kind tag, used as the JSON `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EntryCreated { .. } => "entry_created",
            Event::EntryModified { .. } => "entry_modified",
            Event::EntryExpired { .. } => "entry_expired",
            Event::TimerArmed { .. } => "timer_armed",
            Event::TimerFired { .. } => "timer_fired",
            Event::TimerCancelled { .. } => "timer_cancelled",
            Event::CtrlSend { .. } => "ctrl_send",
            Event::CtrlRecv { .. } => "ctrl_recv",
            Event::DataDelivered { .. } => "data_delivered",
            Event::LocalMemberJoined { .. } => "member_joined",
            Event::LocalMemberLeft { .. } => "member_left",
            Event::DrChanged { .. } => "dr_changed",
            Event::QuerierChanged { .. } => "querier_changed",
            Event::RpFailover { .. } => "rp_failover",
            Event::SptSwitchStart { .. } => "spt_switch_start",
            Event::RouteChanged { .. } => "route_changed",
            Event::Fault { .. } => "fault",
            Event::DecodeFailed { .. } => "decode_failed",
            Event::ChannelImpaired { .. } => "channel_impaired",
            Event::QueueDrop { .. } => "queue_drop",
            Event::EcnMark { .. } => "ecn_mark",
            Event::QueueDepth { .. } => "queue_depth",
        }
    }

    /// Render as one JSON object (no trailing newline). Hand-rolled —
    /// the workspace builds offline with no serde — but every field is
    /// either numeric, a dotted-quad, or an escaped string, so the
    /// output is valid JSON.
    pub fn to_json(&self, node: u32, at: Ticks) -> String {
        let mut s = format!("{{\"t\":{at},\"node\":{node},\"ev\":\"{}\"", self.kind());
        match self {
            Event::EntryCreated {
                group,
                key,
                flags: f,
            } => {
                s.push_str(&format!(
                    ",\"group\":\"{group}\",\"key\":\"{key}\",\"flags\":\"{}\"",
                    flags::render(*f)
                ));
            }
            Event::EntryModified {
                group,
                key,
                from,
                to,
            } => {
                s.push_str(&format!(
                    ",\"group\":\"{group}\",\"key\":\"{key}\",\"from\":\"{}\",\"to\":\"{}\"",
                    flags::render(*from),
                    flags::render(*to)
                ));
            }
            Event::EntryExpired { group, key } => {
                s.push_str(&format!(",\"group\":\"{group}\",\"key\":\"{key}\""));
            }
            Event::TimerArmed { token, deadline } => {
                s.push_str(&format!(",\"token\":{token},\"deadline\":{deadline}"));
            }
            Event::TimerFired { token } | Event::TimerCancelled { token } => {
                s.push_str(&format!(",\"token\":{token}"));
            }
            Event::CtrlSend { kind, dst } => {
                s.push_str(&format!(",\"kind\":\"{kind}\",\"dst\":\"{dst}\""));
            }
            Event::CtrlRecv { kind, src } => {
                s.push_str(&format!(",\"kind\":\"{kind}\",\"src\":\"{src}\""));
            }
            Event::DataDelivered { group, source } => {
                s.push_str(&format!(",\"group\":\"{group}\",\"source\":\"{source}\""));
            }
            Event::LocalMemberJoined { group } | Event::LocalMemberLeft { group } => {
                s.push_str(&format!(",\"group\":\"{group}\""));
            }
            Event::DrChanged { iface, is_dr } => {
                s.push_str(&format!(",\"iface\":{iface},\"is_dr\":{is_dr}"));
            }
            Event::QuerierChanged { iface, is_querier } => {
                s.push_str(&format!(",\"iface\":{iface},\"is_querier\":{is_querier}"));
            }
            Event::RpFailover { group, from, to } => {
                s.push_str(&format!(
                    ",\"group\":\"{group}\",\"from\":\"{from}\",\"to\":\"{to}\""
                ));
            }
            Event::SptSwitchStart { group, source } => {
                s.push_str(&format!(",\"group\":\"{group}\",\"source\":\"{source}\""));
            }
            Event::RouteChanged { dst } => {
                s.push_str(&format!(",\"dst\":\"{dst}\""));
            }
            Event::Fault { desc } => {
                s.push_str(",\"desc\":\"");
                for c in desc.chars() {
                    match c {
                        '"' => s.push_str("\\\""),
                        '\\' => s.push_str("\\\\"),
                        '\n' => s.push_str("\\n"),
                        c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
                        c => s.push(c),
                    }
                }
                s.push('"');
            }
            Event::DecodeFailed { kind, iface } => {
                s.push_str(&format!(",\"kind\":\"{kind}\",\"iface\":{iface}"));
            }
            Event::ChannelImpaired { what, link } | Event::QueueDrop { what, link } => {
                s.push_str(&format!(",\"what\":\"{what}\",\"link\":{link}"));
            }
            Event::EcnMark { link } => {
                s.push_str(&format!(",\"link\":{link}"));
            }
            Event::QueueDepth { link, bytes } => {
                s.push_str(&format!(",\"link\":{link},\"bytes\":{bytes}"));
            }
        }
        s.push('}');
        s
    }
}

/// The stable short name of a wire message, used by the `CtrlSend` /
/// `CtrlRecv` events. One name per [`Message`] variant.
pub fn message_kind(msg: &Message) -> &'static str {
    match msg {
        Message::HostQuery(_) => "igmp-query",
        Message::HostReport(_) => "igmp-report",
        Message::RpMapping(_) => "rp-mapping",
        Message::PimQuery(_) => "pim-query",
        Message::PimRegister(_) => "pim-register",
        Message::PimJoinPrune(_) => "pim-join-prune",
        Message::PimRpReachability(_) => "pim-rp-reachability",
        Message::DvmrpProbe(_) => "dvmrp-probe",
        Message::DvmrpPrune(_) => "dvmrp-prune",
        Message::DvmrpGraft(_) => "dvmrp-graft",
        Message::DvmrpGraftAck(_) => "dvmrp-graft-ack",
        Message::CbtJoinRequest(_) => "cbt-join",
        Message::CbtJoinAck(_) => "cbt-join-ack",
        Message::CbtEcho(_) => "cbt-echo",
        Message::CbtEchoReply(_) => "cbt-echo-reply",
        Message::CbtQuit(_) => "cbt-quit",
        Message::CbtFlushTree(_) => "cbt-flush",
        Message::DvUpdate(_) => "dv-update",
        Message::Lsa(_) => "lsa",
        Message::Hello(_) => "hello",
    }
}

/// A consumer of structured events.
///
/// Sinks receive every event with the emitting node index and the sim
/// time of emission. Implementations must be order-preserving and must
/// not feed anything back into the simulation.
pub trait Sink {
    /// Consume one event emitted by `node` at sim time `at`.
    fn event(&mut self, node: u32, at: Ticks, ev: &Event);

    /// Consume one event with causal provenance attached. The default
    /// forwards to [`Sink::event`], so provenance-blind sinks (JSONL,
    /// flight recorder, metrics, coverage) see the identical stream they
    /// always did — byte-for-byte, which keeps committed replay
    /// fingerprints valid.
    fn event_caused(&mut self, node: u32, at: Ticks, ev: &Event, _prov: Provenance) {
        self.event(node, at, ev);
    }

    /// Observe one dispatch in the causal DAG: `id` ran because `cause`
    /// created the event it handled (`None` for roots). Delivered for
    /// *every* dispatch — including silent ones that emit no events, so
    /// backward slices never have holes where a hop merely forwarded
    /// data. Default is a no-op.
    fn link(&mut self, _id: EventId, _cause: Option<EventId>) {}
}

/// The shared handle every emitter clones: a thread-safe, shareable
/// sink. `Send` is required because the parallel simulation core hands
/// per-region buffers (which are sinks themselves) across scoped
/// threads; the mutex is uncontended in practice — each region's
/// buffer is only touched by the thread running that region.
pub type SharedSink = Arc<Mutex<dyn Sink + Send>>;

/// A shareable handle to a [`Sink`], cloned into every emitter.
///
/// `Telem::default()` is the disabled handle: [`Telem::emit`] reduces
/// to a single `None` branch and the event-constructing closure is
/// never called — the zero-overhead-when-disabled contract.
#[derive(Clone, Default)]
pub struct Telem {
    inner: Option<(SharedSink, u32)>,
}

impl fmt::Debug for Telem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some((_, node)) => write!(f, "Telem(node {node})"),
            None => write!(f, "Telem(disabled)"),
        }
    }
}

impl Telem {
    /// An enabled handle delivering events from `node` into `sink`.
    pub fn attached(sink: SharedSink, node: u32) -> Telem {
        Telem {
            inner: Some((sink, node)),
        }
    }

    /// The disabled handle (same as `Telem::default()`).
    pub fn disabled() -> Telem {
        Telem::default()
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event at sim time `at`. The closure runs only when a
    /// sink is attached, so disabled emission never allocates or
    /// formats anything.
    #[inline]
    pub fn emit(&self, at: Ticks, f: impl FnOnce() -> Event) {
        if let Some((sink, node)) = &self.inner {
            let ev = f();
            sink.lock().expect("sink poisoned").event(*node, at, &ev);
        }
    }

    /// A handle on the same sink re-keyed to another node index (the
    /// world clones one handle per node).
    pub fn for_node(&self, node: u32) -> Telem {
        Telem {
            inner: self
                .inner
                .as_ref()
                .map(|(sink, _)| (Arc::clone(sink), node)),
        }
    }
}

/// A bounded per-node ring buffer of rendered events — the flight
/// recorder dumped into replay artifacts when an oracle fires.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    cap: usize,
    rings: BTreeMap<u32, VecDeque<String>>,
}

/// Default per-node flight-recorder capacity.
pub const FLIGHT_RECORDER_CAP: usize = 256;

impl FlightRecorder {
    /// A recorder keeping the last `cap` events per node.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            rings: BTreeMap::new(),
        }
    }

    /// The last recorded events of `node`, oldest first, each line
    /// formatted `t<ticks> <event>`.
    pub fn dump(&self, node: u32) -> Vec<String> {
        self.rings
            .get(&node)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Node indices that have recorded at least one event.
    pub fn nodes(&self) -> Vec<u32> {
        self.rings.keys().copied().collect()
    }
}

impl Sink for FlightRecorder {
    fn event(&mut self, node: u32, at: Ticks, ev: &Event) {
        let ring = self.rings.entry(node).or_default();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(format!("t{at} {}", ev.render()));
    }
}

/// A JSON-lines event writer. One object per line, keyed by sim time.
///
/// With `W = Vec<u8>` the accumulated bytes *are* the deterministic
/// event stream: the scenario replay test asserts byte-identity of two
/// runs' buffers.
#[derive(Debug, Default)]
pub struct JsonlSink<W: Write> {
    out: W,
    /// Write-error count; sinks must never panic mid-simulation.
    pub errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing JSONL to `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out, errors: 0 }
    }

    /// Consume the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// The writer, for in-place inspection (e.g. a `Vec<u8>` buffer).
    pub fn get_ref(&self) -> &W {
        &self.out
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn event(&mut self, node: u32, at: Ticks, ev: &Event) {
        let line = ev.to_json(node, at);
        if writeln!(self.out, "{line}").is_err() {
            self.errors += 1;
        }
    }
}

/// Exact percentile of an unsorted sample set by the nearest-rank
/// method (`p` in `[0, 100]`); zero when empty. Shared by
/// [`Histogram::percentile`] and consumers that pool raw samples across
/// many runs (the explorer's chaos summary).
pub fn percentile_of(samples: &[Ticks], p: f64) -> Ticks {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted: Vec<Ticks> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A power-of-two-bucketed histogram of sim-time durations.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ticks (bucket 0 also
/// takes zero). Log-scale because convergence times span from one-tick
/// LAN overrides to multi-hundred-tick timeout recoveries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: Ticks,
    samples: Vec<Ticks>,
}

impl Histogram {
    /// Record one duration sample.
    pub fn record(&mut self, d: Ticks) {
        let idx = (Ticks::BITS - d.leading_zeros()).saturating_sub(1) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(d);
        self.max = self.max.max(d);
        self.samples.push(d);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> Ticks {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as Ticks
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> Ticks {
        self.max
    }

    /// The raw samples, in recording order. Log2 buckets summarize the
    /// shape; exact percentile reporting needs the originals.
    pub fn samples(&self) -> &[Ticks] {
        &self.samples
    }

    /// Exact percentile by the nearest-rank method (`p` in `[0, 100]`);
    /// zero when empty. `percentile(50)` is the median, `percentile(100)`
    /// equals [`Histogram::max`].
    pub fn percentile(&self, p: f64) -> Ticks {
        percentile_of(&self.samples, p)
    }

    /// Render as `count=N mean=M max=X buckets=[..]`.
    pub fn render(&self) -> String {
        format!(
            "count={} mean={} max={} buckets={:?}",
            self.count,
            self.mean(),
            self.max,
            self.buckets
        )
    }
}

/// Aggregates convergence metrics from the event stream:
///
/// * **join latency** — first local member join of (node, group) to
///   first data delivery there;
/// * **SPT-switchover time** — [`Event::SptSwitchStart`] to the
///   (S,G) entry gaining the SPT bit on the same node;
/// * **reconvergence time** — each [`Event::Fault`] to the last
///   protocol state change anywhere (closed by [`MetricsAggregator::finish`]).
#[derive(Debug, Default)]
pub struct MetricsAggregator {
    /// Join-latency histogram (ticks from member-join to first delivery).
    pub join_latency: Histogram,
    /// SPT-switchover histogram (ticks from switch start to SPT bit set).
    pub spt_switch: Histogram,
    /// Post-fault reconvergence histogram (ticks from fault to last
    /// state change before quiescence).
    pub reconvergence: Histogram,
    /// Transmit-queue peak-depth samples in bytes (one per
    /// [`Event::QueueDepth`], i.e. per new per-direction peak bucket) —
    /// the p50/p99 source for the EXPERIMENTS congestion tables.
    pub queue_depth: Histogram,
    /// Capacity-model tail drops observed (both classes).
    pub queue_drops: u64,
    /// ECN-style congestion marks observed.
    pub ecn_marks: u64,
    pending_joins: BTreeMap<(u32, u32), Ticks>,
    pending_spt: BTreeMap<(u32, u32, u32), Ticks>,
    open_fault: Option<Ticks>,
    last_state_change: Option<Ticks>,
}

impl MetricsAggregator {
    /// A fresh aggregator.
    pub fn new() -> MetricsAggregator {
        MetricsAggregator::default()
    }

    /// Close the open post-fault window (call once after the run; the
    /// final fault's reconvergence time is unknown until quiescence).
    pub fn finish(&mut self) {
        if let (Some(f), Some(last)) = (self.open_fault.take(), self.last_state_change) {
            if last >= f {
                self.reconvergence.record(last - f);
            }
        }
    }

    /// Render the three histograms as stable text, one per line.
    pub fn render(&self) -> String {
        format!(
            "join_latency {}\nspt_switch {}\nreconvergence {}",
            self.join_latency.render(),
            self.spt_switch.render(),
            self.reconvergence.render()
        )
    }

    fn state_changed(&mut self, at: Ticks) {
        self.last_state_change = Some(at);
    }
}

impl Sink for MetricsAggregator {
    fn event(&mut self, node: u32, at: Ticks, ev: &Event) {
        match ev {
            Event::LocalMemberJoined { group } => {
                self.pending_joins
                    .entry((node, group.addr().0))
                    .or_insert(at);
                self.state_changed(at);
            }
            Event::DataDelivered { group, .. } => {
                if let Some(t0) = self.pending_joins.remove(&(node, group.addr().0)) {
                    self.join_latency.record(at - t0);
                }
            }
            Event::SptSwitchStart { group, source } => {
                self.pending_spt
                    .entry((node, group.addr().0, source.0))
                    .or_insert(at);
                self.state_changed(at);
            }
            Event::EntryModified {
                group,
                key,
                from,
                to,
            } => {
                if to & flags::SPT != 0 && from & flags::SPT == 0 {
                    if let EntryKey::Source(s) = key {
                        if let Some(t0) = self.pending_spt.remove(&(node, group.addr().0, s.0)) {
                            self.spt_switch.record(at - t0);
                        }
                    }
                }
                self.state_changed(at);
            }
            Event::EntryCreated { .. }
            | Event::EntryExpired { .. }
            | Event::RpFailover { .. }
            | Event::RouteChanged { .. }
            | Event::DrChanged { .. }
            | Event::QuerierChanged { .. }
            | Event::LocalMemberLeft { .. } => self.state_changed(at),
            Event::Fault { .. } => {
                if let (Some(f), Some(last)) = (self.open_fault, self.last_state_change) {
                    if last >= f {
                        self.reconvergence.record(last - f);
                    }
                }
                self.open_fault = Some(at);
                self.last_state_change = Some(at);
            }
            // Congestion marks are per-packet noise too, but worth
            // aggregating: queue-depth peaks feed the p50/p99 tables and
            // the drop/mark totals cross-check the counters. Still never
            // a state change — congestion must not open or extend a
            // reconvergence window.
            Event::QueueDepth { bytes, .. } => self.queue_depth.record(*bytes),
            Event::QueueDrop { .. } => self.queue_drops += 1,
            Event::EcnMark { .. } => self.ecn_marks += 1,
            // Channel impairments and decode-failure drops are per-packet
            // noise, not protocol state changes: they must neither open
            // reconvergence windows (only `Fault` does) nor extend one.
            Event::TimerArmed { .. }
            | Event::TimerFired { .. }
            | Event::TimerCancelled { .. }
            | Event::CtrlSend { .. }
            | Event::CtrlRecv { .. }
            | Event::DecodeFailed { .. }
            | Event::ChannelImpaired { .. } => {}
        }
    }
}

/// Fans one event stream out to several child sinks in order.
///
/// Callers keep concrete `Arc<Mutex<…>>` clones of the children to
/// read results after the run (an `Arc<Mutex<FlightRecorder>>`
/// coerces to [`SharedSink`] when pushed here).
#[derive(Clone, Default)]
pub struct Fanout {
    children: Vec<SharedSink>,
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fanout({} children)", self.children.len())
    }
}

impl Fanout {
    /// An empty fanout.
    pub fn new() -> Fanout {
        Fanout::default()
    }

    /// Append a child sink.
    pub fn push(&mut self, child: SharedSink) {
        self.children.push(child);
    }
}

impl Sink for Fanout {
    fn event(&mut self, node: u32, at: Ticks, ev: &Event) {
        for child in &self.children {
            child.lock().expect("sink poisoned").event(node, at, ev);
        }
    }

    fn event_caused(&mut self, node: u32, at: Ticks, ev: &Event, prov: Provenance) {
        for child in &self.children {
            child
                .lock()
                .expect("sink poisoned")
                .event_caused(node, at, ev, prov);
        }
    }

    fn link(&mut self, id: EventId, cause: Option<EventId>) {
        for child in &self.children {
            child.lock().expect("sink poisoned").link(id, cause);
        }
    }
}

// ---------------------------------------------------------------------
// Coverage: folding the event stream into a feedback signal
// ---------------------------------------------------------------------

/// FNV-1a over raw bytes — the stable hash every coverage feature and
/// the coverage-map digest are built from. Implemented locally (not
/// `DefaultHasher`) so feature ids and map hashes are stable across
/// Rust releases: committed corpus artifacts and the search corpus
/// outlive any one toolchain.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Derive a stable coverage-feature id from a class label and its
/// numeric parts. Same inputs → same id, on every platform, forever.
pub fn feature(class: &str, parts: &[u64]) -> u64 {
    let mut h = fnv1a(class.as_bytes(), FNV_OFFSET);
    for p in parts {
        h = fnv1a(&p.to_le_bytes(), h);
    }
    h
}

/// Stable hash of a short string (event-kind tags, oracle names) for
/// use as a [`feature`] part.
pub fn strpart(s: &str) -> u64 {
    fnv1a(s.as_bytes(), FNV_OFFSET)
}

/// A coverage map: distinct features with AFL-style log2-bucketed hit
/// counts. The map is a *set-with-magnitudes*, not a sequence — merging
/// is associative and order-independent, so per-protocol maps folded in
/// any order produce the identical map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageMap {
    features: BTreeMap<u64, u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Record one hit of `feature`.
    pub fn record(&mut self, feature: u64) {
        *self.features.entry(feature).or_default() += 1;
    }

    /// Number of distinct features seen.
    pub fn distinct(&self) -> usize {
        self.features.len()
    }

    /// Total hits across all features.
    pub fn total(&self) -> u64 {
        self.features.values().sum()
    }

    /// Whether `feature` has been seen.
    pub fn contains(&self, feature: u64) -> bool {
        self.features.contains_key(&feature)
    }

    /// Features in `self` that `base` has never seen — the novelty
    /// signal coverage-guided search prioritizes on.
    pub fn novel_vs(&self, base: &CoverageMap) -> usize {
        self.features.keys().filter(|f| !base.contains(**f)).count()
    }

    /// Merge `other` into `self` (associative, order-independent).
    pub fn merge(&mut self, other: &CoverageMap) {
        for (f, n) in &other.features {
            *self.features.entry(*f).or_default() += n;
        }
    }

    /// The log2 hit bucket of a count (AFL-style): 1, 2, 3–4, 5–8, …
    /// Coverage treats "hit 7 times" and "hit 8 times" as the same
    /// signal but "once" vs "many" as different ones.
    pub fn bucket(n: u64) -> u32 {
        64 - n.leading_zeros()
    }

    /// Iterate the `(feature, hit-count)` pairs, in feature order.
    /// Consumers that accumulate bucketed coverage across many runs
    /// (the search loop's `(feature, bucket)` entry set) fold from
    /// here.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.features.iter().map(|(f, n)| (*f, *n))
    }

    /// Stable digest over the sorted `(feature, hit-bucket)` pairs.
    /// Byte-identical event streams yield the identical hash — the
    /// `--threads` determinism contract extends to coverage.
    pub fn stable_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (f, n) in &self.features {
            h = fnv1a(&f.to_le_bytes(), h);
            h = fnv1a(&CoverageMap::bucket(*n).to_le_bytes(), h);
        }
        h
    }
}

/// A [`Sink`] folding the event stream into a [`CoverageMap`] — the
/// feedback signal behind coverage-guided schedule search.
///
/// Features, all derived with the stable [`feature`] hash:
///
/// * **entry-flag transitions** — per node and entry-key class, the
///   `(from, to)` flag-bit deltas of `EntryCreated` / `EntryModified` /
///   `EntryExpired` (WC/RP/SPT/PRUNED/ON_TREE — the paper's own state
///   taxonomy);
/// * **event-kind digrams** — per node, each consecutive
///   `(previous kind, kind)` pair; timer arm/fire/cancel events are
///   kinds too, so distinct timer interleavings are distinct features;
/// * **control-message kinds** sent and received per node, decode
///   failures by kind, channel impairments by kind and link, and data
///   deliveries per node.
///
/// The optional `tag` is mixed into every feature so streams from
/// different contexts (e.g. different protocols under one search run)
/// never collide. The sink observes only — attaching it is invisible
/// to the packet trace, like every other sink.
#[derive(Clone, Debug, Default)]
pub struct CoverageSink {
    map: CoverageMap,
    tag: u64,
    last_kind: BTreeMap<u32, &'static str>,
}

impl CoverageSink {
    /// A sink whose features are tagged with `tag` (use 0 for none).
    pub fn new(tag: u64) -> CoverageSink {
        CoverageSink {
            map: CoverageMap::new(),
            tag,
            last_kind: BTreeMap::new(),
        }
    }

    /// The accumulated map.
    pub fn map(&self) -> &CoverageMap {
        &self.map
    }

    /// Consume the sink, returning the accumulated map.
    pub fn into_map(self) -> CoverageMap {
        self.map
    }
}

impl Sink for CoverageSink {
    fn event(&mut self, node: u32, _at: Ticks, ev: &Event) {
        let t = self.tag;
        let n = u64::from(node);
        let key_class = |k: &EntryKey| -> u64 {
            match k {
                EntryKey::Star => 0,
                EntryKey::Source(_) => 1,
            }
        };
        match ev {
            Event::EntryCreated { key, flags: f2, .. } => self.map.record(feature(
                "entry-flags",
                &[t, n, key_class(key), 0, u64::from(*f2)],
            )),
            Event::EntryModified { key, from, to, .. } => self.map.record(feature(
                "entry-flags",
                &[t, n, key_class(key), u64::from(*from), u64::from(*to)],
            )),
            Event::EntryExpired { key, .. } => self
                .map
                .record(feature("entry-expired", &[t, n, key_class(key)])),
            Event::CtrlSend { kind, .. } => {
                self.map
                    .record(feature("ctrl-send", &[t, n, strpart(kind)]));
            }
            Event::CtrlRecv { kind, .. } => {
                self.map
                    .record(feature("ctrl-recv", &[t, n, strpart(kind)]));
            }
            Event::DecodeFailed { kind, .. } => {
                self.map.record(feature("decode", &[t, n, strpart(kind)]));
            }
            Event::ChannelImpaired { what, link } => self
                .map
                .record(feature("impair", &[t, u64::from(*link), strpart(what)])),
            // Congestion features reward schedules that actually reach
            // queue pressure: drops by class and link, marks by link,
            // and depth by link + log2 backlog bucket.
            Event::QueueDrop { what, link } => self
                .map
                .record(feature("qdrop", &[t, u64::from(*link), strpart(what)])),
            Event::EcnMark { link } => self.map.record(feature("ecn", &[t, u64::from(*link)])),
            Event::QueueDepth { link, bytes } => self.map.record(feature(
                "qdepth",
                &[t, u64::from(*link), u64::from(CoverageMap::bucket(*bytes))],
            )),
            Event::DataDelivered { .. } => self.map.record(feature("deliver", &[t, n])),
            // Everything else contributes its kind per node (RP
            // failover, DR/querier flips, SPT switch starts, faults,
            // route changes, membership, timers).
            other => self
                .map
                .record(feature("ev", &[t, n, strpart(other.kind())])),
        }
        // Event-kind digram per node: the interleaving signal.
        let k = ev.kind();
        if let Some(prev) = self.last_kind.insert(node, k) {
            self.map
                .record(feature("digram", &[t, n, strpart(prev), strpart(k)]));
        }
    }
}

/// `show mroute`-style introspection: every protocol engine renders
/// its live multicast state — (*,G)/(S,G) entries with flag bits,
/// outgoing interfaces, and timers — as stable text for replay
/// artifacts and debugging sessions.
pub trait StateDump {
    /// Render the full multicast routing state at sim time `now`, one
    /// entry per line. Must be deterministic (iterate sorted maps) and
    /// free of wall-clock values.
    fn state_dump(&self, now: Ticks) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Group {
        Group::test(7)
    }

    #[test]
    fn flags_render_stable() {
        assert_eq!(flags::render(0), "-");
        assert_eq!(flags::render(flags::WC | flags::RP), "WC|RP");
        assert_eq!(flags::render(flags::SPT), "SPT");
        assert_eq!(
            flags::render(flags::PRUNED | flags::ON_TREE),
            "PRUNED|ON_TREE"
        );
    }

    #[test]
    fn disabled_handle_never_runs_closure() {
        let t = Telem::disabled();
        assert!(!t.is_enabled());
        t.emit(5, || panic!("closure must not run when disabled"));
    }

    #[test]
    fn flight_recorder_bounds_and_orders() {
        let rec = Arc::new(Mutex::new(FlightRecorder::new(3)));
        let t = Telem::attached(rec.clone(), 9);
        assert!(t.is_enabled());
        for i in 0..5u64 {
            t.emit(i, || Event::TimerFired { token: i });
        }
        let dump = rec.lock().unwrap().dump(9);
        assert_eq!(
            dump,
            vec![
                "t2 timer-fired token=2",
                "t3 timer-fired token=3",
                "t4 timer-fired token=4"
            ]
        );
        assert_eq!(rec.lock().unwrap().nodes(), vec![9]);
        assert!(rec.lock().unwrap().dump(1).is_empty());
    }

    #[test]
    fn jsonl_lines_are_stable() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.event(
            2,
            10,
            &Event::EntryCreated {
                group: g(),
                key: EntryKey::Star,
                flags: flags::WC | flags::RP,
            },
        );
        sink.event(
            2,
            11,
            &Event::Fault {
                desc: "crash \"r2\"".into(),
            },
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            text,
            concat!(
                "{\"t\":10,\"node\":2,\"ev\":\"entry_created\",\"group\":\"239.1.0.7\",",
                "\"key\":\"*\",\"flags\":\"WC|RP\"}\n",
                "{\"t\":11,\"node\":2,\"ev\":\"fault\",\"desc\":\"crash \\\"r2\\\"\"}\n"
            )
        );
    }

    #[test]
    fn histogram_buckets_log2() {
        let mut h = Histogram::default();
        for d in [0, 1, 2, 3, 4, 1000] {
            h.record(d);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), (1010 / 6) as Ticks);
        // 0,1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2; 1000 -> bucket 9.
        assert_eq!(
            h.render(),
            "count=6 mean=168 max=1000 buckets=[2, 2, 1, 0, 0, 0, 0, 0, 0, 1]"
        );
    }

    #[test]
    fn metrics_join_latency_and_spt() {
        let mut m = MetricsAggregator::new();
        let s = Addr::new(10, 0, 0, 1);
        m.event(1, 100, &Event::LocalMemberJoined { group: g() });
        m.event(
            1,
            130,
            &Event::DataDelivered {
                group: g(),
                source: s,
            },
        );
        // Second delivery for the same (node, group) is not a new join.
        m.event(
            1,
            140,
            &Event::DataDelivered {
                group: g(),
                source: s,
            },
        );
        m.event(
            2,
            200,
            &Event::SptSwitchStart {
                group: g(),
                source: s,
            },
        );
        m.event(
            2,
            260,
            &Event::EntryModified {
                group: g(),
                key: EntryKey::Source(s),
                from: flags::RP,
                to: flags::SPT,
            },
        );
        assert_eq!(m.join_latency.count(), 1);
        assert_eq!(m.join_latency.mean(), 30);
        assert_eq!(m.spt_switch.count(), 1);
        assert_eq!(m.spt_switch.mean(), 60);
    }

    #[test]
    fn metrics_reconvergence_windows() {
        let mut m = MetricsAggregator::new();
        m.event(
            0,
            100,
            &Event::Fault {
                desc: "link-down 0".into(),
            },
        );
        m.event(
            1,
            150,
            &Event::RouteChanged {
                dst: Addr::new(10, 0, 0, 2),
            },
        );
        m.event(
            1,
            180,
            &Event::EntryExpired {
                group: g(),
                key: EntryKey::Star,
            },
        );
        // Next fault closes the first window at the last state change (180).
        m.event(
            0,
            400,
            &Event::Fault {
                desc: "crash 1".into(),
            },
        );
        m.event(2, 420, &Event::LocalMemberLeft { group: g() });
        m.finish();
        assert_eq!(m.reconvergence.count(), 2);
        assert_eq!(m.reconvergence.max(), 80);
    }

    #[test]
    fn fanout_feeds_all_children() {
        let rec = Arc::new(Mutex::new(FlightRecorder::new(8)));
        let metrics = Arc::new(Mutex::new(MetricsAggregator::new()));
        let mut fan = Fanout::new();
        fan.push(rec.clone());
        fan.push(metrics.clone());
        fan.event(3, 50, &Event::LocalMemberJoined { group: g() });
        assert_eq!(rec.lock().unwrap().dump(3).len(), 1);
        assert_eq!(metrics.lock().unwrap().pending_joins.len(), 1);
    }

    #[test]
    fn message_kind_covers_renderable_names() {
        use wire::igmp::HostQuery;
        let m = Message::HostQuery(HostQuery { max_resp_time: 10 });
        assert_eq!(message_kind(&m), "igmp-query");
    }

    #[test]
    fn coverage_features_are_stable_and_tagged() {
        // Feature ids are pure functions of their inputs.
        assert_eq!(feature("x", &[1, 2]), feature("x", &[1, 2]));
        assert_ne!(feature("x", &[1, 2]), feature("x", &[2, 1]));
        assert_ne!(feature("x", &[1]), feature("y", &[1]));
        // Tags separate otherwise identical streams.
        let ev = Event::CtrlSend {
            kind: "pim-join-prune",
            dst: Addr::new(10, 0, 0, 1),
        };
        let mut a = CoverageSink::new(0);
        let mut b = CoverageSink::new(1);
        a.event(1, 5, &ev);
        b.event(1, 5, &ev);
        assert_eq!(a.map().distinct(), 1);
        assert_ne!(a.map().stable_hash(), b.map().stable_hash());
    }

    #[test]
    fn coverage_map_merge_is_order_independent() {
        let mut x = CoverageMap::new();
        let mut y = CoverageMap::new();
        for f in [10u64, 20, 20, 30] {
            x.record(f);
        }
        for f in [20u64, 40] {
            y.record(f);
        }
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy, yx);
        assert_eq!(xy.distinct(), 4);
        assert_eq!(xy.total(), 6);
        assert_eq!(xy.stable_hash(), yx.stable_hash());
        assert_eq!(y.novel_vs(&x), 1); // only 40 is new
        assert!(x.contains(30) && !x.contains(40));
    }

    #[test]
    fn coverage_hash_buckets_counts_log2() {
        // Hit counts in the same log2 bucket hash identically; crossing
        // a bucket boundary changes the hash.
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        for _ in 0..8 {
            a.record(1);
        }
        for _ in 0..15 {
            b.record(1);
        }
        assert_eq!(a.stable_hash(), b.stable_hash(), "8 and 15 share bucket 4");
        let mut c = CoverageMap::new();
        for _ in 0..16 {
            c.record(1);
        }
        assert_ne!(b.stable_hash(), c.stable_hash(), "16 opens bucket 5");
    }

    #[test]
    fn coverage_sink_folds_transitions_and_digrams() {
        let mut s = CoverageSink::new(0);
        let e1 = Event::EntryCreated {
            group: g(),
            key: EntryKey::Star,
            flags: flags::WC | flags::RP,
        };
        let e2 = Event::EntryModified {
            group: g(),
            key: EntryKey::Star,
            from: flags::WC | flags::RP,
            to: flags::WC | flags::RP | flags::SPT,
        };
        s.event(2, 10, &e1);
        s.event(2, 11, &e2);
        // entry-flags x2 (distinct transitions) + one digram.
        assert_eq!(s.map().distinct(), 3);
        // Same events replayed: same features, same hash, no new ones.
        let mut s2 = CoverageSink::new(0);
        s2.event(2, 99, &e1);
        s2.event(2, 100, &e2);
        assert_eq!(
            s.map().stable_hash(),
            s2.map().stable_hash(),
            "coverage is time-invariant"
        );
        assert_eq!(s2.map().novel_vs(s.map()), 0);
        // A different transition on another node is novel.
        s2.event(3, 101, &e1);
        assert_eq!(s2.map().novel_vs(s.map()), 1);
    }

    #[test]
    fn congestion_events_render_fold_and_never_reconverge() {
        let drop = Event::QueueDrop {
            what: "data",
            link: 3,
        };
        let mark = Event::EcnMark { link: 3 };
        let depth = Event::QueueDepth { link: 3, bytes: 96 };
        assert_eq!(drop.render(), "queue-drop data link=3");
        assert_eq!(mark.render(), "ecn-mark link=3");
        assert_eq!(depth.render(), "queue-depth link=3 bytes=96");
        assert_eq!(
            drop.to_json(1, 7),
            "{\"t\":7,\"node\":1,\"ev\":\"queue_drop\",\"what\":\"data\",\"link\":3}"
        );
        assert_eq!(
            depth.to_json(1, 8),
            "{\"t\":8,\"node\":1,\"ev\":\"queue_depth\",\"link\":3,\"bytes\":96}"
        );

        // Congestion noise must not open or extend reconvergence windows.
        let mut m = MetricsAggregator::new();
        m.event(0, 100, &Event::Fault { desc: "cap".into() });
        m.event(1, 150, &drop);
        m.event(1, 160, &mark);
        m.event(1, 170, &depth);
        m.finish();
        // The fault itself closes as a 0-tick window at finish();
        // congestion noise at t=150..170 must not have extended it.
        assert_eq!(m.reconvergence.count(), 1);
        assert_eq!(m.reconvergence.max(), 0, "no state change after fault");
        assert_eq!(m.queue_drops, 1);
        assert_eq!(m.ecn_marks, 1);
        assert_eq!(m.queue_depth.count(), 1);
        assert_eq!(m.queue_depth.max(), 96);

        // Each congestion event is a distinct coverage feature; depth
        // folds by log2 bucket, so 96 and 127 collide but 256 is novel.
        let mut s = CoverageSink::new(0);
        s.event(1, 5, &drop);
        s.event(1, 6, &mark);
        s.event(1, 7, &depth);
        let base = s.map().clone();
        let mut s2 = CoverageSink::new(0);
        s2.event(
            1,
            9,
            &Event::QueueDepth {
                link: 3,
                bytes: 127,
            },
        );
        assert_eq!(s2.map().novel_vs(&base), 0, "same log2 bucket");
        s2.event(
            1,
            10,
            &Event::QueueDepth {
                link: 3,
                bytes: 256,
            },
        );
        // Novelty: the bucket-9 qdepth feature plus the depth→depth
        // digram, neither of which the base stream produced.
        assert_eq!(s2.map().novel_vs(&base), 2, "new bucket is novel");
    }

    #[test]
    fn for_node_rekeys() {
        let rec = Arc::new(Mutex::new(FlightRecorder::new(8)));
        let t = Telem::attached(rec.clone(), 0);
        let t5 = t.for_node(5);
        t5.emit(1, || Event::TimerFired { token: 1 });
        assert_eq!(rec.lock().unwrap().dump(5).len(), 1);
        assert!(rec.lock().unwrap().dump(0).is_empty());
        assert_eq!(format!("{t5:?}"), "Telem(node 5)");
        assert_eq!(format!("{:?}", Telem::disabled()), "Telem(disabled)");
    }
}
