//! CBT's reliability story, property-tested: joins are hop-by-hop
//! Join-Request / Join-Ack exchanges with explicit retransmission, so
//! tree construction must converge under arbitrary per-link loss up to
//! 50% — once the loss clears, every router on the path is on-tree with
//! the correct parent and no join left pending.
//!
//! (This is the ack-based half of the paper's §3.4 footnote-4 contrast:
//! PIM recovers loss by periodic refresh, CBT by explicit ack + retry.
//! Both must survive a lossy control plane; `tests/robustness.rs` covers
//! the PIM half.)

use cbt::{CbtConfig, CbtEngine, CbtRouter};
use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, LinkId, NodeIdx, SimTime, Topology, World};
use proptest::prelude::*;
use unicast::OracleRib;
use wire::Group;

/// Routers in the line; the core sits at node 0, the member host behind
/// the far end. Every join must cross every lossy link.
const ROUTERS: usize = 4;

/// Build a line of CBT routers over oracle unicast, with a member host
/// behind the last router.
fn build_line(seed: u64) -> (World, NodeIdx) {
    let group = Group::test(1);
    let mut g = Graph::with_nodes(ROUTERS);
    for k in 0..ROUTERS - 1 {
        g.add_edge(NodeId(k as u32), NodeId(k as u32 + 1), 1);
    }
    let topo = Topology::from_graph(&g);
    let core = router_addr(NodeId(0));

    let mut oracle = OracleRib::for_all(&g, &topo);
    let member_router = NodeId(ROUTERS as u32 - 1);
    let ha = host_addr(member_router, 0);
    for (i, rib) in oracle.iter_mut().enumerate() {
        if i != member_router.index() {
            rib.alias_host(ha, router_addr(member_router));
        }
    }
    let mut oracle_iter = oracle.into_iter();

    let (mut world, _links) = topo.build_world(&g, seed, |plan| {
        let mut e = CbtEngine::new(plan.addr, CbtConfig::default());
        e.set_core(group, core);
        Box::new(CbtRouter::new(
            e,
            Box::new(oracle_iter.next().expect("rib per plan")),
        ))
    });

    let host = world.add_node(Box::new(HostNode::new(ha)));
    let r_last = NodeIdx(member_router.index());
    let (_l, ifs) = world.add_lan(&[r_last, host], Duration(1));
    world
        .node_mut::<CbtRouter>(r_last)
        .attach_host_lan(ifs[0], &[ha]);
    (world, host)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_converges_under_per_link_loss(
        // Independent loss per backbone link, up to 50% (per-mille).
        loss_pm in prop::collection::vec(0u32..=500, ROUTERS - 1),
        seed in 0u64..10_000,
    ) {
        let group = Group::test(1);
        let (mut world, host) = build_line(seed);
        for (k, &pm) in loss_pm.iter().enumerate() {
            world.set_link_loss(LinkId(k), f64::from(pm) / 1000.0);
        }
        world.at(SimTime(10), move |w| {
            w.call_node(host, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, group);
            });
        });
        // Loss persists through the whole join phase — every hop-by-hop
        // Join-Request/Join-Ack exchange must win by retransmission. Then
        // the links heal and the tree must settle.
        world.at(SimTime(800), move |w| {
            for k in 0..ROUTERS - 1 {
                w.set_link_loss(LinkId(k), 0.0);
            }
        });
        world.run_until(SimTime(1500));

        for k in 0..ROUTERS {
            let r: &CbtRouter = world.node(NodeIdx(k));
            let tree = r
                .engine()
                .tree(group)
                .unwrap_or_else(|| panic!("r{k} must hold tree state"));
            prop_assert!(tree.on_tree, "r{k} must be on the tree");
            prop_assert!(
                !r.engine().join_pending(group),
                "r{k} must have no join outstanding after convergence"
            );
            if k == 0 {
                prop_assert!(tree.parent.is_none(), "the core has no parent");
            } else {
                let want = router_addr(NodeId(k as u32 - 1));
                prop_assert_eq!(
                    tree.parent.map(|(_, a)| a),
                    Some(want),
                    "r{}'s parent must be the next hop toward the core",
                    k
                );
            }
            if k < ROUTERS - 1 {
                let child = router_addr(NodeId(k as u32 + 1));
                prop_assert!(
                    tree.children.keys().any(|&(_, a)| a == child),
                    "r{}'s ack ledger must carry its downstream child",
                    k
                );
            } else {
                prop_assert!(
                    !tree.member_ifaces.is_empty(),
                    "the member's router must track the host interface"
                );
            }
        }
    }
}
