//! The sans-IO CBT engine.

use netsim::{Duration, IfaceId, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use telemetry::{flags, EntryKey, Event, StateDump, Telem};
use unicast::Rib;
use wire::cbt::{Echo, EchoReply, FlushTree, JoinAck, JoinRequest, Quit};
use wire::pim::Register;
use wire::{Addr, Group, Message};

/// Timers for the CBT protocol.
#[derive(Clone, Copy, Debug)]
pub struct CbtConfig {
    /// Retransmit an unacknowledged Join-Request after this (explicit
    /// reliability — footnote 4's contrast with PIM soft state).
    pub join_retransmit: Duration,
    /// Period between child→parent Echo keepalives.
    pub echo_interval: Duration,
    /// Parent declares a child dead after this much echo silence; a child
    /// declares its parent dead likewise.
    pub echo_timeout: Duration,
}

impl Default for CbtConfig {
    fn default() -> Self {
        CbtConfig {
            join_retransmit: Duration(15),
            echo_interval: Duration(30),
            echo_timeout: Duration(100),
        }
    }
}

/// An action requested by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Transmit a control message (TTL 1 except core-bound encapsulation).
    Send {
        /// Interface to transmit on.
        iface: IfaceId,
        /// Header destination.
        dst: Addr,
        /// Header TTL.
        ttl: u8,
        /// The message.
        msg: Message,
    },
    /// Forward a data packet out of each listed interface.
    Forward {
        /// Interfaces to copy the packet to.
        ifaces: Vec<IfaceId>,
        /// Original source.
        source: Addr,
        /// Destination group.
        group: Group,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// Per-group tree state at one router.
#[derive(Clone, Debug)]
pub struct TreeState {
    /// The group's core router.
    pub core: Addr,
    /// Confirmed on-tree (a Join-Ack arrived, or we are the core).
    pub on_tree: bool,
    /// Parent edge: (interface, parent address). `None` at the core.
    pub parent: Option<(IfaceId, Addr)>,
    /// Confirmed children: (interface, child address) → echo expiry.
    pub children: BTreeMap<(IfaceId, Addr), SimTime>,
    /// Our own outstanding join: (iface, next hop, next retransmit).
    pending_join: Option<(IfaceId, Addr, SimTime)>,
    /// Downstream joins waiting for our ack: (iface, requester).
    pending_downstream: Vec<(IfaceId, Addr)>,
    /// Host subnetworks with local members.
    pub member_ifaces: HashSet<IfaceId>,
    /// Last proof of parent liveness (echo reply naming this group).
    parent_alive_at: SimTime,
}

impl TreeState {
    /// The interfaces data for this group fans out to, excluding
    /// `arrival`: parent edge + child edges + member subnetworks.
    pub fn forward_set(&self, arrival: Option<IfaceId>) -> Vec<IfaceId> {
        let mut set: Vec<IfaceId> = Vec::new();
        if let Some((p, _)) = self.parent {
            if Some(p) != arrival {
                set.push(p);
            }
        }
        for &(i, _) in self.children.keys() {
            if Some(i) != arrival && !set.contains(&i) {
                set.push(i);
            }
        }
        for &i in &self.member_ifaces {
            if Some(i) != arrival && !set.contains(&i) {
                set.push(i);
            }
        }
        set
    }

    /// Is `iface` one of this group's tree interfaces?
    pub fn is_tree_iface(&self, iface: IfaceId) -> bool {
        self.parent.map(|(p, _)| p) == Some(iface) || self.children.keys().any(|&(i, _)| i == iface)
    }
}

/// The CBT engine for one router.
pub struct CbtEngine {
    cfg: CbtConfig,
    my_addr: Addr,
    /// Group → configured core.
    cores: HashMap<Group, Addr>,
    /// Group → tree state (created on first involvement).
    trees: BTreeMap<Group, TreeState>,
    /// Directly attached hosts → interface.
    local_hosts: HashMap<Addr, IfaceId>,
    next_echo: SimTime,
    /// Join-Acks sent (explicit-reliability message overhead metric).
    pub acks_sent: u64,
    /// Structured-event emitter (disabled by default; pure observer).
    telem: Telem,
}

/// The telemetry flag bits a tree entry currently carries. CBT's single
/// notion of state is on-tree membership.
fn tree_flags(t: &TreeState) -> u8 {
    if t.on_tree {
        flags::ON_TREE
    } else {
        0
    }
}

impl CbtEngine {
    /// New engine.
    pub fn new(my_addr: Addr, cfg: CbtConfig) -> CbtEngine {
        CbtEngine {
            cfg,
            my_addr,
            cores: HashMap::new(),
            trees: BTreeMap::new(),
            local_hosts: HashMap::new(),
            next_echo: SimTime::ZERO,
            acks_sent: 0,
            telem: Telem::disabled(),
        }
    }

    /// Attach a telemetry handle. Emission never changes protocol
    /// behavior (DESIGN.md determinism rules).
    pub fn set_telemetry(&mut self, telem: Telem) {
        self.telem = telem;
    }

    /// The router's address.
    pub fn addr(&self) -> Addr {
        self.my_addr
    }

    /// Configure the core for `group`.
    pub fn set_core(&mut self, group: Group, core: Addr) {
        self.cores.insert(group, core);
    }

    /// Register a directly attached host.
    pub fn register_local_host(&mut self, host: Addr, iface: IfaceId) {
        self.local_hosts.insert(host, iface);
    }

    /// Tree state for `group` (inspection).
    pub fn tree(&self, group: Group) -> Option<&TreeState> {
        self.trees.get(&group)
    }

    /// Number of groups with tree state (state-overhead metric; CBT keeps
    /// exactly one entry per group regardless of sender count).
    pub fn entry_count(&self) -> usize {
        self.trees.len()
    }

    /// Iterate all per-group tree state — the state-inspection hook for
    /// cross-node invariant oracles (ack-ledger consistency, orphan
    /// detection).
    pub fn trees(&self) -> impl Iterator<Item = (Group, &TreeState)> + '_ {
        self.trees.iter().map(|(&g, t)| (g, t))
    }

    /// Does this tree have an outstanding (unacked) join toward the core?
    /// (oracle hook: a router mid-join is not yet bound by the ack ledger)
    pub fn join_pending(&self, group: Group) -> bool {
        self.trees
            .get(&group)
            .is_some_and(|t| t.pending_join.is_some())
    }

    /// Crash with total state loss: all tree state is erased; the
    /// configured group→core mappings and attached hosts survive.
    pub fn reset(&mut self) {
        self.trees.clear();
        self.next_echo = SimTime::ZERO;
    }

    fn ensure_tree(&mut self, now: SimTime, group: Group) -> Option<&mut TreeState> {
        let core = *self.cores.get(&group)?;
        let me = self.my_addr;
        if !self.trees.contains_key(&group) {
            self.telem.emit(now.ticks(), || Event::EntryCreated {
                group,
                key: EntryKey::Star,
                flags: if core == me { flags::ON_TREE } else { 0 },
            });
        }
        Some(self.trees.entry(group).or_insert_with(|| TreeState {
            core,
            on_tree: core == me,
            parent: None,
            children: BTreeMap::new(),
            pending_join: None,
            pending_downstream: Vec::new(),
            member_ifaces: HashSet::new(),
            parent_alive_at: SimTime::ZERO,
        }))
    }

    /// Begin (or re-begin) our own join toward the core.
    fn initiate_join(&mut self, now: SimTime, group: Group, rib: &dyn Rib) -> Vec<Output> {
        let me = self.my_addr;
        let cfg = self.cfg;
        let Some(tree) = self.trees.get_mut(&group) else {
            return Vec::new();
        };
        if tree.on_tree || tree.pending_join.is_some() {
            return Vec::new();
        }
        let core = tree.core;
        let Some(r) = rib.route(core) else {
            return Vec::new(); // core unreachable; retried on tick
        };
        tree.pending_join = Some((r.iface, r.next_hop, now + cfg.join_retransmit));
        vec![Output::Send {
            iface: r.iface,
            dst: Addr::ALL_PIM_ROUTERS,
            ttl: 1,
            msg: Message::CbtJoinRequest(JoinRequest {
                group,
                core,
                originator: me,
            }),
        }]
    }

    /// IGMP reported a member of `group` on `iface`.
    pub fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        if self.ensure_tree(now, group).is_none() {
            return Vec::new(); // no core configured
        }
        let tree = self.trees.get_mut(&group).expect("ensured");
        tree.member_ifaces.insert(iface);
        tree.parent_alive_at = now;
        self.initiate_join(now, group, rib)
    }

    /// The last member of `group` on `iface` lapsed.
    pub fn local_member_left(
        &mut self,
        _now: SimTime,
        group: Group,
        iface: IfaceId,
    ) -> Vec<Output> {
        let Some(tree) = self.trees.get_mut(&group) else {
            return Vec::new();
        };
        tree.member_ifaces.remove(&iface);
        self.maybe_quit(_now, group)
    }

    /// Leave the tree if we have neither members nor children.
    fn maybe_quit(&mut self, now: SimTime, group: Group) -> Vec<Output> {
        let Some(tree) = self.trees.get(&group) else {
            return Vec::new();
        };
        if !tree.member_ifaces.is_empty() || !tree.children.is_empty() || tree.core == self.my_addr
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        if let Some((iface, parent)) = tree.parent {
            out.push(Output::Send {
                iface,
                dst: parent,
                ttl: 1,
                msg: Message::CbtQuit(Quit { group }),
            });
        }
        self.trees.remove(&group);
        self.telem.emit(now.ticks(), || Event::EntryExpired {
            group,
            key: EntryKey::Star,
        });
        out
    }

    /// A Join-Request arrived on `iface` from `src`.
    pub fn on_join_request(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        jr: &JoinRequest,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        // Adopt the core carried in the join if unconfigured.
        self.cores.entry(jr.group).or_insert(jr.core);
        if self.ensure_tree(now, jr.group).is_none() {
            return Vec::new();
        }
        let me = self.my_addr;
        let on_tree = {
            let tree = self.trees.get_mut(&jr.group).expect("ensured");
            // A join from our own parent edge would loop.
            if tree.parent.map(|(p, _)| p) == Some(iface) {
                return Vec::new();
            }
            tree.on_tree
        };
        if on_tree {
            // Confirm immediately: child edge + ack (explicit reliability).
            let tree = self.trees.get_mut(&jr.group).expect("ensured");
            tree.children
                .insert((iface, src), now + self.cfg.echo_timeout);
            self.acks_sent += 1;
            vec![Output::Send {
                iface,
                dst: src,
                ttl: 1,
                msg: Message::CbtJoinAck(JoinAck {
                    group: jr.group,
                    core: jr.core,
                    originator: jr.originator,
                }),
            }]
        } else {
            // Hold the downstream join; forward our own toward the core.
            {
                let tree = self.trees.get_mut(&jr.group).expect("ensured");
                if !tree.pending_downstream.contains(&(iface, src)) {
                    tree.pending_downstream.push((iface, src));
                }
            }
            let mut out = self.initiate_join(now, jr.group, rib);
            let _ = me;
            out.retain(|o| !matches!(o, Output::Forward { .. }));
            out
        }
    }

    /// A Join-Ack arrived on `iface` from `src`.
    pub fn on_join_ack(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        ja: &JoinAck,
    ) -> Vec<Output> {
        let cfg = self.cfg;
        let Some(tree) = self.trees.get_mut(&ja.group) else {
            return Vec::new();
        };
        let matches = tree
            .pending_join
            .is_some_and(|(i, nh, _)| i == iface && nh == src);
        if !matches {
            return Vec::new();
        }
        tree.pending_join = None;
        let from = tree_flags(tree);
        tree.on_tree = true;
        tree.parent = Some((iface, src));
        tree.parent_alive_at = now;
        self.telem.emit(now.ticks(), || Event::EntryModified {
            group: ja.group,
            key: EntryKey::Star,
            from,
            to: from | flags::ON_TREE,
        });
        // Now confirm everyone who was waiting on us.
        let waiting = std::mem::take(&mut tree.pending_downstream);
        let core = tree.core;
        let mut out = Vec::new();
        for (ci, child) in waiting {
            tree.children.insert((ci, child), now + cfg.echo_timeout);
            self.acks_sent += 1;
            out.push(Output::Send {
                iface: ci,
                dst: child,
                ttl: 1,
                msg: Message::CbtJoinAck(JoinAck {
                    group: ja.group,
                    core,
                    originator: child,
                }),
            });
        }
        out
    }

    /// A Quit arrived from child `src` on `iface`.
    pub fn on_quit(&mut self, _now: SimTime, iface: IfaceId, src: Addr, q: &Quit) -> Vec<Output> {
        if let Some(tree) = self.trees.get_mut(&q.group) {
            tree.children.remove(&(iface, src));
        }
        self.maybe_quit(_now, q.group)
    }

    /// An Echo keepalive arrived from child `src`: refresh its edges and
    /// reply with the groups still alive here.
    pub fn on_echo(&mut self, now: SimTime, iface: IfaceId, src: Addr, e: &Echo) -> Vec<Output> {
        let mut alive = Vec::new();
        for &group in &e.groups {
            if let Some(tree) = self.trees.get_mut(&group) {
                if let Some(exp) = tree.children.get_mut(&(iface, src)) {
                    *exp = now + self.cfg.echo_timeout;
                    alive.push(group);
                }
            }
        }
        vec![Output::Send {
            iface,
            dst: src,
            ttl: 1,
            msg: Message::CbtEchoReply(EchoReply { groups: alive }),
        }]
    }

    /// An Echo-Reply arrived from our parent on `iface`: groups missing
    /// from it have been torn down upstream — rejoin them.
    pub fn on_echo_reply(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        er: &EchoReply,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut rejoin = Vec::new();
        for (&group, tree) in self.trees.iter_mut() {
            if tree.parent != Some((iface, src)) {
                continue;
            }
            if er.groups.contains(&group) {
                tree.parent_alive_at = now;
            } else if tree.on_tree {
                // Parent lost the tree: detach and rejoin.
                let from = tree_flags(tree);
                tree.on_tree = false;
                tree.parent = None;
                tree.pending_join = None;
                self.telem.emit(now.ticks(), || Event::EntryModified {
                    group,
                    key: EntryKey::Star,
                    from,
                    to: from & !flags::ON_TREE,
                });
                rejoin.push(group);
            }
        }
        let mut out = Vec::new();
        for group in rejoin {
            out.extend(self.initiate_join(now, group, rib));
        }
        out
    }

    /// A Flush-Tree arrived from our parent: tear down and rejoin, and
    /// propagate the flush to our own children.
    pub fn on_flush(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        f: &FlushTree,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(tree) = self.trees.get_mut(&f.group) else {
            return out;
        };
        if tree.parent.map(|(p, _)| p) != Some(iface) {
            return out;
        }
        for &(ci, child) in tree.children.keys() {
            out.push(Output::Send {
                iface: ci,
                dst: child,
                ttl: 1,
                msg: Message::CbtFlushTree(*f),
            });
        }
        tree.children.clear();
        let from = tree_flags(tree);
        tree.on_tree = false;
        tree.parent = None;
        tree.pending_join = None;
        if from & flags::ON_TREE != 0 {
            self.telem.emit(now.ticks(), || Event::EntryModified {
                group: f.group,
                key: EntryKey::Star,
                from,
                to: from & !flags::ON_TREE,
            });
        }
        out.extend(self.initiate_join(now, f.group, rib));
        out
    }

    /// Data from a directly attached host. If we are on the group's tree,
    /// forward along it; otherwise unicast-encapsulate to the core
    /// (CBT's non-member-sender rule).
    pub fn on_local_data(
        &mut self,
        _now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        payload: &[u8],
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let Some(&core) = self.cores.get(&group) else {
            return Vec::new();
        };
        if let Some(tree) = self.trees.get(&group) {
            if tree.on_tree {
                let ifaces = tree.forward_set(Some(iface));
                if ifaces.is_empty() {
                    return Vec::new();
                }
                return vec![Output::Forward {
                    ifaces,
                    source,
                    group,
                    payload: payload.to_vec(),
                }];
            }
        }
        if core == self.my_addr {
            return Vec::new(); // we are the core but have no tree: no receivers
        }
        let Some(r) = rib.route(core) else {
            return Vec::new();
        };
        vec![Output::Send {
            iface: r.iface,
            dst: core,
            ttl: 64,
            msg: Message::PimRegister(Register {
                group,
                source,
                payload: payload.to_vec(),
            }),
        }]
    }

    /// Encapsulated sender data arrived at the core: inject onto the tree.
    pub fn on_encapsulated(&mut self, _now: SimTime, reg: &Register) -> Vec<Output> {
        let Some(tree) = self.trees.get(&reg.group) else {
            return Vec::new();
        };
        if tree.core != self.my_addr || !tree.on_tree {
            return Vec::new();
        }
        let ifaces = tree.forward_set(None);
        if ifaces.is_empty() {
            return Vec::new();
        }
        vec![Output::Forward {
            ifaces,
            source: reg.source,
            group: reg.group,
            payload: reg.payload.clone(),
        }]
    }

    /// A multicast data packet arrived on a router interface: the on-tree
    /// check replaces PIM's RPF check (the tree is bidirectional), then
    /// fan out on every other tree interface.
    pub fn on_data(
        &mut self,
        _now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        payload: &[u8],
    ) -> Vec<Output> {
        let Some(tree) = self.trees.get(&group) else {
            return Vec::new();
        };
        if !tree.on_tree || !tree.is_tree_iface(iface) {
            return Vec::new();
        }
        let ifaces = tree.forward_set(Some(iface));
        if ifaces.is_empty() {
            return Vec::new();
        }
        vec![Output::Forward {
            ifaces,
            source,
            group,
            payload: payload.to_vec(),
        }]
    }

    /// The absolute time of this engine's next pending timer: the echo
    /// schedule, join retransmits, child echo expiries, and parent-silence
    /// detection (which matures `echo_timeout` after the last sign of
    /// parent life).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best = Some(self.next_echo);
        for tree in self.trees.values() {
            if let Some((_, _, retx)) = tree.pending_join {
                best = netsim::earliest(best, Some(retx));
            }
            best = netsim::earliest(best, tree.children.values().copied().min());
            if tree.on_tree && tree.parent.is_some() {
                best = netsim::earliest(best, Some(tree.parent_alive_at + self.cfg.echo_timeout));
            }
        }
        best
    }

    /// Periodic maintenance: join retransmits, echoes, child/parent
    /// timeouts.
    pub fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Output> {
        let mut out = Vec::new();
        let me = self.my_addr;
        let cfg = self.cfg;

        // Join retransmission (explicit reliability).
        let groups: Vec<Group> = self.trees.keys().copied().collect();
        for group in groups.clone() {
            let tree = self.trees.get_mut(&group).expect("listed");
            if let Some((iface, _nh, retx)) = tree.pending_join {
                if now >= retx {
                    let core = tree.core;
                    // Recompute the route — it may have changed.
                    if let Some(r) = rib.route(core) {
                        tree.pending_join = Some((r.iface, r.next_hop, now + cfg.join_retransmit));
                        out.push(Output::Send {
                            iface: r.iface,
                            dst: Addr::ALL_PIM_ROUTERS,
                            ttl: 1,
                            msg: Message::CbtJoinRequest(JoinRequest {
                                group,
                                core,
                                originator: me,
                            }),
                        });
                    } else {
                        tree.pending_join =
                            Some((iface, Addr::UNSPECIFIED, now + cfg.join_retransmit));
                    }
                }
            }
        }

        // Child expiry first: a leaf with no members and no children sends
        // its Quit while the parent edge is still known.
        let mut quit_checks = Vec::new();
        for (&group, tree) in self.trees.iter_mut() {
            let before = tree.children.len();
            tree.children.retain(|_, &mut exp| now < exp);
            if tree.children.len() != before {
                quit_checks.push(group);
            }
        }
        for group in quit_checks {
            out.extend(self.maybe_quit(now, group));
        }

        // Parent liveness: a silent parent means our whole subtree must
        // reattach through a live path — flush children and rejoin.
        let mut to_rejoin = Vec::new();
        for (&group, tree) in self.trees.iter_mut() {
            if tree.on_tree
                && tree.parent.is_some()
                && now.since(tree.parent_alive_at) >= cfg.echo_timeout
            {
                let from = tree_flags(tree);
                tree.on_tree = false;
                tree.parent = None;
                tree.pending_join = None;
                self.telem.emit(now.ticks(), || Event::EntryModified {
                    group,
                    key: EntryKey::Star,
                    from,
                    to: from & !flags::ON_TREE,
                });
                to_rejoin.push(group);
            }
        }
        for group in to_rejoin {
            let children: Vec<(IfaceId, Addr)> = self
                .trees
                .get(&group)
                .map(|t| t.children.keys().copied().collect())
                .unwrap_or_default();
            for (ci, child) in &children {
                out.push(Output::Send {
                    iface: *ci,
                    dst: *child,
                    ttl: 1,
                    msg: Message::CbtFlushTree(FlushTree { group }),
                });
            }
            let has_members = self
                .trees
                .get(&group)
                .is_some_and(|t| !t.member_ifaces.is_empty());
            if let Some(t) = self.trees.get_mut(&group) {
                t.children.clear();
                t.parent_alive_at = now; // restart the clock for the rejoin
            }
            if has_members {
                out.extend(self.initiate_join(now, group, rib));
            } else {
                // Nothing left to serve: drop the state entirely.
                self.trees.remove(&group);
                self.telem.emit(now.ticks(), || Event::EntryExpired {
                    group,
                    key: EntryKey::Star,
                });
            }
        }

        // Echo keepalives to surviving parents, batched per (iface, parent).
        if now >= self.next_echo {
            self.next_echo = now + cfg.echo_interval;
            let mut per_parent: BTreeMap<(IfaceId, Addr), Vec<Group>> = BTreeMap::new();
            for (&group, tree) in &self.trees {
                if let Some(p) = tree.parent {
                    per_parent.entry(p).or_default().push(group);
                }
            }
            for ((iface, parent), groups) in per_parent {
                out.push(Output::Send {
                    iface,
                    dst: parent,
                    ttl: 1,
                    msg: Message::CbtEcho(Echo { groups }),
                });
            }
        }
        out
    }
}

impl StateDump for CbtEngine {
    /// `show mroute`-style snapshot: one line per group tree — core,
    /// on-tree flag, parent edge, last parent-liveness proof — plus child
    /// edges with echo expiries, member subnetworks, and pending joins.
    fn state_dump(&self, now: telemetry::Ticks) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "cbt {} t{}", self.my_addr, now);
        for (&group, tree) in &self.trees {
            let _ = write!(
                s,
                "  group {group} core={} flags={}",
                tree.core,
                flags::render(tree_flags(tree))
            );
            match tree.parent {
                Some((i, p)) => {
                    let _ = write!(s, " parent={p}@if{}", i.index());
                }
                None => {
                    let _ = write!(s, " parent=-");
                }
            }
            let _ = write!(s, " parent-alive=t{}", tree.parent_alive_at.ticks());
            if let Some((i, nh, retx)) = tree.pending_join {
                let _ = write!(
                    s,
                    " join-pending={nh}@if{} retx=t{}",
                    i.index(),
                    retx.ticks()
                );
            }
            let _ = writeln!(s);
            for (&(i, child), &exp) in &tree.children {
                let _ = writeln!(
                    s,
                    "    child {child}@if{} expires=t{}",
                    i.index(),
                    exp.ticks()
                );
            }
            let mut members: Vec<u32> = tree
                .member_ifaces
                .iter()
                .map(|i| i.index() as u32)
                .collect();
            members.sort_unstable();
            for i in members {
                let _ = writeln!(s, "    members on if{i}");
            }
            for &(i, req) in &tree.pending_downstream {
                let _ = writeln!(s, "    awaiting-ack {req}@if{}", i.index());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicast::{OracleRib, RouteEntry};

    fn me() -> Addr {
        Addr::new(10, 0, 1, 1)
    }
    fn core() -> Addr {
        Addr::new(10, 0, 0, 1)
    }
    fn child() -> Addr {
        Addr::new(10, 0, 2, 1)
    }
    fn g() -> Group {
        Group::test(4)
    }
    fn t(x: u64) -> SimTime {
        SimTime(x)
    }

    fn rib() -> OracleRib {
        let mut r = OracleRib::empty(me());
        r.insert(
            core(),
            RouteEntry {
                iface: IfaceId(0),
                next_hop: core(),
                metric: 1,
            },
        );
        r
    }

    fn engine() -> CbtEngine {
        let mut e = CbtEngine::new(me(), CbtConfig::default());
        e.set_core(g(), core());
        e
    }

    #[test]
    fn member_join_sends_join_request_toward_core() {
        let mut e = engine();
        let out = e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        assert!(matches!(
            &out[0],
            Output::Send { iface, msg: Message::CbtJoinRequest(jr), .. }
                if *iface == IfaceId(0) && jr.core == core() && jr.originator == me()
        ));
        assert!(!e.tree(g()).unwrap().on_tree, "not on tree until acked");
    }

    #[test]
    fn join_ack_confirms_tree_membership() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        let tree = e.tree(g()).unwrap();
        assert!(tree.on_tree);
        assert_eq!(tree.parent, Some((IfaceId(0), core())));
    }

    #[test]
    fn unacked_join_retransmits() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        let out = e.tick(t(20), &rib());
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::CbtJoinRequest(_),
                ..
            }
        )));
    }

    #[test]
    fn on_tree_router_acks_downstream_join_immediately() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        let out = e.on_join_request(
            t(5),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );
        assert!(matches!(
            &out[0],
            Output::Send { iface, dst, msg: Message::CbtJoinAck(_), .. }
                if *iface == IfaceId(1) && *dst == child()
        ));
        assert!(e
            .tree(g())
            .unwrap()
            .children
            .contains_key(&(IfaceId(1), child())));
        assert_eq!(e.acks_sent, 1);
    }

    #[test]
    fn off_tree_router_forwards_join_and_acks_later() {
        let mut e = engine();
        // Downstream join arrives while we're not on the tree.
        let out = e.on_join_request(
            t(0),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );
        // Our own join goes toward the core; no ack yet.
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::CbtJoinRequest(_),
                ..
            }
        )));
        assert!(!out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::CbtJoinAck(_),
                ..
            }
        )));
        // Core's ack arrives: the pending downstream is confirmed.
        let out = e.on_join_ack(
            t(3),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        assert!(matches!(
            &out[0],
            Output::Send { dst, msg: Message::CbtJoinAck(_), .. } if *dst == child()
        ));
        assert!(e
            .tree(g())
            .unwrap()
            .children
            .contains_key(&(IfaceId(1), child())));
    }

    #[test]
    fn core_is_trivially_on_tree() {
        let mut e = CbtEngine::new(core(), CbtConfig::default());
        e.set_core(g(), core());
        let out = e.on_join_request(
            t(0),
            IfaceId(0),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &OracleRib::empty(core()),
        );
        assert!(matches!(
            &out[0],
            Output::Send {
                msg: Message::CbtJoinAck(_),
                ..
            }
        ));
    }

    #[test]
    fn bidirectional_forwarding_on_tree() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        e.on_join_request(
            t(5),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );

        // From the parent side: to child + members.
        let out = e.on_data(t(10), IfaceId(0), Addr::new(10, 9, 9, 9), g(), b"d");
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(1), IfaceId(2)]
        ));
        // From the child side: up to the parent + members (bidirectional).
        let out = e.on_data(t(11), IfaceId(1), Addr::new(10, 9, 9, 9), g(), b"d");
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(0), IfaceId(2)]
        ));
        // Off-tree arrival is dropped.
        let out = e.on_data(t(12), IfaceId(3), Addr::new(10, 9, 9, 9), g(), b"d");
        assert!(out.is_empty());
    }

    #[test]
    fn non_member_sender_encapsulates_to_core() {
        let mut e = engine();
        let s = Addr::new(10, 0, 1, 10);
        e.register_local_host(s, IfaceId(2));
        let out = e.on_local_data(t(0), IfaceId(2), s, g(), b"d", &rib());
        assert!(matches!(
            &out[0],
            Output::Send { dst, msg: Message::PimRegister(r), .. }
                if *dst == core() && r.source == s
        ));
    }

    #[test]
    fn core_injects_encapsulated_data_onto_tree() {
        let mut e = CbtEngine::new(core(), CbtConfig::default());
        e.set_core(g(), core());
        e.on_join_request(
            t(0),
            IfaceId(0),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &OracleRib::empty(core()),
        );
        let out = e.on_encapsulated(
            t(5),
            &Register {
                group: g(),
                source: Addr::new(10, 9, 9, 9),
                payload: b"d".to_vec(),
            },
        );
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(0)]
        ));
    }

    #[test]
    fn echo_refreshes_children_and_reply_lists_live_groups() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        e.on_join_request(
            t(5),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );
        let out = e.on_echo(t(50), IfaceId(1), child(), &Echo { groups: vec![g()] });
        assert!(matches!(
            &out[0],
            Output::Send { msg: Message::CbtEchoReply(er), .. } if er.groups == vec![g()]
        ));
        // Keep our parent alive too, then cross the child's original
        // timeout: the echoed child must survive.
        e.on_echo_reply(
            t(60),
            IfaceId(0),
            core(),
            &EchoReply { groups: vec![g()] },
            &rib(),
        );
        e.tick(t(104), &rib());
        assert!(e
            .tree(g())
            .unwrap()
            .children
            .contains_key(&(IfaceId(1), child())));
    }

    #[test]
    fn silent_child_expires_and_leaf_quits() {
        let mut e = engine();
        // We're a pure transit router: a child, no members.
        e.on_join_request(
            t(0),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        assert!(e.tree(g()).is_some());
        // The child never echoes: it expires, and with no members left we
        // quit toward the parent.
        let out = e.tick(t(200), &rib());
        assert!(
            out.iter().any(|o| matches!(
                o,
                Output::Send { dst, msg: Message::CbtQuit(_), .. } if *dst == core()
            )),
            "{out:?}"
        );
        assert!(e.tree(g()).is_none());
    }

    #[test]
    fn missing_group_in_echo_reply_triggers_rejoin() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        let out = e.on_echo_reply(
            t(40),
            IfaceId(0),
            core(),
            &EchoReply { groups: vec![] },
            &rib(),
        );
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::CbtJoinRequest(_),
                ..
            }
        )));
        assert!(!e.tree(g()).unwrap().on_tree);
    }

    #[test]
    fn parent_silence_flushes_subtree_and_rejoins() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        e.on_join_request(
            t(5),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );
        // Keep the child alive but let the parent go silent.
        e.on_echo(t(90), IfaceId(1), child(), &Echo { groups: vec![g()] });
        let out = e.tick(t(110), &rib());
        assert!(
            out.iter().any(|o| matches!(
                o,
                Output::Send { dst, msg: Message::CbtFlushTree(_), .. } if *dst == child()
            )),
            "{out:?}"
        );
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::CbtJoinRequest(_),
                ..
            }
        )));
    }

    #[test]
    fn quit_removes_child() {
        let mut e = engine();
        e.local_member_joined(t(0), g(), IfaceId(2), &rib());
        e.on_join_ack(
            t(2),
            IfaceId(0),
            core(),
            &JoinAck {
                group: g(),
                core: core(),
                originator: me(),
            },
        );
        e.on_join_request(
            t(5),
            IfaceId(1),
            child(),
            &JoinRequest {
                group: g(),
                core: core(),
                originator: child(),
            },
            &rib(),
        );
        e.on_quit(t(10), IfaceId(1), child(), &Quit { group: g() });
        assert!(e.tree(g()).unwrap().children.is_empty());
    }
}
