//! The [`netsim`] adapter for the CBT baseline.

use crate::engine::{CbtEngine, Output};
use igmp::{Querier, QuerierOutput};
use netsim::{Ctx, Duration, IfaceId, Node, SimTime};
use std::any::Any;
use std::collections::HashMap;
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

const TOKEN_TICK: u64 = 1;
const TICK_GRANULARITY: Duration = Duration(2);
const DATA_TTL: u8 = 32;

/// A CBT router node.
pub struct CbtRouter {
    engine: CbtEngine,
    unicast: Box<dyn unicast::Engine>,
    queriers: HashMap<IfaceId, Querier>,
    /// Multicast data packets forwarded.
    pub data_forwards: u64,
    /// Control messages processed.
    pub control_msgs: u64,
    next_tick: SimTime,
}

impl CbtRouter {
    /// Build a router from its CBT engine and a unicast engine.
    pub fn new(engine: CbtEngine, unicast: Box<dyn unicast::Engine>) -> CbtRouter {
        CbtRouter {
            engine,
            unicast,
            queriers: HashMap::new(),
            data_forwards: 0,
            control_msgs: 0,
            next_tick: SimTime::ZERO,
        }
    }

    /// Declare `iface` host-facing, with the given attached hosts.
    pub fn attach_host_lan(&mut self, iface: IfaceId, hosts: &[Addr]) {
        self.unicast.grow_iface(1);
        self.queriers
            .insert(iface, Querier::new(self.engine.addr(), igmp::Config::default()));
        for &h in hosts {
            self.engine.register_local_host(h, iface);
            self.unicast.attach_local(h, 1);
        }
    }

    /// Configure the core for `group`.
    pub fn set_core(&mut self, group: Group, core: Addr) {
        self.engine.set_core(group, core);
    }

    /// The CBT engine (inspection).
    pub fn engine(&self) -> &CbtEngine {
        &self.engine
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.engine.addr()
    }

    fn send_control(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, dst: Addr, ttl: u8, msg: &Message) {
        let header = Header {
            proto: Protocol::Igmp,
            ttl,
            src: self.engine.addr(),
            dst,
        };
        ctx.send(iface, header.encap(&msg.encode()));
    }

    fn handle_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<Output>, data_ttl: u8) {
        for o in outputs {
            match o {
                Output::Send { iface, dst, ttl, msg } => {
                    self.send_control(ctx, iface, dst, ttl, &msg);
                }
                Output::Forward { ifaces, source, group, payload } => {
                    let header = Header {
                        proto: Protocol::Data,
                        ttl: data_ttl,
                        src: source,
                        dst: group.addr(),
                    };
                    let pkt = header.encap(&payload);
                    for i in ifaces {
                        self.data_forwards += 1;
                        if self.queriers.contains_key(&i) {
                            ctx.count_local_delivery();
                        }
                        ctx.send(i, pkt.clone());
                    }
                }
            }
        }
    }

    fn handle_unicast_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<unicast::Output>) {
        for o in outputs {
            match o {
                unicast::Output::Send { iface, dst, msg } => {
                    self.send_control(ctx, iface, dst, 1, &msg);
                }
                unicast::Output::RouteChanged { .. } => {}
            }
        }
    }

    fn handle_querier_outputs(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, outputs: Vec<QuerierOutput>) {
        let now = ctx.now();
        for o in outputs {
            match o {
                QuerierOutput::Send { dst, msg } => {
                    self.send_control(ctx, iface, dst, 1, &msg);
                }
                QuerierOutput::MemberJoined(group) => {
                    let outs = self
                        .engine
                        .local_member_joined(now, group, iface, self.unicast.as_ref());
                    self.handle_outputs(ctx, outs, DATA_TTL);
                }
                QuerierOutput::MemberExpired(group) => {
                    let outs = self.engine.local_member_left(now, group, iface);
                    self.handle_outputs(ctx, outs, DATA_TTL);
                }
                QuerierOutput::RpMappingLearned(..) => {}
            }
        }
    }

    fn forward_unicast(&mut self, ctx: &mut Ctx<'_>, header: &Header, payload: &[u8]) {
        let Some(next) = header.decrement_ttl() else {
            return;
        };
        if let Some(r) = self.unicast.route(header.dst) {
            ctx.send(r.iface, next.encap(payload));
        }
    }
}

impl Node for CbtRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.unicast.on_start(ctx.now());
        self.handle_unicast_outputs(ctx, outs);
        ctx.set_timer(Duration::ZERO, TOKEN_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        let Ok((header, payload)) = Header::decap(packet) else {
            return;
        };
        let now = ctx.now();
        match header.proto {
            Protocol::Igmp => {
                let Ok(msg) = Message::decode(payload) else {
                    return;
                };
                self.control_msgs += 1;
                match &msg {
                    Message::HostQuery(_) | Message::HostReport(_) | Message::RpMapping(_) => {
                        if let Some(q) = self.queriers.get_mut(&iface) {
                            let outs = q.on_message(now, header.src, &msg);
                            self.handle_querier_outputs(ctx, iface, outs);
                        }
                    }
                    Message::CbtJoinRequest(jr) => {
                        let outs = self
                            .engine
                            .on_join_request(now, iface, header.src, jr, self.unicast.as_ref());
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::CbtJoinAck(ja) => {
                        let outs = self.engine.on_join_ack(now, iface, header.src, ja);
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::CbtEcho(e) => {
                        let outs = self.engine.on_echo(now, iface, header.src, e);
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::CbtEchoReply(er) => {
                        let outs = self
                            .engine
                            .on_echo_reply(now, iface, header.src, er, self.unicast.as_ref());
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::CbtQuit(q) => {
                        let outs = self.engine.on_quit(now, iface, header.src, q);
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::CbtFlushTree(f) => {
                        let outs = self.engine.on_flush(now, iface, f, self.unicast.as_ref());
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::PimRegister(reg) => {
                        if header.dst == self.engine.addr() {
                            let outs = self.engine.on_encapsulated(now, reg);
                            self.handle_outputs(ctx, outs, DATA_TTL);
                        } else {
                            self.forward_unicast(ctx, &header, payload);
                        }
                    }
                    Message::DvUpdate(_) | Message::Lsa(_) | Message::Hello(_) => {
                        let outs = self.unicast.on_message(now, iface, header.src, &msg);
                        self.handle_unicast_outputs(ctx, outs);
                    }
                    _ => {}
                }
            }
            Protocol::Data => {
                if !header.dst.is_multicast() {
                    if header.dst != self.engine.addr() {
                        self.forward_unicast(ctx, &header, payload);
                    }
                    return;
                }
                let Some(group) = Group::new(header.dst) else {
                    return;
                };
                let Some(fwd) = header.decrement_ttl() else {
                    return;
                };
                let is_host_src = self.queriers.contains_key(&iface);
                let outs = if is_host_src {
                    self.engine.on_local_data(
                        now,
                        iface,
                        header.src,
                        group,
                        payload,
                        self.unicast.as_ref(),
                    )
                } else {
                    self.engine.on_data(now, iface, header.src, group, payload)
                };
                self.handle_outputs(ctx, outs, fwd.ttl);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        let now = ctx.now();
        if now >= self.next_tick {
            self.next_tick = now + TICK_GRANULARITY;
            if self.unicast.tick_interval().ticks() != u64::MAX {
                let outs = self.unicast.tick(now);
                self.handle_unicast_outputs(ctx, outs);
            }
            let ifaces: Vec<IfaceId> = self.queriers.keys().copied().collect();
            for i in ifaces {
                let outs = self.queriers.get_mut(&i).expect("listed").tick(now);
                self.handle_querier_outputs(ctx, i, outs);
            }
            let outs = self.engine.tick(now, self.unicast.as_ref());
            self.handle_outputs(ctx, outs, DATA_TTL);
        }
        ctx.set_timer(TICK_GRANULARITY, TOKEN_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
