//! The [`netsim`] adapter for the CBT baseline.
//!
//! [`CbtRouter`] is the generic [`node::ProtocolNode`] instantiated with
//! [`CbtEngine`] — the same adapter PIM and DVMRP use.

use crate::engine::{CbtEngine, Output};
use netsim::{IfaceId, SimTime};
use node::{Action, ProtocolEngine};
use unicast::Rib;
use wire::{Addr, Group, Message};

/// Data TTL used when (re)originating packets (decapsulated registers).
const DATA_TTL: u8 = 32;

/// A CBT router node.
pub type CbtRouter = node::ProtocolNode<CbtEngine>;

/// Convert engine outputs into node actions, stamping `data_ttl` on data
/// forwards.
fn actions(outs: Vec<Output>, data_ttl: u8) -> Vec<Action> {
    outs.into_iter()
        .map(|o| match o {
            Output::Send {
                iface,
                dst,
                ttl,
                msg,
            } => Action::Control {
                iface,
                dst,
                ttl,
                msg,
            },
            Output::Forward {
                ifaces,
                source,
                group,
                payload,
            } => Action::Forward {
                ifaces,
                source,
                group,
                ttl: data_ttl,
                payload,
            },
        })
        .collect()
}

impl ProtocolEngine for CbtEngine {
    fn addr(&self) -> Addr {
        CbtEngine::addr(self)
    }

    fn set_telemetry(&mut self, telem: telemetry::Telem) {
        CbtEngine::set_telemetry(self, telem);
    }

    fn on_control(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        dst: Addr,
        msg: &Message,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        match msg {
            Message::CbtJoinRequest(jr) => {
                actions(self.on_join_request(now, iface, src, jr, rib), DATA_TTL)
            }
            Message::CbtJoinAck(ja) => actions(self.on_join_ack(now, iface, src, ja), DATA_TTL),
            Message::CbtEcho(e) => actions(self.on_echo(now, iface, src, e), DATA_TTL),
            Message::CbtEchoReply(er) => {
                actions(self.on_echo_reply(now, iface, src, er, rib), DATA_TTL)
            }
            Message::CbtQuit(q) => actions(self.on_quit(now, iface, src, q), DATA_TTL),
            Message::CbtFlushTree(f) => actions(self.on_flush(now, iface, f, rib), DATA_TTL),
            Message::PimRegister(reg) => {
                // Senders unicast-encapsulate toward the core; decapsulate
                // when it is ours, relay when in transit.
                if dst == CbtEngine::addr(self) {
                    actions(self.on_encapsulated(now, reg), DATA_TTL)
                } else {
                    vec![Action::RelayUnicast]
                }
            }
            _ => Vec::new(),
        }
    }

    fn on_multicast_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        ttl: u8,
        payload: &[u8],
        from_host_lan: bool,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        let outs = if from_host_lan {
            self.on_local_data(now, iface, source, group, payload, rib)
        } else {
            self.on_data(now, iface, source, group, payload)
        };
        actions(outs, ttl)
    }

    fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        actions(
            CbtEngine::local_member_joined(self, now, group, iface, rib),
            DATA_TTL,
        )
    }

    fn local_member_left(&mut self, now: SimTime, group: Group, iface: IfaceId) -> Vec<Action> {
        actions(
            CbtEngine::local_member_left(self, now, group, iface),
            DATA_TTL,
        )
    }

    fn host_lan_attached(&mut self, _iface: IfaceId) -> u32 {
        // CBT keeps no per-interface engine state; the unicast engine still
        // grows one interface per attached host LAN.
        1
    }

    fn register_local_host(&mut self, host: Addr, iface: IfaceId) {
        CbtEngine::register_local_host(self, host, iface);
    }

    // CBT re-derives paths on join retransmission; the default no-op
    // `on_route_change` stands.

    fn reset(&mut self) {
        CbtEngine::reset(self);
    }

    fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Action> {
        actions(CbtEngine::tick(self, now, rib), DATA_TTL)
    }

    fn next_deadline(&self) -> Option<SimTime> {
        CbtEngine::next_deadline(self)
    }
}
