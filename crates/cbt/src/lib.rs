//! A Core Based Trees (CBT) multicast routing protocol — the paper's §1.3
//! comparison (Ballardie, Francis & Crowcroft, SIGCOMM '93).
//!
//! CBT builds **one bidirectional shared tree per group**, rooted at a
//! fixed *core* router. Receivers' DRs send Join-Requests hop-by-hop toward
//! the core; each hop that is already on the tree acknowledges, turning the
//! path into child/parent tree edges. Data from any sender is forwarded
//! along every tree edge (bidirectionally) — there are no source-specific
//! trees, which is exactly the property the paper criticizes:
//!
//! * **traffic concentration** — all senders' packets share the same tree
//!   links (Figure 1(c) and Figure 2(b));
//! * **longer paths** — the core detour can stretch delay up to 2× optimal
//!   (Wall's bound; Figure 2(a)).
//!
//! The engineering contrast the paper draws in footnote 4 is also
//! reproduced: where PIM refreshes soft state, CBT uses **explicit
//! hop-by-hop reliability** — Join-Acks, child→parent Echo keepalives with
//! replies, Quit notifications, and Flush-Tree teardown.
//!
//! Senders whose DR is not on the tree unicast-encapsulate data to the
//! core (reusing the [`wire::pim::Register`] encapsulation format; real
//! CBT used IP-in-IP — the behavior measured is identical).

#![warn(missing_docs)]

pub mod engine;
pub mod router;

pub use engine::{CbtConfig, CbtEngine, Output};
pub use router::CbtRouter;
