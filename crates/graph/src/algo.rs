//! Shortest-path and connectivity algorithms.
//!
//! [`dijkstra`] is used by the oracle unicast RIB, by the link-state routing
//! engine, and (via [`AllPairs`]) by the Figure-2 Monte-Carlo study, where a
//! 50-node all-pairs table is computed once per topology and then shared by
//! hundreds of group computations.

use crate::{EdgeId, Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// The source node.
    pub source: NodeId,
    /// `dist[v]` = shortest distance from the source to `v`, or `None` if
    /// `v` is unreachable.
    pub dist: Vec<Option<Weight>>,
    /// `parent[v]` = the edge leading to `v` on a shortest path from the
    /// source (`None` for the source itself and unreachable nodes).
    pub parent: Vec<Option<EdgeId>>,
}

impl ShortestPaths {
    /// Distance from the source to `v`, if reachable.
    #[inline]
    pub fn dist_to(&self, v: NodeId) -> Option<Weight> {
        self.dist[v.index()]
    }

    /// The next node walking back from `v` toward the source, together with
    /// the edge used, or `None` at the source / for unreachable nodes.
    pub fn parent_of(&self, g: &Graph, v: NodeId) -> Option<(NodeId, EdgeId)> {
        let e = self.parent[v.index()]?;
        Some((g.edge(e).other(v), e))
    }

    /// The full path (sequence of nodes, source first) from the source to
    /// `v`, or `None` if unreachable.
    pub fn path_to(&self, g: &Graph, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist[v.index()]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent_of(g, cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// The edges of the path from the source to `v`, or `None` if
    /// unreachable.
    pub fn path_edges_to(&self, g: &Graph, v: NodeId) -> Option<Vec<EdgeId>> {
        self.dist[v.index()]?;
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent_of(g, cur) {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Dijkstra's algorithm from `source`.
///
/// Ties between equal-length paths are broken deterministically by preferring
/// the path whose final hop has the smaller parent node id, then the smaller
/// edge id. Deterministic tie-breaking matters: PIM's RPF checks require that
/// all routers agree on reverse paths, and the simulator's oracle RIB and the
/// distance-vector/link-state engines must converge to the same trees for the
/// protocol-independence tests to be meaningful.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    let n = g.node_count();
    let mut dist: Vec<Option<Weight>> = vec![None; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    // Heap entries: Reverse((dist, parent_node, edge, node)) so that pops are
    // ordered by distance, then by the deterministic tie-break key.
    let mut heap: BinaryHeap<Reverse<(Weight, u32, u32, NodeId)>> = BinaryHeap::new();
    dist[source.index()] = Some(0);
    heap.push(Reverse((0, u32::MAX, u32::MAX, source)));

    while let Some(Reverse((d, _pn, pe, v))) = heap.pop() {
        match dist[v.index()] {
            Some(best) if d > best => continue, // stale entry
            Some(best)
                if d == best
                // First settlement of v decides the parent; later equal
                // entries are duplicates of the winning tie-break only if the
                // recorded parent matches.
                && parent[v.index()].map(|e| e.0) != (pe != u32::MAX).then_some(pe) =>
            {
                continue;
            }
            _ => {}
        }
        for &eid in g.incident(v) {
            let edge = g.edge(eid);
            let u = edge.other(v);
            let nd = d + edge.weight;
            let better = match dist[u.index()] {
                None => true,
                Some(old) if nd < old => true,
                Some(old) if nd == old => {
                    // Equal-cost tie-break: smaller parent node id, then
                    // smaller edge id.
                    match parent[u.index()] {
                        Some(old_e) => {
                            let old_parent = g.edge(old_e).other(u);
                            (v.0, eid.0) < (old_parent.0, old_e.0)
                        }
                        None => false,
                    }
                }
                _ => false,
            };
            if better {
                dist[u.index()] = Some(nd);
                parent[u.index()] = Some(eid);
                heap.push(Reverse((nd, v.0, eid.0, u)));
            }
        }
    }

    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// All-pairs shortest paths, computed as one Dijkstra per node.
///
/// For the 50-node graphs of the Figure-2 study this costs ~50 heap-based
/// Dijkstras and is then reused across all 300 groups of the topology.
///
/// Distances additionally live in one flat `n × n` [`Weight`] matrix
/// ([`Weight::MAX`] = unreachable): the Monte-Carlo hot paths
/// (`spt_max_delay`, the optimal-core search) issue millions of distance
/// queries per topology, and a contiguous row avoids both the
/// double-indirection through `Vec<ShortestPaths>` and the per-query
/// `Option` unwrapping of [`ShortestPaths::dist_to`].
#[derive(Clone, Debug)]
pub struct AllPairs {
    /// `per_source[s]` = shortest paths from `s` (parent pointers for
    /// tree construction; its `dist` field duplicates a matrix row).
    pub per_source: Vec<ShortestPaths>,
    /// Flat row-major distance matrix; `dist[a * n + b]`, `MAX` =
    /// unreachable.
    dist: Vec<Weight>,
    n: usize,
}

impl AllPairs {
    /// Compute all-pairs shortest paths for `g`.
    pub fn new(g: &Graph) -> Self {
        let per_source: Vec<ShortestPaths> = g.nodes().map(|s| dijkstra(g, s)).collect();
        let n = g.node_count();
        let mut dist = vec![Weight::MAX; n * n];
        for (s, sp) in per_source.iter().enumerate() {
            let row = &mut dist[s * n..(s + 1) * n];
            for (v, d) in sp.dist.iter().enumerate() {
                if let Some(d) = d {
                    row[v] = *d;
                }
            }
        }
        AllPairs {
            per_source,
            dist,
            n,
        }
    }

    /// Distance from `a` to `b`, if connected.
    #[inline]
    pub fn dist(&self, a: NodeId, b: NodeId) -> Option<Weight> {
        let d = self.dist[a.index() * self.n + b.index()];
        (d != Weight::MAX).then_some(d)
    }

    /// The row of distances from `s` to every node, as a contiguous
    /// slice indexed by node id; [`Weight::MAX`] marks unreachable
    /// nodes. This is the hot-path form of [`AllPairs::dist`].
    #[inline]
    pub fn dist_row(&self, s: NodeId) -> &[Weight] {
        &self.dist[s.index() * self.n..(s.index() + 1) * self.n]
    }

    /// The shortest-path tree rooted at `s`.
    #[inline]
    pub fn from(&self, s: NodeId) -> &ShortestPaths {
        &self.per_source[s.index()]
    }
}

/// True if every node is reachable from node 0 (and hence, since edges are
/// undirected, the graph is connected). Empty graphs count as connected.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                count += 1;
                stack.push(u);
            }
        }
    }
    count == n
}

/// Breadth-first distances (hop counts) from `source`; `None` = unreachable.
pub fn bfs_hops(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let mut hops = vec![None; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    hops[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let h = hops[v.index()].expect("queued nodes have hop counts");
        for u in g.neighbors(v) {
            if hops[u.index()].is_none() {
                hops[u.index()] = Some(h + 1);
                queue.push_back(u);
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixture:
    ///
    /// ```text
    ///      1 --5-- 3
    ///     /|       |
    ///    1 |2      |1
    ///   /  |       |
    ///  0 --+--4--- 2
    /// ```
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 2);
        g.add_edge(NodeId(0), NodeId(2), 4);
        g.add_edge(NodeId(1), NodeId(3), 5);
        g.add_edge(NodeId(2), NodeId(3), 1);
        g
    }

    #[test]
    fn dijkstra_distances() {
        let g = diamond();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist_to(NodeId(0)), Some(0));
        assert_eq!(sp.dist_to(NodeId(1)), Some(1));
        assert_eq!(sp.dist_to(NodeId(2)), Some(3)); // via node 1
        assert_eq!(sp.dist_to(NodeId(3)), Some(4)); // 0-1-2-3
    }

    #[test]
    fn dijkstra_paths() {
        let g = diamond();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(
            sp.path_to(&g, NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(sp.path_to(&g, NodeId(0)).unwrap(), vec![NodeId(0)]);
        let edges = sp.path_edges_to(&g, NodeId(3)).unwrap();
        assert_eq!(edges.len(), 3);
        let total: Weight = edges.iter().map(|&e| g.edge(e).weight).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist_to(NodeId(2)), None);
        assert!(sp.path_to(&g, NodeId(2)).is_none());
        assert!(sp.path_edges_to(&g, NodeId(2)).is_none());
    }

    #[test]
    fn dijkstra_deterministic_tie_break() {
        // Two equal-cost paths 0->3: via 1 and via 2. The tie-break must pick
        // the parent with the smaller node id (1).
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(2), 1);
        g.add_edge(NodeId(1), NodeId(3), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(
            sp.path_to(&g, NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = diamond();
        let ap = AllPairs::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(ap.dist(a, b), ap.dist(b, a), "{a} vs {b}");
            }
        }
        assert_eq!(ap.dist(NodeId(0), NodeId(3)), Some(4));
    }

    #[test]
    fn flat_rows_match_per_source_dijkstra() {
        let mut g = diamond();
        g.add_node(); // isolated node: unreachable from everyone
        let ap = AllPairs::new(&g);
        for s in g.nodes() {
            let row = ap.dist_row(s);
            assert_eq!(row.len(), g.node_count());
            let sp = dijkstra(&g, s);
            for v in g.nodes() {
                match sp.dist_to(v) {
                    Some(d) => assert_eq!(row[v.index()], d),
                    None => assert_eq!(row[v.index()], Weight::MAX),
                }
            }
        }
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(is_connected(&g));
        let mut g2 = Graph::with_nodes(3);
        g2.add_edge(NodeId(0), NodeId(1), 1);
        assert!(!is_connected(&g2));
        assert!(is_connected(&Graph::with_nodes(0)));
        assert!(is_connected(&Graph::with_nodes(1)));
    }

    #[test]
    fn bfs_hop_counts() {
        let g = diamond();
        let hops = bfs_hops(&g, NodeId(0));
        assert_eq!(hops[0], Some(0));
        assert_eq!(hops[1], Some(1));
        assert_eq!(hops[2], Some(1));
        assert_eq!(hops[3], Some(2));
    }
}
