//! Weighted undirected graphs, random-topology generators, and shortest-path
//! algorithms.
//!
//! This crate is the lowest-level substrate of the PIM reproduction. It is
//! used in two ways:
//!
//! * the network simulator ([`netsim`]) instantiates a simulated internet
//!   from a [`Graph`] (one router per node, one link per edge), and
//! * the Monte-Carlo tree-quality study ([`mctree`], reproducing Figure 2 of
//!   the paper) runs pure graph algorithms over thousands of random
//!   topologies without simulating any protocol.
//!
//! The random-graph generators in [`gen`] match the methodology of the paper
//! (and of Wei & Estrin, USC-CS-93-560): connected random graphs with a
//! target average node degree, with link delays drawn uniformly at random.
//!
//! [`netsim`]: ../netsim/index.html
//! [`mctree`]: ../mctree/index.html

#![warn(missing_docs)]

pub mod algo;
pub mod gen;

use std::fmt;

/// Identifier of a node (router) in a topology.
///
/// Node ids are dense indices `0..n`, which lets algorithms use `Vec`-indexed
/// tables instead of hash maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an (undirected) edge in a topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Delay/cost of traversing a link, in abstract time units.
pub type Weight = u64;

/// An undirected edge with a traversal weight (propagation delay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Traversal delay/cost. Symmetric (the paper's study assumes symmetric
    /// links; PIM's RPF check depends on this for correctness of reverse
    /// paths).
    pub weight: Weight,
}

impl Edge {
    /// Given one endpoint, return the opposite endpoint.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else {
            debug_assert_eq!(from, self.b, "node is not an endpoint of edge");
            self.a
        }
    }

    /// True if `n` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }
}

/// A weighted undirected multigraph stored as an adjacency list.
///
/// Parallel edges are permitted (the simulator may model parallel links);
/// self-loops are rejected.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency[v] = list of incident edge ids.
    adjacency: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Create a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Iterator over `(EdgeId, &Edge)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() as u32 - 1)
    }

    /// Add an undirected edge between `a` and `b` with the given weight.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: Weight) -> EdgeId {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(a.index() < self.node_count(), "endpoint out of range");
        assert!(b.index() < self.node_count(), "endpoint out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { a, b, weight });
        self.adjacency[a.index()].push(id);
        self.adjacency[b.index()].push(id);
        id
    }

    /// Incident edge ids of `n`.
    #[inline]
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n.index()]
    }

    /// Degree of `n` (number of incident edges, counting parallel edges).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Neighbors of `n` (one entry per incident edge; may contain duplicates
    /// if parallel edges exist).
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[n.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].other(n))
    }

    /// True if an edge directly connects `a` and `b`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()]
            .iter()
            .any(|&e| self.edges[e.index()].other(a) == b)
    }

    /// Average node degree (`2m / n`).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::with_nodes(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(3);
        let e = g.add_edge(NodeId(0), NodeId(1), 5);
        assert_eq!(g.edge(e).weight, 5);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        let n = g.add_node();
        assert_eq!(n, NodeId(3));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn neighbors_and_other() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(2), 1);
        let nbrs: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(nbrs, vec![NodeId(1), NodeId(2)]);
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
        assert!(e.touches(NodeId(0)));
        assert!(!e.touches(NodeId(2)));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(1), 7);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), 1);
    }

    #[test]
    fn average_degree() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        assert_eq!(g.average_degree(), 1.5);
    }
}
