//! Random-topology generators.
//!
//! The Figure-2 study in the paper uses "randomly generated 50-node
//! networks" with controlled average node degree (3 through 8). We follow
//! the standard methodology of that era (Wei & Estrin, USC-CS-93-560):
//!
//! 1. guarantee connectivity with a uniformly random spanning tree, then
//! 2. add random extra edges until the target average degree is reached.
//!
//! A Waxman generator is also provided for geographically flavored
//! topologies used by some examples and the overhead experiments.

use crate::{Graph, NodeId, Weight};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for the degree-targeted random-graph generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomGraphParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Target average node degree (`2m / n`). Must satisfy
    /// `avg_degree >= 2*(n-1)/n` (a spanning tree already has average degree
    /// just below 2) and `avg_degree <= n-1` (simple-graph limit).
    pub avg_degree: f64,
    /// Inclusive range from which link delays are drawn uniformly.
    pub delay_range: (Weight, Weight),
}

impl Default for RandomGraphParams {
    /// The paper's Figure-2 configuration: 50 nodes, degree 4, delays 1..=10.
    fn default() -> Self {
        RandomGraphParams {
            nodes: 50,
            avg_degree: 4.0,
            delay_range: (1, 10),
        }
    }
}

/// Generate a connected random graph with a target average node degree.
///
/// The graph is simple (no parallel edges or self-loops). The generator
/// first builds a uniform random spanning tree (random-permutation
/// attachment), then adds distinct random extra edges until
/// `edge_count == round(avg_degree * n / 2)`.
///
/// # Panics
/// Panics if the parameters are infeasible (fewer than 2 nodes with a
/// positive degree target, target degree above `n-1`, or an empty delay
/// range).
pub fn random_connected(params: &RandomGraphParams, rng: &mut impl Rng) -> Graph {
    let n = params.nodes;
    assert!(n >= 2, "need at least two nodes");
    assert!(
        params.avg_degree <= (n - 1) as f64,
        "average degree {} impossible in a simple {n}-node graph",
        params.avg_degree
    );
    let (lo, hi) = params.delay_range;
    assert!(lo <= hi && lo > 0, "invalid delay range");

    let target_edges = ((params.avg_degree * n as f64) / 2.0).round() as usize;
    assert!(
        target_edges >= n - 1,
        "average degree {} cannot keep a {n}-node graph connected",
        params.avg_degree
    );

    let mut g = Graph::with_nodes(n);
    let delay = |rng: &mut dyn rand::RngCore| rng.gen_range(lo..=hi);

    // Random spanning tree: shuffle nodes, attach each to a random earlier
    // node. This yields a connected tree with a wide variety of shapes.
    let mut order: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    order.shuffle(rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let w = delay(rng);
        g.add_edge(order[i], parent, w);
    }

    // Extra random edges up to the target, avoiding duplicates.
    let mut guard = 0usize;
    while g.edge_count() < target_edges {
        let a = NodeId(rng.gen_range(0..n as u32));
        let b = NodeId(rng.gen_range(0..n as u32));
        if a != b && !g.has_edge(a, b) {
            let w = delay(rng);
            g.add_edge(a, b, w);
        }
        guard += 1;
        assert!(
            guard < 1000 * target_edges.max(16),
            "edge sampling failed to converge; degree target too dense?"
        );
    }

    debug_assert!(crate::algo::is_connected(&g));
    g
}

/// Parameters for the Waxman topology generator (Waxman, JSAC 1988).
#[derive(Clone, Copy, Debug)]
pub struct WaxmanParams {
    /// Number of nodes, placed uniformly at random in the unit square.
    pub nodes: usize,
    /// Edge-probability scale (larger = more edges). Typical: 0.4.
    pub alpha: f64,
    /// Distance decay (larger = longer edges more likely). Typical: 0.2.
    pub beta: f64,
    /// Link delay per unit of Euclidean distance; delays are
    /// `max(1, round(distance * delay_scale))`.
    pub delay_scale: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            nodes: 50,
            alpha: 0.4,
            beta: 0.2,
            delay_scale: 20.0,
        }
    }
}

/// Generate a connected Waxman random graph.
///
/// Nodes are placed uniformly in the unit square; an edge between `u` and
/// `v` at Euclidean distance `d` exists with probability
/// `alpha * exp(-d / (beta * L))` where `L = sqrt(2)` is the diameter of the
/// square. Connectivity is then repaired by linking each unreached component
/// to its geometrically nearest reached node.
pub fn waxman(params: &WaxmanParams, rng: &mut impl Rng) -> Graph {
    let n = params.nodes;
    assert!(n >= 2, "need at least two nodes");
    let l = std::f64::consts::SQRT_2;

    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let to_delay = |d: f64| -> Weight { ((d * params.delay_scale).round() as Weight).max(1) };

    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let d = dist(a, b);
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId(a as u32), NodeId(b as u32), to_delay(d));
            }
        }
    }

    // Repair connectivity: repeatedly attach the nearest unreached node to
    // the component containing node 0.
    loop {
        let hops = crate::algo::bfs_hops(&g, NodeId(0));
        let mut best: Option<(usize, usize, f64)> = None; // (outside, inside, dist)
        for (v, h) in hops.iter().enumerate() {
            if h.is_some() {
                continue;
            }
            for (u, hu) in hops.iter().enumerate() {
                if hu.is_none() {
                    continue;
                }
                let d = dist(v, u);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((v, u, d));
                }
            }
        }
        match best {
            Some((v, u, d)) => {
                g.add_edge(NodeId(v as u32), NodeId(u as u32), to_delay(d));
            }
            None => break,
        }
    }

    debug_assert!(crate::algo::is_connected(&g));
    g
}

/// The three-domain internetwork of Figure 1 in the paper.
///
/// Three "domains" (A, B, C) of `domain_size` routers each, joined by a
/// small backbone. Returns the graph plus the node ids of one
/// member-attached router in each domain `(a, b, c)` and a backbone router
/// suitable for hosting an RP/core. Intra-domain links are cheap
/// (`delay 1`); inter-domain backbone links are expensive (`delay 10`),
/// mirroring the paper's expensive-WAN-link discussion.
pub fn three_domains(domain_size: usize, rng: &mut impl Rng) -> (Graph, [NodeId; 3], NodeId) {
    assert!(domain_size >= 2);
    let mut g = Graph::with_nodes(domain_size * 3 + 3);
    let backbone = [
        NodeId((domain_size * 3) as u32),
        NodeId((domain_size * 3 + 1) as u32),
        NodeId((domain_size * 3 + 2) as u32),
    ];
    // Backbone triangle.
    g.add_edge(backbone[0], backbone[1], 10);
    g.add_edge(backbone[1], backbone[2], 10);
    g.add_edge(backbone[0], backbone[2], 10);

    let mut members = [NodeId(0); 3];
    for d in 0..3 {
        let base = d * domain_size;
        // Random tree inside the domain plus a couple of extra links.
        for i in 1..domain_size {
            let parent = base + rng.gen_range(0..i);
            g.add_edge(NodeId((base + i) as u32), NodeId(parent as u32), 1);
        }
        if domain_size >= 4 {
            for _ in 0..(domain_size / 3) {
                let a = base + rng.gen_range(0..domain_size);
                let b = base + rng.gen_range(0..domain_size);
                if a != b && !g.has_edge(NodeId(a as u32), NodeId(b as u32)) {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32), 1);
                }
            }
        }
        // Border router of the domain is its node 0; wire it to the backbone.
        g.add_edge(NodeId(base as u32), backbone[d], 10);
        // The member-attached router is the last node of the domain.
        members[d] = NodeId((base + domain_size - 1) as u32);
    }
    (g, members, backbone[0])
}

/// Parameters for the hierarchical (backbone + stub domains) generator.
///
/// This is the wide-area shape the paper argues about: a modest AS-level
/// backbone with many stub domains hung off attachment routers, rather
/// than one flat random graph. Waxman density grows with node count
/// (expected degree `~0.068 * (n-1)` at the default alpha/beta), so flat
/// graphs stop being credible internets well before 1000 routers; the
/// hierarchy keeps degree bounded no matter how many domains are added.
#[derive(Clone, Copy, Debug)]
pub struct HierParams {
    /// The AS-level backbone, generated by [`waxman`] (its `nodes` field
    /// is the backbone router count).
    pub backbone: WaxmanParams,
    /// Number of stub domains hung off the backbone.
    pub domains: usize,
    /// Routers per stub domain (gateway included).
    pub domain_size: usize,
    /// Extra intra-domain edges beyond the random spanning tree.
    pub domain_extra_edges: usize,
    /// Inclusive delay range for gateway-to-backbone links (the expensive
    /// WAN hops; intra-domain links have delay 1).
    pub gateway_delay: (Weight, Weight),
}

impl Default for HierParams {
    /// A small campus-scale default: 10 backbone routers, 8 domains of 5.
    fn default() -> Self {
        HierParams {
            backbone: WaxmanParams {
                nodes: 10,
                ..WaxmanParams::default()
            },
            domains: 8,
            domain_size: 5,
            domain_extra_edges: 1,
            gateway_delay: (5, 15),
        }
    }
}

/// A hierarchical topology plus the structure metadata the simulation
/// layers need: which domain every router belongs to and where each
/// domain attaches to the backbone.
#[derive(Clone, Debug)]
pub struct HierTopology {
    /// The full graph. Nodes `0..backbone` are the backbone; domain `d`
    /// (0-based) occupies the contiguous block starting at
    /// `backbone + d * domain_size`, gateway first.
    pub graph: Graph,
    /// Backbone router count.
    pub backbone: usize,
    /// Stub domain count.
    pub domains: usize,
    /// Routers per stub domain.
    pub domain_size: usize,
    /// Per-node domain id: `0` for backbone routers, `1 + d` for routers
    /// of domain `d`.
    pub domain_of: Vec<u32>,
    /// Per-domain backbone router the gateway link lands on.
    pub attachment: Vec<NodeId>,
}

impl HierTopology {
    /// Node-id range of domain `d` (0-based).
    pub fn domain_nodes(&self, d: usize) -> std::ops::Range<usize> {
        assert!(d < self.domains);
        let base = self.backbone + d * self.domain_size;
        base..base + self.domain_size
    }

    /// Domain `d`'s gateway router (the one with the backbone link).
    pub fn gateway(&self, d: usize) -> NodeId {
        NodeId(self.domain_nodes(d).start as u32)
    }

    /// Domain `d`'s leaf router — the canonical member-attachment point,
    /// farthest-numbered from the gateway.
    pub fn leaf(&self, d: usize) -> NodeId {
        NodeId((self.domain_nodes(d).end - 1) as u32)
    }

    /// Total router count.
    pub fn node_count(&self) -> usize {
        self.backbone + self.domains * self.domain_size
    }

    /// Region hints for the parallel event core, compatible with
    /// `Topology::regions_by`: the whole backbone is region 0 and the
    /// domains are folded into the remaining `target - 1` regions in
    /// contiguous runs. Every cross-region link is a gateway link, so the
    /// conservative lookahead is the minimum gateway delay — partitioning
    /// along domain boundaries is exactly what makes the windows long.
    ///
    /// `target <= 1` (or a single domain) collapses to one region.
    pub fn region_hints(&self, target: usize) -> Vec<u32> {
        let n = self.node_count();
        if target <= 1 || self.domains == 0 {
            return vec![0; n];
        }
        let buckets = (target - 1).min(self.domains);
        let mut hints = vec![0u32; n];
        for d in 0..self.domains {
            let region = 1 + (d * buckets / self.domains) as u32;
            for v in self.domain_nodes(d) {
                hints[v] = region;
            }
        }
        hints
    }
}

/// Generate a hierarchical internetwork: a Waxman AS-level backbone with
/// `domains` stub domains hung off random attachment routers.
///
/// Each domain is a random spanning tree (delay-1 links) over
/// `domain_size` routers plus `domain_extra_edges` random shortcuts, and
/// its gateway (first node of the block) gets one link to a random
/// backbone router with a delay drawn from `gateway_delay`. The result is
/// connected by construction and deterministic per seed.
pub fn hierarchical(params: &HierParams, rng: &mut impl Rng) -> HierTopology {
    assert!(params.backbone.nodes >= 2, "backbone needs two routers");
    assert!(params.domain_size >= 1, "empty domains are pointless");
    let (lo, hi) = params.gateway_delay;
    assert!(lo >= 1 && lo <= hi, "invalid gateway delay range");

    let b = params.backbone.nodes;
    let n = b + params.domains * params.domain_size;
    let mut g = Graph::with_nodes(n);
    // Backbone first: its nodes keep their ids when copied into the big
    // graph, so the Waxman edge list transfers verbatim.
    let bb = waxman(&params.backbone, rng);
    for (_, e) in bb.edges() {
        g.add_edge(e.a, e.b, e.weight);
    }

    let mut domain_of = vec![0u32; n];
    let mut attachment = Vec::with_capacity(params.domains);
    for d in 0..params.domains {
        let base = b + d * params.domain_size;
        domain_of[base..base + params.domain_size].fill(1 + d as u32);
        // Random intra-domain tree rooted at the gateway.
        for i in 1..params.domain_size {
            let parent = base + rng.gen_range(0..i);
            g.add_edge(NodeId((base + i) as u32), NodeId(parent as u32), 1);
        }
        for _ in 0..params.domain_extra_edges {
            if params.domain_size < 3 {
                break;
            }
            let a = base + rng.gen_range(0..params.domain_size);
            let c = base + rng.gen_range(0..params.domain_size);
            if a != c && !g.has_edge(NodeId(a as u32), NodeId(c as u32)) {
                g.add_edge(NodeId(a as u32), NodeId(c as u32), 1);
            }
        }
        // Hang the gateway off a random backbone router.
        let att = NodeId(rng.gen_range(0..b as u32));
        g.add_edge(NodeId(base as u32), att, rng.gen_range(lo..=hi));
        attachment.push(att);
    }

    debug_assert!(crate::algo::is_connected(&g));
    HierTopology {
        graph: g,
        backbone: b,
        domains: params.domains,
        domain_size: params.domain_size,
        domain_of,
        attachment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_connected_meets_degree_target() {
        let mut rng = StdRng::seed_from_u64(7);
        for deg in 3..=8 {
            let params = RandomGraphParams {
                nodes: 50,
                avg_degree: deg as f64,
                delay_range: (1, 10),
            };
            let g = random_connected(&params, &mut rng);
            assert!(is_connected(&g));
            assert_eq!(g.node_count(), 50);
            let expected_edges = (deg * 50 / 2) as usize;
            assert_eq!(g.edge_count(), expected_edges);
            assert!((g.average_degree() - deg as f64).abs() < 0.05);
        }
    }

    #[test]
    fn random_connected_delays_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = RandomGraphParams::default();
        let g = random_connected(&params, &mut rng);
        for (_, e) in g.edges() {
            assert!(
                (1..=10).contains(&e.weight),
                "delay {} out of range",
                e.weight
            );
        }
    }

    #[test]
    fn random_connected_deterministic_per_seed() {
        let params = RandomGraphParams::default();
        let g1 = random_connected(&params, &mut StdRng::seed_from_u64(42));
        let g2 = random_connected(&params, &mut StdRng::seed_from_u64(42));
        let e1: Vec<_> = g1.edges().map(|(_, e)| *e).collect();
        let e2: Vec<_> = g2.edges().map(|(_, e)| *e).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn random_connected_simple_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_connected(&RandomGraphParams::default(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for (_, e) in g.edges() {
            let key = (e.a.min(e.b), e.a.max(e.b));
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
    }

    #[test]
    fn waxman_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = waxman(&WaxmanParams::default(), &mut rng);
            assert!(is_connected(&g));
            assert_eq!(g.node_count(), 50);
            assert!(g.edge_count() >= 49);
        }
    }

    #[test]
    fn waxman_delays_positive() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = waxman(&WaxmanParams::default(), &mut rng);
        for (_, e) in g.edges() {
            assert!(e.weight >= 1);
        }
    }

    #[test]
    fn three_domains_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, members, rp) = three_domains(5, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(g.node_count(), 18);
        // Members are distinct and in distinct domains.
        assert_eq!(members[0], NodeId(4));
        assert_eq!(members[1], NodeId(9));
        assert_eq!(members[2], NodeId(14));
        assert_eq!(rp, NodeId(15));
    }

    #[test]
    fn hierarchical_shape_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(21);
        let params = HierParams {
            backbone: WaxmanParams {
                nodes: 12,
                ..WaxmanParams::default()
            },
            domains: 10,
            domain_size: 7,
            domain_extra_edges: 2,
            gateway_delay: (5, 15),
        };
        let h = hierarchical(&params, &mut rng);
        assert_eq!(h.node_count(), 12 + 70);
        assert_eq!(h.graph.node_count(), h.node_count());
        assert!(is_connected(&h.graph));
        // Domain metadata is consistent with the block layout.
        for d in 0..10 {
            for v in h.domain_nodes(d) {
                assert_eq!(h.domain_of[v], 1 + d as u32);
            }
            assert!(h.attachment[d].index() < 12);
            assert!(h.graph.has_edge(h.gateway(d), h.attachment[d]));
        }
        for v in 0..12 {
            assert_eq!(h.domain_of[v], 0);
        }
    }

    #[test]
    fn hierarchical_deterministic_per_seed() {
        let params = HierParams::default();
        let h1 = hierarchical(&params, &mut StdRng::seed_from_u64(33));
        let h2 = hierarchical(&params, &mut StdRng::seed_from_u64(33));
        let e1: Vec<_> = h1.graph.edges().map(|(_, e)| *e).collect();
        let e2: Vec<_> = h2.graph.edges().map(|(_, e)| *e).collect();
        assert_eq!(e1, e2);
        assert_eq!(h1.domain_of, h2.domain_of);
        assert_eq!(h1.attachment, h2.attachment);
    }

    #[test]
    fn hierarchical_degree_stays_bounded() {
        // The whole point of the hierarchy: average degree must not grow
        // with the domain count (a flat Waxman graph's would).
        let mut rng = StdRng::seed_from_u64(8);
        let small = hierarchical(
            &HierParams {
                domains: 10,
                ..HierParams::default()
            },
            &mut rng,
        );
        let large = hierarchical(
            &HierParams {
                domains: 100,
                ..HierParams::default()
            },
            &mut rng,
        );
        assert!(large.graph.average_degree() <= small.graph.average_degree() + 0.5);
    }

    #[test]
    fn hierarchical_region_hints_cut_only_gateway_links() {
        let mut rng = StdRng::seed_from_u64(13);
        let h = hierarchical(
            &HierParams {
                domains: 12,
                ..HierParams::default()
            },
            &mut rng,
        );
        let hints = h.region_hints(4);
        assert_eq!(hints.len(), h.node_count());
        // Backbone is region 0; domains use 1..4.
        assert!(hints[..h.backbone].iter().all(|&r| r == 0));
        assert!(hints.iter().all(|&r| r < 4));
        assert!((1..4).all(|r| hints.contains(&r)));
        // Every edge that crosses regions is a gateway link, whose delay
        // (>= 1) is what the parallel core's lookahead will be.
        for (_, e) in h.graph.edges() {
            if hints[e.a.index()] != hints[e.b.index()] {
                assert!(e.weight >= 5, "cross-region edge with delay {}", e.weight);
            }
        }
        // target <= 1 collapses to a single region.
        assert!(h.region_hints(1).iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "average degree")]
    fn infeasible_degree_rejected() {
        let params = RandomGraphParams {
            nodes: 4,
            avg_degree: 5.0,
            delay_range: (1, 10),
        };
        random_connected(&params, &mut StdRng::seed_from_u64(0));
    }
}
