//! Property tests for the graph algorithms: Dijkstra is validated against
//! an independent Bellman-Ford implementation, and the generators'
//! contracts are pinned.

use graph::algo::{bfs_hops, dijkstra, is_connected, AllPairs};
use graph::gen::{random_connected, RandomGraphParams};
use graph::{Graph, NodeId, Weight};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reference shortest-path: Bellman-Ford (edge-list relaxations).
fn bellman_ford(g: &Graph, src: NodeId) -> Vec<Option<Weight>> {
    let n = g.node_count();
    let mut dist: Vec<Option<Weight>> = vec![None; n];
    dist[src.index()] = Some(0);
    for _ in 0..n {
        let mut changed = false;
        for (_, e) in g.edges() {
            for (a, b) in [(e.a, e.b), (e.b, e.a)] {
                if let Some(da) = dist[a.index()] {
                    let cand = da + e.weight;
                    if dist[b.index()].is_none_or(|db| cand < db) {
                        dist[b.index()] = Some(cand);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Densest feasible degree up to 3 (a 2-node simple graph tops out
        // at average degree 1).
        let avg_degree = (n as f64 - 1.0).min(3.0);
        random_connected(
            &RandomGraphParams {
                nodes: n,
                avg_degree,
                delay_range: (1, 9),
            },
            &mut rng,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph(), src_pick in any::<prop::sample::Index>()) {
        let src = NodeId(src_pick.index(g.node_count()) as u32);
        let sp = dijkstra(&g, src);
        let reference = bellman_ford(&g, src);
        for v in g.nodes() {
            prop_assert_eq!(sp.dist_to(v), reference[v.index()], "{:?}→{:?}", src, v);
        }
    }

    #[test]
    fn dijkstra_paths_are_consistent(g in arb_graph(), src_pick in any::<prop::sample::Index>()) {
        let src = NodeId(src_pick.index(g.node_count()) as u32);
        let sp = dijkstra(&g, src);
        for v in g.nodes() {
            let Some(d) = sp.dist_to(v) else { continue };
            // The reported path's edge weights must sum to the distance.
            let edges = sp.path_edges_to(&g, v).expect("reachable");
            let total: Weight = edges.iter().map(|&e| g.edge(e).weight).sum();
            prop_assert_eq!(total, d);
            // And the node path must be edge-connected.
            let path = sp.path_to(&g, v).expect("reachable");
            prop_assert_eq!(path[0], src);
            prop_assert_eq!(*path.last().expect("nonempty"), v);
            for w in path.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn all_pairs_is_symmetric_and_triangle_bounded(g in arb_graph()) {
        let ap = AllPairs::new(&g);
        for a in g.nodes() {
            prop_assert_eq!(ap.dist(a, a), Some(0));
            for b in g.nodes() {
                prop_assert_eq!(ap.dist(a, b), ap.dist(b, a));
                for c in g.nodes() {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (ap.dist(a, b), ap.dist(b, c), ap.dist(a, c))
                    {
                        prop_assert!(ac <= ab + bc, "triangle inequality");
                    }
                }
            }
        }
    }

    #[test]
    fn generator_contract(n in 4usize..40, deg in 3u32..6, seed in any::<u64>()) {
        let deg = (deg as f64).min(n as f64 - 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_connected(
            &RandomGraphParams { nodes: n, avg_degree: deg, delay_range: (1, 10) },
            &mut rng,
        );
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.node_count(), n);
        let target = ((deg * n as f64) / 2.0).round() as usize;
        prop_assert_eq!(g.edge_count(), target.max(n - 1));
        // Simple graph: no duplicate edges.
        let mut seen = std::collections::HashSet::new();
        for (_, e) in g.edges() {
            prop_assert!(seen.insert((e.a.min(e.b), e.a.max(e.b))));
        }
    }

    #[test]
    fn bfs_hops_lower_bounds_weighted_distance(g in arb_graph(), src_pick in any::<prop::sample::Index>()) {
        let src = NodeId(src_pick.index(g.node_count()) as u32);
        let hops = bfs_hops(&g, src);
        let sp = dijkstra(&g, src);
        for v in g.nodes() {
            match (hops[v.index()], sp.dist_to(v)) {
                (Some(h), Some(d)) => prop_assert!(u64::from(h) <= d, "min weight is 1"),
                (None, None) => {}
                other => prop_assert!(false, "reachability mismatch {other:?}"),
            }
        }
    }
}
