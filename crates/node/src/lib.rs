//! The generic router adapter shared by every multicast routing protocol.
//!
//! PIM, DVMRP, and CBT differ in their protocol engines, but their
//! [`netsim`] adapters were structural triplets: decapsulate the packet,
//! dispatch to the engine / the per-interface IGMP querier / the unicast
//! engine, carry out the outputs, and poll everything on a fixed tick. This
//! crate collapses the three copies into one [`ProtocolNode`], generic over
//! a [`ProtocolEngine`] — the small trait each protocol implements on its
//! sans-IO engine.
//!
//! The adapter is **deadline-driven**, not polled: after every event it
//! asks each engine for its [`next_deadline`](ProtocolEngine::next_deadline)
//! and arms exactly one cancellable wakeup timer at the earliest one. An
//! idle converged network therefore dispatches events at the rate of
//! protocol refresh periods (whole seconds of simulated time), not at a
//! fixed poll granularity — the paper's scaling argument (§1: overhead must
//! track state, not wall-clock) applied to the simulator itself.

#![warn(missing_docs)]

use igmp::{Querier, QuerierOutput};
use netsim::{earliest, Ctx, Duration, IfaceId, Node, SimTime, TimerId};
use std::any::Any;
use std::collections::HashMap;
use telemetry::{message_kind, Event, StateDump, Telem};
use unicast::Rib;
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

/// Timer token for the single deadline wakeup.
const TOKEN_WAKE: u64 = 1;

/// An IO action requested by a [`ProtocolEngine`]. The node owns all
/// serialization and transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send a control message out `iface`.
    Control {
        /// Interface to transmit on.
        iface: IfaceId,
        /// Destination address for the network header.
        dst: Addr,
        /// Network TTL (1 for link-local chatter, larger for unicast
        /// messages like PIM Registers).
        ttl: u8,
        /// The message.
        msg: Message,
    },
    /// Forward multicast data out a set of interfaces.
    Forward {
        /// Interfaces to transmit on.
        ifaces: Vec<IfaceId>,
        /// Original source host (network-header source).
        source: Addr,
        /// Destination group.
        group: Group,
        /// TTL to stamp on the forwarded copies (the decremented arrival
        /// TTL on the data path; a fresh origination TTL for decapsulated
        /// registers).
        ttl: u8,
        /// The data payload.
        payload: Vec<u8>,
    },
    /// The packet under consideration is unicast traffic in transit (e.g. a
    /// Register addressed to some other router): forward the original
    /// packet by the unicast routing table.
    RelayUnicast,
}

/// What a multicast routing protocol must expose for [`ProtocolNode`] to
/// drive it. Implemented by the PIM, DVMRP, and CBT engines.
///
/// IGMP host messages and unicast routing messages never reach
/// [`on_control`](ProtocolEngine::on_control) — the node routes those to
/// the per-interface [`Querier`]s and the unicast engine itself.
///
/// The [`StateDump`] supertrait is the `show mroute` of the simulator:
/// every engine renders its live (*,G)/(S,G)/tree state as stable text
/// for replay artifacts and debugging.
pub trait ProtocolEngine: StateDump + Send {
    /// This router's address.
    fn addr(&self) -> Addr;

    /// A control message arrived on `iface`. `src`/`dst` are the network
    /// header addresses (Registers need `dst` to tell "for me" from "in
    /// transit").
    fn on_control(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        dst: Addr,
        msg: &Message,
        rib: &dyn Rib,
    ) -> Vec<Action>;

    /// A multicast data packet arrived on `iface`. `ttl` is the already
    /// decremented TTL to stamp on forwarded copies; `from_host_lan` is
    /// true when the arrival interface is a directly attached host
    /// subnetwork (the DR origination path for protocols that distinguish
    /// it).
    #[allow(clippy::too_many_arguments)]
    fn on_multicast_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        ttl: u8,
        payload: &[u8],
        from_host_lan: bool,
        rib: &dyn Rib,
    ) -> Vec<Action>;

    /// Does this router forward unicast data packets not addressed to it?
    /// (PIM and CBT relay Registers and plain unicast; dense-mode DVMRP
    /// drops non-multicast data.)
    fn relays_unicast(&self) -> bool {
        true
    }

    /// IGMP reported a first local member of `group` on `iface`.
    fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Action>;

    /// IGMP expired the last local member of `group` on `iface`.
    fn local_member_left(&mut self, now: SimTime, group: Group, iface: IfaceId) -> Vec<Action>;

    /// A host advertised the RP set for `group` (paper §3.1 footnote 9).
    /// Only PIM cares; the default ignores it.
    fn rp_mapping_learned(&mut self, _group: Group, _rps: &[Addr]) {}

    /// `iface` was declared a host-facing subnetwork. Grow/mark any
    /// engine-side per-interface state; return how many interfaces the
    /// unicast engine must grow to stay index-aligned.
    fn host_lan_attached(&mut self, iface: IfaceId) -> u32;

    /// Register a directly attached host (a potential source) on `iface`.
    fn register_local_host(&mut self, host: Addr, iface: IfaceId);

    /// The unicast route toward `dst` changed (§3.8 repair for PIM; the
    /// dense/CBT baselines re-derive paths lazily and ignore it).
    fn on_route_change(&mut self, _now: SimTime, _dst: Addr, _rib: &dyn Rib) -> Vec<Action> {
        Vec::new()
    }

    /// Drop all volatile protocol state (crash with total state loss,
    /// [`netsim::World::crash_node`]). Static configuration survives —
    /// address, interface roles, registered local hosts, and administrative
    /// mappings (RP sets, core placements) model NVRAM config — while
    /// adjacencies, tree/table entries, and pending timer deadlines are
    /// erased, so a restarted router rebuilds everything from protocol
    /// exchange alone.
    fn reset(&mut self);

    /// Run soft-state maintenance. Called when a deadline matures; engines
    /// gate internally, so early calls are harmless.
    fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Action>;

    /// The absolute time of the engine's next pending timer; `None` when
    /// fully quiescent.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Attach a structured-event handle ([`telemetry::Telem`]). Engines
    /// emit entry-lifecycle and election events through it; the default
    /// no-op suits engines with nothing protocol-specific to report.
    fn set_telemetry(&mut self, _telem: Telem) {}
}

/// A router node: one [`ProtocolEngine`] + one interchangeable unicast
/// engine + one IGMP [`Querier`] per host-facing interface, glued to the
/// simulator with deadline-driven scheduling.
pub struct ProtocolNode<P: ProtocolEngine> {
    engine: P,
    unicast: Box<dyn unicast::Engine>,
    queriers: HashMap<IfaceId, Querier>,
    /// Count of multicast data packets this router forwarded (processing
    /// overhead metric).
    pub data_forwards: u64,
    /// Count of control messages processed.
    pub control_msgs: u64,
    /// Count of received payloads dropped because they failed to decode
    /// (truncated frames, checksum mismatches, unknown types…). Zero on a
    /// clean channel; nonzero only under channel corruption.
    pub malformed_drops: u64,
    /// The single armed wakeup, if any: (fire time, timer handle).
    wakeup: Option<(SimTime, TimerId)>,
    /// Structured-event handle (disabled unless a sink is attached).
    telem: Telem,
}

impl<P: ProtocolEngine> ProtocolNode<P> {
    /// Build a router from its protocol engine and a unicast routing
    /// engine.
    pub fn new(engine: P, unicast: Box<dyn unicast::Engine>) -> ProtocolNode<P> {
        ProtocolNode {
            engine,
            unicast,
            queriers: HashMap::new(),
            data_forwards: 0,
            control_msgs: 0,
            malformed_drops: 0,
            wakeup: None,
            telem: Telem::disabled(),
        }
    }

    /// Attach a structured-event handle; it is forwarded to the engine
    /// so protocol transitions and adapter-level events (control
    /// send/receive, deliveries, membership, querier elections) share
    /// one sink. Telemetry only observes — attaching never changes
    /// protocol behavior or packet traces.
    pub fn set_telemetry(&mut self, telem: Telem) {
        self.telem = telem.clone();
        self.engine.set_telemetry(telem);
    }

    /// The engine's `show mroute`-style state snapshot at `now`.
    pub fn state_dump(&self, now: SimTime) -> String {
        self.engine.state_dump(now.ticks())
    }

    /// Declare `iface` a host-facing subnetwork: an IGMP querier runs
    /// there, attached `hosts` are registered as potential sources, and
    /// the unicast engine originates reachability for them.
    pub fn attach_host_lan(&mut self, iface: IfaceId, hosts: &[Addr]) {
        let grow = self.engine.host_lan_attached(iface);
        for _ in 0..grow {
            self.unicast.grow_iface(1);
        }
        self.queriers.insert(
            iface,
            Querier::new(self.engine.addr(), igmp::Config::default()),
        );
        for &h in hosts {
            self.engine.register_local_host(h, iface);
            self.unicast.attach_local(h, 1);
        }
    }

    /// The protocol engine (inspection).
    pub fn engine(&self) -> &P {
        &self.engine
    }

    /// The protocol engine, mutably (pre-run configuration: RP mappings,
    /// cores, LAN declarations).
    pub fn engine_mut(&mut self) -> &mut P {
        &mut self.engine
    }

    /// The unicast engine (inspection).
    pub fn rib(&self) -> &dyn unicast::Engine {
        self.unicast.as_ref()
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.engine.addr()
    }

    fn send_control(
        &mut self,
        ctx: &mut Ctx<'_>,
        iface: IfaceId,
        dst: Addr,
        ttl: u8,
        msg: &Message,
    ) {
        self.telem.emit(ctx.now().ticks(), || Event::CtrlSend {
            kind: message_kind(msg),
            dst,
        });
        let header = Header {
            proto: Protocol::Igmp,
            ttl,
            src: self.engine.addr(),
            dst,
        };
        ctx.send(iface, header.encap(&msg.encode()));
    }

    /// Carry out engine actions; returns true if the engine asked for the
    /// current packet to be relayed as unicast.
    fn handle_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<Action>) -> bool {
        let mut relay = false;
        for a in actions {
            match a {
                Action::Control {
                    iface,
                    dst,
                    ttl,
                    msg,
                } => {
                    self.send_control(ctx, iface, dst, ttl, &msg);
                }
                Action::Forward {
                    ifaces,
                    source,
                    group,
                    ttl,
                    payload,
                } => {
                    let header = Header {
                        proto: Protocol::Data,
                        ttl,
                        src: source,
                        dst: group.addr(),
                    };
                    let pkt = header.encap(&payload);
                    for i in ifaces {
                        self.data_forwards += 1;
                        if self.queriers.contains_key(&i) {
                            // Any forward onto a host LAN is a delivery edge
                            // for the experiment counters.
                            ctx.count_local_delivery();
                            self.telem
                                .emit(ctx.now().ticks(), || Event::DataDelivered { group, source });
                        }
                        ctx.send(i, pkt.clone());
                    }
                }
                Action::RelayUnicast => relay = true,
            }
        }
        relay
    }

    fn handle_unicast_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<unicast::Output>) {
        let now = ctx.now();
        for o in outputs {
            match o {
                unicast::Output::Send { iface, dst, msg } => {
                    self.send_control(ctx, iface, dst, 1, &msg);
                }
                unicast::Output::RouteChanged { dst } => {
                    self.telem.emit(now.ticks(), || Event::RouteChanged { dst });
                    let acts = self.engine.on_route_change(now, dst, self.unicast.as_ref());
                    self.handle_actions(ctx, acts);
                }
            }
        }
    }

    fn handle_querier_outputs(
        &mut self,
        ctx: &mut Ctx<'_>,
        iface: IfaceId,
        outputs: Vec<QuerierOutput>,
    ) {
        let now = ctx.now();
        for o in outputs {
            match o {
                QuerierOutput::Send { dst, msg } => {
                    self.send_control(ctx, iface, dst, 1, &msg);
                }
                QuerierOutput::MemberJoined(group) => {
                    self.telem
                        .emit(now.ticks(), || Event::LocalMemberJoined { group });
                    let acts =
                        self.engine
                            .local_member_joined(now, group, iface, self.unicast.as_ref());
                    self.handle_actions(ctx, acts);
                }
                QuerierOutput::MemberExpired(group) => {
                    self.telem
                        .emit(now.ticks(), || Event::LocalMemberLeft { group });
                    let acts = self.engine.local_member_left(now, group, iface);
                    self.handle_actions(ctx, acts);
                }
                QuerierOutput::RpMappingLearned(group, rps) => {
                    self.engine.rp_mapping_learned(group, &rps);
                }
            }
        }
    }

    /// Forward a unicast packet not addressed to us via the routing table.
    fn forward_unicast(&mut self, ctx: &mut Ctx<'_>, header: &Header, payload: &[u8]) {
        let Some(next) = header.decrement_ttl() else {
            return; // TTL exhausted
        };
        if let Some(r) = self.unicast.route(header.dst) {
            ctx.send(r.iface, next.encap(payload));
        }
    }

    /// The earliest deadline across the protocol engine, the unicast
    /// engine, and every IGMP querier.
    fn next_deadline(&self) -> Option<SimTime> {
        let mut best = self.engine.next_deadline();
        best = earliest(best, self.unicast.next_deadline());
        for q in self.queriers.values() {
            best = earliest(best, q.next_deadline());
        }
        best
    }

    /// (Re)arm the single wakeup at the earliest pending deadline, clamped
    /// to `floor`. Packet handlers pass `now` (a same-instant deadline is
    /// processed before time advances); the timer handler passes `now + 1`
    /// so a deadline its tick could not clear cannot spin the event loop at
    /// one instant forever.
    fn reschedule(&mut self, ctx: &mut Ctx<'_>, floor: SimTime) {
        let Some(d) = self.next_deadline() else {
            if let Some((_, id)) = self.wakeup.take() {
                ctx.cancel_timer(id);
            }
            return;
        };
        let at = d.max(floor);
        if let Some((t, id)) = self.wakeup {
            if t == at {
                return; // already armed at the right instant
            }
            ctx.cancel_timer(id);
        }
        let id = ctx.set_timer_at(at, TOKEN_WAKE);
        self.wakeup = Some((at, id));
    }

    fn on_igmp_family(
        &mut self,
        ctx: &mut Ctx<'_>,
        iface: IfaceId,
        header: &Header,
        payload: &[u8],
    ) {
        let msg = match Message::decode(payload) {
            Ok(msg) => msg,
            // Malformed control traffic is dropped, never panics — but the
            // drop is accounted (counter + world counters + telemetry with
            // the DecodeError kind and ingress interface), so the
            // adversarial-channel experiments can audit every lost frame.
            Err(e) => {
                self.malformed_drops += 1;
                ctx.count_decode_failure(iface, e.kind());
                return;
            }
        };
        self.control_msgs += 1;
        let now = ctx.now();
        self.telem.emit(now.ticks(), || Event::CtrlRecv {
            kind: message_kind(&msg),
            src: header.src,
        });
        match &msg {
            Message::HostQuery(_) | Message::HostReport(_) | Message::RpMapping(_) => {
                if let Some(q) = self.queriers.get_mut(&iface) {
                    let was_querier = q.is_querier();
                    let outs = q.on_message(now, header.src, &msg);
                    let is_querier = q.is_querier();
                    if was_querier != is_querier {
                        self.telem.emit(now.ticks(), || Event::QuerierChanged {
                            iface: iface.0,
                            is_querier,
                        });
                    }
                    self.handle_querier_outputs(ctx, iface, outs);
                }
            }
            Message::DvUpdate(_) | Message::Lsa(_) | Message::Hello(_) => {
                let outs = self.unicast.on_message(now, iface, header.src, &msg);
                self.handle_unicast_outputs(ctx, outs);
            }
            _ => {
                let acts = self.engine.on_control(
                    now,
                    iface,
                    header.src,
                    header.dst,
                    &msg,
                    self.unicast.as_ref(),
                );
                if self.handle_actions(ctx, acts) {
                    self.forward_unicast(ctx, header, payload);
                }
            }
        }
    }

    fn on_data_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        iface: IfaceId,
        header: &Header,
        payload: &[u8],
    ) {
        let now = ctx.now();
        if header.dst.is_multicast() {
            let Some(group) = Group::new(header.dst) else {
                return;
            };
            let Some(fwd) = header.decrement_ttl() else {
                return;
            };
            let from_host_lan = self.queriers.contains_key(&iface);
            let acts = self.engine.on_multicast_data(
                now,
                iface,
                header.src,
                group,
                fwd.ttl,
                payload,
                from_host_lan,
                self.unicast.as_ref(),
            );
            self.handle_actions(ctx, acts);
        } else if header.dst != self.engine.addr() && self.engine.relays_unicast() {
            self.forward_unicast(ctx, header, payload);
        }
    }
}

impl<P: ProtocolEngine + 'static> Node for ProtocolNode<P> {
    fn set_telemetry(&mut self, telem: Telem) {
        ProtocolNode::set_telemetry(self, telem);
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.unicast.on_start(ctx.now());
        self.handle_unicast_outputs(ctx, outs);
        self.reschedule(ctx, ctx.now());
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        let (header, payload) = match Header::decap(packet) {
            Ok(hp) => hp,
            Err(e) => {
                // Corrupt packets are dropped at the network layer; same
                // accounting as an undecodable IGMP-family payload.
                self.malformed_drops += 1;
                ctx.count_decode_failure(iface, e.kind());
                return;
            }
        };
        match header.proto {
            Protocol::Igmp => self.on_igmp_family(ctx, iface, &header, payload),
            Protocol::Data => self.on_data_packet(ctx, iface, &header, payload),
        }
        self.reschedule(ctx, ctx.now());
    }

    /// Crash with total state loss: the protocol engine, the unicast
    /// engine, and every IGMP querier forget their volatile state. The
    /// world has already cancelled our armed wakeup.
    fn on_crash(&mut self) {
        self.engine.reset();
        self.unicast.reset();
        let addr = self.engine.addr();
        for q in self.queriers.values_mut() {
            *q = Querier::new(addr, igmp::Config::default());
        }
        self.wakeup = None;
    }

    // on_restart: the default cold-boot via on_start is exactly right —
    // the unicast engine re-announces and the single wakeup is re-armed at
    // the earliest post-reset deadline (typically "immediately").

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_WAKE {
            return;
        }
        self.wakeup = None;
        let now = ctx.now();
        // Tick every engine; each gates internally on its own deadlines, so
        // a wakeup armed for one engine costs the others a cheap no-op.
        if self.unicast.tick_interval().ticks() != u64::MAX {
            let outs = self.unicast.tick(now);
            self.handle_unicast_outputs(ctx, outs);
        }
        // Most routers in a large topology have no host LANs, and their
        // wakeups fire on every engine deadline — don't pay a key-snapshot
        // allocation for an empty querier map.
        if !self.queriers.is_empty() {
            let ifaces: Vec<IfaceId> = self.queriers.keys().copied().collect();
            for i in ifaces {
                // Keys are a snapshot; if a concurrent fault path ever
                // removed a querier mid-iteration, skip it rather than
                // aborting the sim.
                let Some(q) = self.queriers.get_mut(&i) else {
                    continue;
                };
                let was_querier = q.is_querier();
                let outs = q.tick(now);
                let is_querier = q.is_querier();
                if was_querier != is_querier {
                    self.telem.emit(now.ticks(), || Event::QuerierChanged {
                        iface: i.0,
                        is_querier,
                    });
                }
                self.handle_querier_outputs(ctx, i, outs);
            }
        }
        let acts = self.engine.tick(now, self.unicast.as_ref());
        self.handle_actions(ctx, acts);
        self.reschedule(ctx, now + Duration(1));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
