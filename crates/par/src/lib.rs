//! Deterministic trial-level parallelism for the Monte-Carlo experiments.
//!
//! The Figure-2 study and the schedule explorer run hundreds of
//! independent trials per configuration point. Parallelism must not
//! change results, so the contract here is strict:
//!
//! * **Per-trial seed derivation.** A trial's RNG is
//!   `StdRng::seed_from_u64(mix(seed, stream, trial))` — a pure function
//!   of the experiment seed, the sweep point (e.g. node degree), and the
//!   trial index. No trial ever reads another trial's RNG stream, so the
//!   schedule of threads cannot influence any trial's randomness.
//! * **Ordered collection.** [`run_trials`] returns results indexed by
//!   trial, whatever interleaving the OS chose; callers print from the
//!   returned vector only. Together these make experiment output
//!   **bit-identical for any `--threads N`** (asserted by
//!   `crates/bench/tests/thread_determinism.rs`).
//!
//! Threads come from [`std::thread::scope`] — no work-stealing runtime,
//! no extra dependencies; trials are striped across workers so a slow
//! region of the trial space (e.g. high-degree graphs) spreads evenly.

#![warn(missing_docs)]

/// Derive a per-trial seed from the experiment seed, a stream id (sweep
/// point: node degree, loss level, ...), and the trial index.
///
/// SplitMix64-style finalizer over a multiplicative combination of the
/// three inputs: adjacent `(stream, trial)` pairs land in statistically
/// unrelated parts of the 64-bit space, so trial RNGs never overlap the
/// way `seed ^ trial` streams can.
#[inline]
pub fn mix(seed: u64, stream: u64, trial: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ trial.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 62)
}

/// The machine's available parallelism (defaults `--threads`).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `trials` independent trials of `f` across `threads` scoped
/// threads and return the results **in trial order**.
///
/// Trial `i` is computed by worker `i % threads` (striping), but the
/// returned vector is indexed by trial, so the output is identical for
/// every thread count — including `threads == 1`, which runs inline with
/// no thread machinery at all. `f` must derive all of its randomness
/// from the trial index (see [`mix`]); that is what makes the fan-out
/// deterministic rather than merely parallel.
///
/// # Panics
/// Propagates a panic from any trial.
pub fn run_trials<T, F>(threads: usize, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    if threads == 1 {
        return (0..trials).map(f).collect();
    }
    let f = &f;
    let stripes: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|k| s.spawn(move || (k..trials).step_by(threads).map(f).collect::<Vec<T>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial worker panicked"))
            .collect()
    });
    let mut iters: Vec<_> = stripes.into_iter().map(Vec::into_iter).collect();
    (0..trials)
        .map(|i| iters[i % threads].next().expect("stripe underrun"))
        .collect()
}

/// Run `f` once over every item of `items` (mutably, in place) across
/// `threads` scoped threads and return the per-item results **in item
/// order** — the region executor behind `netsim`'s partitioned world.
///
/// Item `i` is processed by worker `i % threads` (striping, like
/// [`run_trials`]); `threads == 1` runs inline with no thread machinery.
/// Each item is visited by exactly one worker per call, so `f` gets an
/// exclusive `&mut` without locks. Determinism is the *caller's* half of
/// the contract: `f(i, item)` must depend only on `i` and `item` (the
/// partitioned world guarantees this by giving every region its own
/// event heap, RNG streams, and counter shard).
///
/// # Panics
/// Propagates a panic from any item.
pub fn run_regions<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Stripe the exclusive borrows across workers up front; each worker
    // owns its stripe of `&mut T` for the whole call.
    let mut stripes: Vec<Vec<(usize, &mut T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        stripes[i % threads].push((i, item));
    }
    let f = &f;
    let done: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                s.spawn(move || {
                    stripe
                        .into_iter()
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in done.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("stripe underrun"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1994, 4, 17), mix(1994, 4, 17));
        let mut seen = HashSet::new();
        for stream in 0..16u64 {
            for trial in 0..256u64 {
                seen.insert(mix(1994, stream, trial));
            }
        }
        assert_eq!(seen.len(), 16 * 256, "derived seeds must not collide");
        // Swapping stream and trial must not alias.
        assert_ne!(mix(7, 3, 5), mix(7, 5, 3));
    }

    #[test]
    fn results_are_in_trial_order_for_any_thread_count() {
        let reference: Vec<u64> = (0..97).map(|i| mix(1, 0, i as u64)).collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let got = run_trials(threads, 97, |i| mix(1, 0, i as u64));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_regions_mutates_in_place_and_orders_results() {
        for threads in [1, 2, 3, 8] {
            let mut items: Vec<u64> = (0..13).collect();
            let got = run_regions(threads, &mut items, |i, item| {
                *item += 100;
                (i as u64) * 2
            });
            assert_eq!(
                items,
                (100..113u64).collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(got, (0..13).map(|i| i * 2).collect::<Vec<u64>>());
        }
        let mut empty: Vec<u8> = Vec::new();
        let got: Vec<u8> = run_regions(4, &mut empty, |_, _| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn zero_trials_is_empty() {
        let got: Vec<u8> = run_trials(4, 0, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn work_actually_crosses_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let max_seen = AtomicUsize::new(0);
        let ids: Vec<std::thread::ThreadId> = run_trials(4, 64, |i| {
            max_seen.fetch_max(i, Ordering::Relaxed);
            std::thread::current().id()
        });
        assert_eq!(max_seen.load(Ordering::Relaxed), 63);
        // On a multi-core box several worker ids appear; on a 1-core box
        // the scheduler may still serialize them, so only assert the
        // fan-out ran every trial under scoped threads.
        assert_eq!(ids.len(), 64);
    }
}
