//! Congestion-as-a-fault acceptance: capacity-model trace compatibility,
//! graceful degradation under overload, and the starvation repro loop
//! (violation -> shrink -> byte-identical replay artifact).

use scenario::{
    run_case, run_case_threads, shrink_violation, topology, verify_replay, Artifact, FaultEvent,
    FaultSchedule, Protocol,
};

/// A classic (capacity-free) schedule: joins plus a healed link flap.
fn capacity_free_schedule() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(40, FaultEvent::Join(2));
    s.push(300, FaultEvent::LinkDown(0));
    s.push(700, FaultEvent::LinkUp(0));
    s
}

/// A congesting schedule that still degrades gracefully: the r1-r2 link
/// (diamond link 1) is capped with control priority on, and a member
/// burst overloads it; everything heals before the probe train.
fn congested_schedule() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(40, FaultEvent::Join(2));
    s.push(500, FaultEvent::Bandwidth(1, 2, 48, 1));
    s.push(600, FaultEvent::Burst(1, 24, 2));
    s.push(2950, FaultEvent::Bandwidth(1, 0, 0, 1));
    s
}

/// Like [`congested_schedule`] but with control priority off and a queue
/// smaller than a register packet: every control packet crossing the
/// capped link tail-drops, so the no-starvation oracle must fire.
fn starved_schedule() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(40, FaultEvent::Join(2));
    s.push(500, FaultEvent::Bandwidth(1, 1, 24, 0));
    s.push(600, FaultEvent::Burst(1, 16, 1));
    s.push(2950, FaultEvent::Bandwidth(1, 0, 0, 1));
    s
}

/// Trace compatibility: a world whose schedule never touches capacity
/// runs exactly as before the capacity model existed — no congestion
/// telemetry, no extra randomness, and byte-identical traces at any
/// thread count (the committed corpus pins the pre-capacity fingerprints
/// themselves; this covers the thread axis and the event stream).
#[test]
fn capacity_disabled_is_trace_compatible_across_threads() {
    let topo = topology("diamond").unwrap();
    let schedule = capacity_free_schedule();
    for protocol in Protocol::ALL {
        let one = run_case_threads(&topo, protocol, &schedule, 11, 1);
        let four = run_case_threads(&topo, protocol, &schedule, 11, 4);
        assert_eq!(
            one.fingerprint,
            four.fingerprint,
            "{}: trace diverged across thread counts",
            protocol.name()
        );
        assert_eq!(
            one.telemetry,
            four.telemetry,
            "{}: telemetry diverged across thread counts",
            protocol.name()
        );
        for kind in ["queue_drop", "ecn_mark", "queue_depth"] {
            assert!(
                !one.telemetry.contains(&format!("\"ev\":\"{kind}\"")),
                "{}: capacity-disabled run emitted a {kind} event",
                protocol.name()
            );
        }
        assert!(
            one.violations.is_empty(),
            "{}: {:?}",
            protocol.name(),
            one.violations
        );
    }
}

/// Graceful degradation: the congested run actually queues (the capacity
/// model bites), yet every oracle stays green — bounded queues hold, the
/// prioritized control plane never starves, and delivery recovers after
/// the heal. And the whole thing is byte-identical at 1 vs 4 threads:
/// queueing delay is pure integer arithmetic, so the parallel-core
/// contract extends over congestion unchanged.
#[test]
fn congestion_degrades_gracefully_and_is_thread_invariant() {
    let topo = topology("diamond").unwrap();
    let schedule = congested_schedule();
    for protocol in Protocol::ALL {
        let one = run_case_threads(&topo, protocol, &schedule, 5, 1);
        let four = run_case_threads(&topo, protocol, &schedule, 5, 4);
        assert_eq!(
            one.fingerprint,
            four.fingerprint,
            "{}: congested trace diverged across thread counts",
            protocol.name()
        );
        assert_eq!(one.telemetry, four.telemetry, "{}", protocol.name());
        assert!(
            one.telemetry.contains("\"ev\":\"queue_depth\""),
            "{}: the cap never queued anything — workload too weak",
            protocol.name()
        );
        assert!(
            one.violations.is_empty(),
            "{}: congestion broke an oracle: {:?}",
            protocol.name(),
            one.violations
        );
    }
}

/// The no-starvation oracle catches an unprioritized cap: control
/// packets tail-drop behind the burst, the violation shrinks to a
/// smaller schedule still violating the same oracle, and the minimized
/// artifact replays byte-identically.
#[test]
fn starvation_is_caught_shrunk_and_replayable() {
    let topo = topology("diamond").unwrap();
    let schedule = starved_schedule();
    let outcome = run_case(&topo, Protocol::Pim, &schedule, 5);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.oracle == "no-starvation"),
        "expected a no-starvation violation, got {:?}",
        outcome.violations
    );

    let result =
        shrink_violation(&topo, Protocol::Pim, 5, &schedule).expect("schedule violates an oracle");
    assert!(
        result
            .outcome
            .violations
            .iter()
            .any(|v| v.oracle == "no-starvation"),
        "shrinking lost the no-starvation violation: {:?}",
        result.outcome.violations
    );
    assert!(
        result.schedule.events.len() <= schedule.events.len(),
        "shrinking must never grow the schedule"
    );

    let artifact = Artifact::capture(&topo, Protocol::Pim, &result.schedule, 5, &result.outcome);
    let replayed = verify_replay(&artifact).expect("minimized artifact must replay exactly");
    assert_eq!(replayed.fingerprint, result.outcome.fingerprint);

    // The artifact text round-trips exactly, schedule lines included.
    let text = artifact.to_text();
    let back = Artifact::from_text(&text).expect("parse artifact");
    assert_eq!(back, artifact);
}
