//! The committed regression corpus replays byte-identically in CI.
//!
//! `corpus/` holds shrinker-minimized `scenario-replay-v1` artifacts —
//! the PR 2 register-suppression and orphaned-upstream scenarios,
//! rebuilt minimal by `search rebuild-corpus`. Each artifact records
//! the trace and telemetry fingerprints, rendered violations, and
//! post-mortem dumps of its original run; this test re-executes every
//! one and demands exact equality on all four. Any behavioral drift in
//! the protocols, the schedule compiler, or the telemetry layer shows
//! up here as a diff, not as a silent regression.

use scenario::load_corpus;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn every_corpus_artifact_replays_byte_identically() {
    let corpus = load_corpus(&corpus_dir()).expect("corpus directory must load");
    assert!(
        !corpus.is_empty(),
        "committed corpus must not be empty (run ./scripts/search.sh rebuild-corpus)"
    );
    for (path, artifact) in &corpus {
        let outcome = scenario::verify_replay(artifact).unwrap_or_else(|e| {
            panic!("corpus artifact {} diverged on replay: {e}", path.display())
        });
        // The replayed telemetry stream must be complete: a JSONL write
        // error would silently hole the stream behind the fingerprint.
        assert_eq!(
            outcome.sink_errors,
            0,
            "{}: JSONL sink recorded write errors on replay",
            path.display()
        );
    }
}

#[test]
fn corpus_artifacts_round_trip_their_text_form() {
    for (path, artifact) in load_corpus(&corpus_dir()).expect("corpus directory must load") {
        let text = artifact.to_text();
        let reparsed = scenario::Artifact::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", path.display()));
        assert_eq!(
            artifact,
            reparsed,
            "{}: to_text/from_text not a fixpoint",
            path.display()
        );
        // The on-disk bytes are exactly the canonical serialization, so
        // `rebuild-corpus` output is diff-stable.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, text, "{}: file is not canonical", path.display());
    }
}

#[test]
fn corpus_covers_both_pr2_regressions() {
    let names: Vec<String> = load_corpus(&corpus_dir())
        .expect("corpus directory must load")
        .iter()
        .map(|(p, _)| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for pin in ["register-suppression.replay", "orphaned-upstream.replay"] {
        assert!(names.iter().any(|n| n == pin), "missing corpus pin {pin}");
    }
}
