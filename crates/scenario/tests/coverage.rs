//! `CoverageSink` contract: the coverage map is a pure fold of the
//! telemetry event stream, and that stream is byte-identical at any
//! thread count — so the map's stable hash must not move when the
//! parallel core's `--threads` knob does.

use scenario::{load_corpus, random_schedule, run_case_coverage, topology, Protocol};
use std::path::PathBuf;

/// Fixed grid of runs: every topology, every protocol, a fixed seed,
/// the explorer's own schedule generator. Expected hashes are not
/// hard-coded (they legitimately move when protocols evolve); what is
/// pinned is thread-count invariance and non-emptiness.
const TABLE: [(&str, Protocol, u64, bool); 4] = [
    ("diamond", Protocol::Pim, 11, false),
    ("line-stub", Protocol::Dvmrp, 5, false),
    ("mesh", Protocol::Cbt, 8, false),
    ("line-stub", Protocol::Pim, 2, true),
];

#[test]
fn coverage_hash_is_thread_count_invariant() {
    for (name, protocol, seed, teardown) in TABLE {
        let topo = topology(name).unwrap();
        let schedule = random_schedule(&topo, seed, teardown);
        let (o1, c1) = run_case_coverage(&topo, protocol, &schedule, seed, 1);
        let (o4, c4) = run_case_coverage(&topo, protocol, &schedule, seed, 4);
        assert_eq!(
            o1.telemetry,
            o4.telemetry,
            "{name}/{}/{seed}: telemetry bytes diverged across threads",
            protocol.name()
        );
        assert_eq!(
            c1.stable_hash(),
            c4.stable_hash(),
            "{name}/{}/{seed}: coverage hash diverged across threads",
            protocol.name()
        );
        assert!(
            c1.distinct() > 0,
            "{name}/{}/{seed}: coverage map is empty",
            protocol.name()
        );
        assert_eq!(c1.distinct(), c4.distinct());
        assert_eq!(c1.total(), c4.total());
        // Re-running the identical case reproduces the identical map:
        // the hash is stable, not merely collision-happy.
        let (_, c1b) = run_case_coverage(&topo, protocol, &schedule, seed, 1);
        assert_eq!(c1.stable_hash(), c1b.stable_hash());
    }
}

#[test]
fn replayed_corpus_artifacts_yield_stable_coverage_hashes() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let corpus = load_corpus(&dir).expect("corpus directory must load");
    assert!(!corpus.is_empty(), "committed corpus must not be empty");
    for (path, artifact) in corpus {
        let topo = topology(&artifact.topology).unwrap();
        let (_, c1) = run_case_coverage(
            &topo,
            artifact.protocol,
            &artifact.schedule,
            artifact.seed,
            1,
        );
        let (_, c4) = run_case_coverage(
            &topo,
            artifact.protocol,
            &artifact.schedule,
            artifact.seed,
            4,
        );
        assert_eq!(
            c1.stable_hash(),
            c4.stable_hash(),
            "{}: coverage hash diverged across threads",
            path.display()
        );
        assert!(c1.distinct() > 0, "{}: empty coverage map", path.display());
    }
}

/// The committed BENCH_telemetry record must show the disabled sink
/// still within its noise bound with the coverage mode present — the
/// "zero overhead when disabled" contract survives the new sink.
#[test]
fn bench_record_keeps_disabled_sink_within_noise() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_telemetry.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_telemetry.json must be committed");
    assert!(
        text.contains("\"sink\": \"coverage\""),
        "BENCH_telemetry.json lacks the coverage mode (regenerate: \
         cargo run -p bench --release --bin telemetry)"
    );
    assert!(
        text.contains("\"disabled_within_noise\": true"),
        "disabled-sink overhead exceeded the noise bound"
    );
}
