//! Shrinker contract: deterministic, property-preserving, 1-minimal.
//!
//! The property family under test starts from a schedule that reliably
//! violates delivery (crashing the line-stub junction router with no
//! restart) plus sampled noise events (extra faults, churn, retimes)
//! that the shrinker should strip back out. For every sampled input:
//!
//! * shrinking twice yields the identical schedule (determinism);
//! * the minimized run still violates the same set of oracles;
//! * the result is 1-minimal: deleting any single event (modulo
//!   re-normalization) either reconstructs the same schedule or stops
//!   violating that oracle set.
//!
//! Case count is deliberately small — each case costs dozens of full
//! simulations in debug mode — and the sampler is deterministic, so
//! the suite's cost is flat.

use proptest::prelude::*;
use scenario::schedule::{FaultEvent, FaultSchedule};
use scenario::{run_case, shrink_violation, topology, Protocol};
use std::collections::BTreeSet;

/// The reliably violating core: both members join, the junction router
/// crashes mid-window and never restarts — delivery across the junction
/// fails on every protocol (the same fixture `replay.rs` pins).
fn violating_core() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(40, FaultEvent::Join(3));
    s.push(300, FaultEvent::CrashRouter(2));
    s
}

/// Decode one sampled noise event onto the line-stub topology (5 links,
/// 6 routers, 4 host slots — `normalize` wraps whatever we produce).
fn noise_event(kind: u8, a: u64, b: u64) -> (u64, FaultEvent) {
    let at = 200 + (a % 2200);
    let ev = match kind % 6 {
        0 => FaultEvent::LinkDown(b as usize % 5),
        1 => FaultEvent::LinkLoss(b as usize % 5, 100 + (b % 400) as u32),
        2 => FaultEvent::CorruptLink(b as usize % 5, 100 + (b % 300) as u32),
        3 => FaultEvent::ReorderLink(b as usize % 5, 200, 5 + (b % 30)),
        // Slots 2 (never joined) and 3 (the source-adjacent member)
        // only: a Leave(1) would evict the one member whose path
        // crosses the crashed junction and un-violate the fixture.
        4 => FaultEvent::Leave(2 + (b % 2) as u32),
        _ => FaultEvent::Partition(vec![b as usize % 5, (b as usize + 1) % 5]),
    };
    (at, ev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn shrinking_is_deterministic_property_preserving_and_1_minimal(
        noise in prop::collection::vec((0u8..6, 0u64..3000, 0u64..1000), 0..4),
        seed in 0u64..50,
    ) {
        let topo = topology("line-stub").unwrap();

        let mut schedule = violating_core();
        for (kind, a, b) in noise {
            let (at, ev) = noise_event(kind, a, b);
            schedule.push(at, ev);
        }

        let original = run_case(&topo, Protocol::Pim, &schedule, seed);
        prop_assert!(!original.violations.is_empty(), "core fixture must violate");
        let oracles: BTreeSet<&str> = original.violations.iter().map(|v| v.oracle).collect();

        let first = shrink_violation(&topo, Protocol::Pim, seed, &schedule)
            .expect("violating input must shrink");
        let second = shrink_violation(&topo, Protocol::Pim, seed, &schedule)
            .expect("violating input must shrink again");

        // Deterministic: bit-identical schedule, outcome, and stats.
        prop_assert_eq!(&first.schedule, &second.schedule);
        prop_assert_eq!(first.outcome.fingerprint, second.outcome.fingerprint);
        prop_assert_eq!(first.stats, second.stats);

        // Property-preserving: the minimized run violates the same oracles.
        let got: BTreeSet<&str> = first.outcome.violations.iter().map(|v| v.oracle).collect();
        prop_assert!(
            oracles.iter().all(|o| got.contains(o)),
            "minimized run lost oracles: wanted {:?}, got {:?}", oracles, got
        );

        // Never grows.
        prop_assert!(first.stats.final_events <= first.stats.initial_events);

        // 1-minimal: no single deletion still violates the same oracle
        // set.
        for i in 0..first.schedule.events.len() {
            let cand = first.schedule.with_deleted(i);
            let o = run_case(&topo, Protocol::Pim, &cand, seed);
            let sub: BTreeSet<&str> = o.violations.iter().map(|v| v.oracle).collect();
            prop_assert!(
                !oracles.iter().all(|x| sub.contains(x)),
                "not 1-minimal: deleting event {i} of {:?} still violates {:?}",
                first.schedule.events, oracles
            );
        }
    }
}
