//! Duplicate-delivery idempotence.
//!
//! The adversarial channel can duplicate any frame, so every control
//! message a router acts on must be safe to process twice. For each
//! protocol we run the same scenario twice — once delivering a set of
//! crafted control frames a single time, once delivering each frame
//! twice at the same instant (exactly what link-level duplication does)
//! — and require the `show mroute`-style state dumps of **every** router
//! to be byte-identical. A zero-copy control run pins down that the
//! frames really do create or refresh state, so the equality is not
//! vacuous.

use netsim::{host_addr, router_addr, IfaceId, NodeIdx, SimTime};
use scenario::{build_net, topologies, FaultEvent, FaultSchedule, Protocol, Substrate};
use wire::ip::{Header, Protocol as IpProto};
use wire::{cbt, dvmrp, igmp, pim, Group, Message};

const DUMP_AT: u64 = 1600;

/// One crafted control frame: deliver to router `r` on `iface` at `at`.
struct Injection {
    at: u64,
    r: usize,
    iface: IfaceId,
    frame: Vec<u8>,
}

/// Protocol-appropriate control frames, built against the diamond
/// topology's address plan: a Join/Prune (PIM), Prune + Graft (DVMRP),
/// Join-Request + Echo (CBT), and an IGMP Report for every protocol.
fn injections(net: &scenario::ScenarioNet, group: Group) -> Vec<Injection> {
    let topo = &topologies()[0];
    let rdv = topo.rendezvous.index();
    let encap = |src, dst, msg: Message| {
        Header {
            proto: IpProto::Igmp,
            ttl: 8,
            src,
            dst,
        }
        .encap(&msg.encode())
    };
    let mut out = Vec::new();

    match net.protocol {
        Protocol::Pim => {
            // A (*,G) join from the rendezvous point's first neighbor —
            // adds (or refreshes) a joined oif on the RP.
            let peer = net.peers[rdv][0];
            out.push(Injection {
                at: 1500,
                r: rdv,
                iface: peer.iface,
                frame: encap(
                    peer.neighbor_addr,
                    router_addr(topo.rendezvous),
                    Message::PimJoinPrune(pim::JoinPrune {
                        upstream_neighbor: router_addr(topo.rendezvous),
                        holdtime: 900,
                        groups: vec![pim::GroupEntry {
                            group,
                            joins: vec![pim::SourceEntry {
                                addr: router_addr(topo.rendezvous),
                                wildcard: true,
                                rp_bit: true,
                            }],
                            prunes: vec![],
                        }],
                    }),
                ),
            });
            // A Register for a new source at the RP — creates (S,G) state
            // and a triggered join toward the source.
            out.push(Injection {
                at: 1500,
                r: rdv,
                iface: net.peers[rdv][0].iface,
                frame: encap(
                    host_addr(topo.host_routers[1], 0),
                    router_addr(topo.rendezvous),
                    Message::PimRegister(pim::Register {
                        group,
                        source: host_addr(topo.host_routers[1], 0),
                        payload: 9999u64.to_be_bytes().to_vec(),
                    }),
                ),
            });
        }
        Protocol::Dvmrp => {
            // A prune for the live source from router 0's first neighbor —
            // re-creates the (S,G) entry and marks the iface pruned until
            // t2100 (visible at the dump instant).
            let peer = net.peers[0][0];
            out.push(Injection {
                at: 1500,
                r: 0,
                iface: peer.iface,
                frame: encap(
                    peer.neighbor_addr,
                    router_addr(topo.host_routers[0]),
                    Message::DvmrpPrune(dvmrp::Prune {
                        source: host_addr(topo.host_routers[0], 0),
                        group,
                        lifetime: 600,
                    }),
                ),
            });
            // A graft for an entry that does not exist: acked (twice, in
            // the duplicated run) but must leave no state behind.
            out.push(Injection {
                at: 1550,
                r: 0,
                iface: peer.iface,
                frame: encap(
                    peer.neighbor_addr,
                    router_addr(topo.host_routers[0]),
                    Message::DvmrpGraft(dvmrp::Graft {
                        source: host_addr(topo.host_routers[1], 0),
                        group,
                    }),
                ),
            });
        }
        Protocol::Cbt => {
            // A join-request at the core — adds a child edge and acks it;
            // the echo refreshes the child's liveness so it is still
            // present at the dump instant. Children are keyed by
            // (iface, source address), and the core's router neighbors are
            // already real children, so the forged child uses a host
            // address to actually create state rather than refresh it.
            let peer = net.peers[rdv][0];
            let forged = host_addr(topo.host_routers[0], 0);
            out.push(Injection {
                at: 1500,
                r: rdv,
                iface: peer.iface,
                frame: encap(
                    forged,
                    router_addr(topo.rendezvous),
                    Message::CbtJoinRequest(cbt::JoinRequest {
                        group,
                        core: router_addr(topo.rendezvous),
                        originator: forged,
                    }),
                ),
            });
            out.push(Injection {
                at: 1550,
                r: rdv,
                iface: peer.iface,
                frame: encap(
                    forged,
                    router_addr(topo.rendezvous),
                    Message::CbtEcho(cbt::Echo {
                        groups: vec![group],
                    }),
                ),
            });
        }
    }

    // Every protocol: an IGMP membership report on the host LAN behind
    // member router 1 (host-LAN iface follows the router-router ifaces).
    let r = topo.host_routers[1].index();
    out.push(Injection {
        at: 1500,
        r,
        iface: IfaceId(net.peers[r].len() as u32),
        frame: encap(
            host_addr(topo.host_routers[1], 0),
            group.addr(),
            Message::HostReport(igmp::HostReport { group }),
        ),
    });
    out
}

/// Run the diamond scenario delivering each crafted frame `copies`
/// times, and return every router's state dump at [`DUMP_AT`].
fn run(protocol: Protocol, copies: usize) -> Vec<String> {
    let topo = &topologies()[0];
    let group = Group::test(1);
    let mut net = build_net(
        &topo.graph,
        protocol,
        Substrate::Oracle,
        group,
        topo.rendezvous,
        &topo.host_routers,
        7,
    );
    let host_nodes: Vec<NodeIdx> = net.hosts.iter().map(|&(n, _)| n).collect();
    let mut schedule = FaultSchedule::default();
    schedule.push(30, FaultEvent::Join(1));
    schedule.push(60, FaultEvent::Join(2));
    schedule.install(&mut net.world, &host_nodes, group);
    net.send_at(0, 100, 10, 40);
    if protocol == Protocol::Pim {
        // Native data from the register's source, after the register: the
        // second register copy is indistinguishable from shortest-path
        // data on routers where the shared tree and the SPT share an
        // interface, so it can set the SPT bit one packet early. Real
        // data makes both runs converge to the same SPT state — the
        // duplicate may only accelerate convergence, never corrupt it.
        net.send_at(1, 1520, 2, 10);
    }

    for inj in injections(&net, group) {
        for _ in 0..copies {
            let (r, iface, frame) = (inj.r, inj.iface, inj.frame.clone());
            net.world.at(SimTime(inj.at), move |w| {
                w.call_node(NodeIdx(r), |n, ctx| n.on_packet(ctx, iface, &frame));
            });
        }
    }

    net.world.run_until(SimTime(DUMP_AT));
    (0..net.router_count)
        .map(|n| net.state_dump(n, SimTime(DUMP_AT)))
        .collect()
}

fn assert_idempotent(protocol: Protocol) {
    let baseline = run(protocol, 0);
    let once = run(protocol, 1);
    let twice = run(protocol, 2);
    assert_ne!(
        baseline,
        once,
        "{}: crafted control frames changed no state — the idempotence \
         check would be vacuous",
        protocol.name()
    );
    for (n, (a, b)) in once.iter().zip(&twice).enumerate() {
        assert_eq!(
            a,
            b,
            "{}: router {n} state diverged between single and duplicate \
             delivery",
            protocol.name()
        );
    }
}

#[test]
fn pim_duplicate_control_delivery_is_idempotent() {
    assert_idempotent(Protocol::Pim);
}

#[test]
fn dvmrp_duplicate_control_delivery_is_idempotent() {
    assert_idempotent(Protocol::Dvmrp);
}

#[test]
fn cbt_duplicate_control_delivery_is_idempotent() {
    assert_idempotent(Protocol::Cbt);
}
