//! The acceptance sweep: ≥50 seeded fault schedules, each run against
//! all three protocols, every oracle green.
//!
//! A failure here prints the full replay artifact so the violating run
//! can be re-executed byte-identically (see `tests/replay.rs`).

use scenario::{explore_seed, random_schedule, topologies, Artifact};

#[test]
fn fifty_plus_seeds_all_protocols_green() {
    let zoo = topologies();
    let mut runs = 0usize;
    let mut failures = Vec::new();
    for seed in 0..51u64 {
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        let schedule = random_schedule(topo, seed, seed % 3 == 2);
        for (protocol, outcome) in explore_seed(topo, seed) {
            runs += 1;
            if !outcome.violations.is_empty() {
                let artifact = Artifact::capture(topo, protocol, &schedule, seed, &outcome);
                failures.push(artifact.to_text());
            }
        }
    }
    assert_eq!(runs, 51 * 3);
    assert!(
        failures.is_empty(),
        "{} violating run(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn schedules_are_self_healing() {
    // Every generated fault is paired with a heal event no later than the
    // heal point, so the probe train always runs on a healthy network.
    let zoo = topologies();
    for seed in 0..60u64 {
        for topo in &zoo {
            let s = random_schedule(topo, seed, false);
            let mut link_state = std::collections::BTreeMap::new();
            let mut node_down = std::collections::BTreeSet::new();
            let mut loss = std::collections::BTreeMap::new();
            let mut impaired = std::collections::BTreeMap::new();
            let mut capped = std::collections::BTreeMap::new();
            for &(at, ref ev) in &s.events {
                use scenario::FaultEvent::*;
                match ev {
                    LinkDown(l) => {
                        link_state.insert(*l, at);
                    }
                    LinkUp(l) => {
                        link_state.remove(l);
                    }
                    LinkLoss(l, pm) if *pm > 0 => {
                        loss.insert(*l, at);
                    }
                    LinkLoss(l, _) => {
                        loss.remove(l);
                    }
                    CorruptLink(l, pm) | DuplicateLink(l, pm) | ReorderLink(l, pm, _)
                        if *pm > 0 =>
                    {
                        impaired.insert(*l, at);
                    }
                    CorruptLink(l, _) | DuplicateLink(l, _) | ReorderLink(l, _, _) => {
                        impaired.remove(l);
                    }
                    Partition(ls) => {
                        for l in ls {
                            link_state.insert(*l, at);
                        }
                    }
                    Heal(ls) => {
                        // A heal restores the links *and* resets their
                        // channel models — mirror both effects.
                        for l in ls {
                            link_state.remove(l);
                            impaired.remove(l);
                        }
                    }
                    CrashRouter(r) => {
                        node_down.insert(*r);
                    }
                    RestartRouter(r) => {
                        node_down.remove(r);
                    }
                    Bandwidth(l, rate, _, _) if *rate > 0 => {
                        capped.insert(*l, at);
                    }
                    Bandwidth(l, _, _, _) => {
                        capped.remove(l);
                    }
                    // Bursts are traffic, not faults: nothing to heal.
                    Join(_) | Leave(_) | Burst(..) => {}
                }
            }
            assert!(
                link_state.is_empty()
                    && node_down.is_empty()
                    && loss.is_empty()
                    && impaired.is_empty()
                    && capped.is_empty(),
                "seed {seed} on {}: unhealed faults {link_state:?} {node_down:?} {loss:?} {impaired:?} {capped:?}",
                topo.name
            );
            assert!(s.span() < 4500, "faults must settle before the probe train");
        }
    }
}
