//! The acceptance gate for the region-partitioned event core at the
//! campaign level: a 20-seed explorer campaign — every topology in the
//! zoo, every protocol, randomized fault schedules — must produce
//! byte-identical replay artifacts at `--threads` 1, 2, and 4.
//!
//! This is stronger than the per-binary stdout checks in
//! `bench/tests/thread_determinism.rs`: it compares the *full* trace and
//! telemetry fingerprints of every case, so a single reordered event
//! anywhere in any run fails the gate with the offending (seed,
//! protocol) pair named.

use scenario::{random_schedule, run_case_threads, topologies, Protocol};

#[test]
fn twenty_seed_campaign_is_thread_count_invariant() {
    let zoo = topologies();
    let mut cases = 0usize;
    for seed in 0..20u64 {
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        let schedule = random_schedule(topo, seed, seed % 3 == 2);
        for protocol in Protocol::ALL {
            let base = run_case_threads(topo, protocol, &schedule, seed, 1);
            for threads in [2usize, 4] {
                let par = run_case_threads(topo, protocol, &schedule, seed, threads);
                assert_eq!(
                    base.fingerprint, par.fingerprint,
                    "trace fingerprint diverged: seed {seed} {protocol:?} \
                     topo {} threads {threads}",
                    topo.name
                );
                assert_eq!(
                    base.telemetry_fingerprint, par.telemetry_fingerprint,
                    "telemetry fingerprint diverged: seed {seed} {protocol:?} \
                     topo {} threads {threads}",
                    topo.name
                );
                assert_eq!(
                    base.trace, par.trace,
                    "trace diverged: seed {seed} {protocol:?} threads {threads}"
                );
                assert_eq!(
                    base.violations, par.violations,
                    "oracle verdicts diverged: seed {seed} {protocol:?} threads {threads}"
                );
            }
            cases += 1;
        }
    }
    assert_eq!(cases, 20 * 3);
}
