//! Same seed + same fault schedule ⇒ byte-identical packet trace, for
//! every protocol. This is the property the replay-artifact contract
//! stands on; `crates/netsim/tests/determinism.rs` checks the simulator
//! layer, this checks the full scenario stack on top of it.

use scenario::{random_schedule, run_case, topologies, FaultSchedule, Protocol};

#[test]
fn identical_runs_produce_identical_traces() {
    for (i, topo) in topologies().iter().enumerate() {
        let seed = 11 + i as u64;
        let schedule = random_schedule(topo, seed, false);
        for protocol in Protocol::ALL {
            let a = run_case(topo, protocol, &schedule, seed);
            let b = run_case(topo, protocol, &schedule, seed);
            assert_eq!(
                a.trace,
                b.trace,
                "{} on {}: traces must match line for line",
                protocol.name(),
                topo.name
            );
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(
                a.telemetry,
                b.telemetry,
                "{} on {}: telemetry JSONL streams must be byte-identical",
                protocol.name(),
                topo.name
            );
            assert_eq!(a.telemetry_fingerprint, b.telemetry_fingerprint);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(
                a.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>(),
                b.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn schedule_round_trip_preserves_the_trace() {
    // A schedule that went through its text form drives the same run.
    let topo = &topologies()[0];
    let schedule = random_schedule(topo, 42, false);
    let round_tripped = FaultSchedule::from_text(&schedule.to_text()).unwrap();
    let a = run_case(topo, Protocol::Pim, &schedule, 42);
    let b = run_case(topo, Protocol::Pim, &round_tripped, 42);
    assert_eq!(a.fingerprint, b.fingerprint);
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the fingerprint actually discriminates: two
    // different seeds on the same topology produce different schedules or
    // at least different traces.
    let topo = &topologies()[0];
    let s1 = random_schedule(topo, 1, false);
    let s2 = random_schedule(topo, 2, false);
    let a = run_case(topo, Protocol::Pim, &s1, 1);
    let b = run_case(topo, Protocol::Pim, &s2, 2);
    assert_ne!(a.fingerprint, b.fingerprint);
}
