//! The replay-artifact contract, demonstrated on an intentionally broken
//! fixture: a schedule that crashes the only transit router and never
//! restarts it. Delivery must fail, the violation must be captured into a
//! minimal artifact, and re-executing the artifact must reproduce the
//! violating run byte-identically (same trace fingerprint, same
//! violations).

use scenario::{replay, run_case, topology, Artifact, FaultEvent, FaultSchedule, Protocol};

/// line-stub topology: 0-1-2-3-4 with a 2-5 stub. Sender host is behind
/// r4; crashing r2 forever severs every member from the source.
fn broken_schedule() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1)); // member behind r0
    s.push(40, FaultEvent::Join(3)); // member behind r3
    s.push(300, FaultEvent::CrashRouter(2)); // no restart: permanent partition
    s
}

#[test]
fn broken_fixture_yields_minimal_replay_artifact() {
    let topo = topology("line-stub").unwrap();
    let schedule = broken_schedule();
    let seed = 7;

    for protocol in Protocol::ALL {
        let outcome = run_case(&topo, protocol, &schedule, seed);
        assert!(
            outcome.violations.iter().any(|v| v.oracle == "delivery"),
            "{}: a permanently partitioned member must trip the delivery \
             oracle, got {:?}",
            protocol.name(),
            outcome.violations
        );

        // Capture → serialize → parse: exact round-trip.
        let artifact = Artifact::capture(&topo, protocol, &schedule, seed, &outcome);
        let text = artifact.to_text();
        let parsed = Artifact::from_text(&text).expect("artifact parses back");
        assert_eq!(parsed, artifact, "artifact text form must round-trip");

        // Replay: byte-identical re-execution.
        let rerun = replay(&parsed).expect("replay resolves topology");
        assert_eq!(
            rerun.fingerprint,
            artifact.fingerprint,
            "{}: replay must reproduce the identical packet trace",
            protocol.name()
        );
        assert_eq!(
            rerun
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            artifact.violations,
            "{}: replay must reproduce the identical violations",
            protocol.name()
        );
    }
}

#[test]
fn artifact_parser_rejects_malformed_input() {
    assert!(Artifact::from_text("not an artifact").is_err());
    assert!(Artifact::from_text("scenario-replay-v1\nprotocol pim\n").is_err());
    let unterminated = "scenario-replay-v1\nprotocol pim\ntopology diamond\n\
                        seed 1\nfingerprint 00000000000000ff\nschedule\n30 join 1\n";
    assert!(Artifact::from_text(unterminated).is_err());
}

#[test]
fn replay_rejects_unknown_topology() {
    let artifact = Artifact {
        protocol: Protocol::Pim,
        topology: "no-such-topology".into(),
        seed: 1,
        schedule: broken_schedule(),
        fingerprint: 0,
        violations: vec![],
    };
    assert!(replay(&artifact).is_err());
}
