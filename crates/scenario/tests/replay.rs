//! The replay-artifact contract, demonstrated on an intentionally broken
//! fixture: a schedule that crashes the only transit router and never
//! restarts it. Delivery must fail, the violation must be captured into a
//! minimal artifact (now carrying the implicated routers' flight
//! recorders and state snapshots), and re-executing the artifact must
//! reproduce the violating run byte-identically — same trace
//! fingerprint, same telemetry event stream, same violations, same
//! dumps.

use scenario::{replay, run_case, topology, Artifact, FaultEvent, FaultSchedule, Protocol};

/// line-stub topology: 0-1-2-3-4 with a 2-5 stub. Sender host is behind
/// r4; crashing r2 forever severs every member from the source.
fn broken_schedule() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1)); // member behind r0
    s.push(40, FaultEvent::Join(3)); // member behind r3
    s.push(300, FaultEvent::CrashRouter(2)); // no restart: permanent partition
    s
}

#[test]
fn broken_fixture_yields_minimal_replay_artifact() {
    let topo = topology("line-stub").unwrap();
    let schedule = broken_schedule();
    let seed = 7;

    for protocol in Protocol::ALL {
        let outcome = run_case(&topo, protocol, &schedule, seed);
        assert!(
            outcome.violations.iter().any(|v| v.oracle == "delivery"),
            "{}: a permanently partitioned member must trip the delivery \
             oracle, got {:?}",
            protocol.name(),
            outcome.violations
        );
        // The JSONL sink must never have dropped a line: a nonzero error
        // count means the telemetry fingerprint is untrustworthy.
        assert_eq!(
            outcome.sink_errors,
            0,
            "{}: JSONL sink recorded write errors",
            protocol.name()
        );

        // The violation implicates at least one router, so the artifact
        // carries its post-mortem: a non-empty flight recorder tail, a
        // state snapshot, and the backward causal slice explaining the
        // router's final entry-flag transition.
        assert!(
            !outcome.dumps.is_empty(),
            "{}: a violating run must dump the implicated routers",
            protocol.name()
        );
        for d in &outcome.dumps {
            assert!(
                !d.state.is_empty(),
                "{}: r{} state snapshot must not be empty",
                protocol.name(),
                d.node
            );
            assert!(
                !d.cause.is_empty(),
                "{}: r{} backward causal slice must not be empty",
                protocol.name(),
                d.node
            );
            assert!(
                d.cause[0].starts_with("#0 ["),
                "{}: r{} slice must start at its root hop, got {:?}",
                protocol.name(),
                d.node,
                d.cause[0]
            );
        }

        // Capture → serialize → parse: exact round-trip.
        let artifact = Artifact::capture(&topo, protocol, &schedule, seed, &outcome);
        let text = artifact.to_text();
        let parsed = Artifact::from_text(&text).expect("artifact parses back");
        assert_eq!(parsed, artifact, "artifact text form must round-trip");

        // Replay: byte-identical re-execution, telemetry included.
        let rerun = replay(&parsed).expect("replay resolves topology");
        assert_eq!(
            rerun.fingerprint,
            artifact.fingerprint,
            "{}: replay must reproduce the identical packet trace",
            protocol.name()
        );
        assert_eq!(
            rerun.telemetry_fingerprint,
            artifact.telemetry,
            "{}: replay must reproduce the identical telemetry stream",
            protocol.name()
        );
        assert_eq!(
            rerun
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            artifact.violations,
            "{}: replay must reproduce the identical violations",
            protocol.name()
        );
        assert_eq!(
            rerun.dumps,
            artifact.dumps,
            "{}: replay must reproduce the identical post-mortem dumps",
            protocol.name()
        );
    }
}

#[test]
fn artifact_parser_rejects_malformed_input() {
    assert!(Artifact::from_text("not an artifact").is_err());
    assert!(Artifact::from_text("scenario-replay-v1\nprotocol pim\n").is_err());
    let head = "scenario-replay-v1\nprotocol pim\ntopology diamond\n\
                seed 1\nfingerprint 00000000000000ff\ntelemetry 00000000000000aa\n";
    let unterminated = format!("{head}schedule\n30 join 1\n");
    assert!(Artifact::from_text(&unterminated).is_err());
    // A dump section must be fully terminated and properly indented.
    let open_dump = format!("{head}schedule\nend\ndump r2\nflight\n");
    assert!(Artifact::from_text(&open_dump).is_err());
    let unindented =
        format!("{head}schedule\nend\ndump r2\nflight\nt5 raw\nend\nstate\nend\nend\n");
    assert!(Artifact::from_text(&unindented).is_err());
}

#[test]
fn replay_rejects_unknown_topology() {
    let artifact = Artifact {
        protocol: Protocol::Pim,
        topology: "no-such-topology".into(),
        seed: 1,
        schedule: broken_schedule(),
        fingerprint: 0,
        telemetry: 0,
        violations: vec![],
        dumps: vec![],
    };
    assert!(replay(&artifact).is_err());
}

/// A schedule exercising every adversarial-channel fault: corruption,
/// duplication, reordering, and an atomic partition — all healed before
/// the probe train so delivery measures recovery.
fn adversarial_schedule() -> FaultSchedule {
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(60, FaultEvent::Join(2));
    s.push(300, FaultEvent::CorruptLink(0, 300));
    s.push(400, FaultEvent::DuplicateLink(1, 400));
    s.push(500, FaultEvent::ReorderLink(2, 300, 20));
    s.push(800, FaultEvent::Partition(vec![3]));
    s.push(1500, FaultEvent::Heal(vec![3]));
    s.push(1600, FaultEvent::CorruptLink(0, 0));
    s.push(1700, FaultEvent::DuplicateLink(1, 0));
    s.push(1800, FaultEvent::ReorderLink(2, 0, 0));
    s
}

#[test]
fn adversarial_channel_schedule_roundtrips_and_replays_byte_identically() {
    let topo = topology("diamond").unwrap();
    let schedule = adversarial_schedule();
    let seed = 13;

    // DSL round-trip is byte-exact.
    let text = schedule.to_text();
    let parsed = FaultSchedule::from_text(&text).expect("DSL parses back");
    assert_eq!(parsed.to_text(), text, "schedule text must round-trip");

    for protocol in Protocol::ALL {
        let outcome = run_case(&topo, protocol, &parsed, seed);

        // Heal discipline means every oracle — including the hardening
        // oracle — must hold despite the adversarial channel.
        assert!(
            outcome.violations.is_empty(),
            "{}: healed adversarial channel must leave no violations, got {:?}",
            protocol.name(),
            outcome.violations
        );

        // Not vacuous: the channel really impaired traffic, and every
        // corrupted frame shows up in the decode-failure accounting.
        for what in ["corrupt", "duplicate", "reorder"] {
            assert!(
                outcome.telemetry.contains(what),
                "{}: no {what} impairment mark in telemetry",
                protocol.name()
            );
        }
        assert!(
            outcome.telemetry.contains("decode_failed"),
            "{}: corruption never tripped a decode failure",
            protocol.name()
        );

        // Capture → replay: byte-identical trace and telemetry.
        let artifact = Artifact::capture(&topo, protocol, &parsed, seed, &outcome);
        let rerun = replay(&artifact).expect("replay resolves topology");
        assert_eq!(
            rerun.fingerprint,
            artifact.fingerprint,
            "{}: adversarial replay must reproduce the identical trace",
            protocol.name()
        );
        assert_eq!(
            rerun.telemetry_fingerprint,
            artifact.telemetry,
            "{}: adversarial replay must reproduce the identical telemetry",
            protocol.name()
        );
    }
}
