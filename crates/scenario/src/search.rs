//! Coverage-guided fault-schedule search.
//!
//! The explorer samples schedules uniformly; this module searches them.
//! Feedback is the [`telemetry::CoverageMap`] folded from each run's
//! event stream (entry-flag transitions, timer-kind interleavings,
//! decode/impairment features) plus *near-miss* features derived from
//! the outcome itself (which oracle fired where, log2-bucketed
//! convergence-histogram shapes). A schedule that lights up new
//! coverage enters a bounded pool; mutants of pool schedules — splice,
//! retime, duplicate, delete, crossover, all re-soundened through
//! [`FaultSchedule::normalize`] — are prioritized over fresh random
//! samples by each parent's novelty weight.
//!
//! Determinism contract: a search is a pure function of
//! `(topology, SearchConfig)` — including `threads`. Candidates for a
//! generation are derived *before* any of them runs, from the pool
//! state and a counter-mode [`SeedStream`]; the batch fans out via
//! [`par::run_trials`] (which returns results in candidate order); and
//! the fold back into the global map is sequential in that order. The
//! thread knob changes wall-clock time and nothing else.

use crate::explore::{random_schedule, run_case_coverage, CaseOutcome, TopoSpec};
use crate::fuzz::SeedStream;
use crate::net::Protocol;
use crate::schedule::FaultSchedule;
use std::collections::BTreeSet;
use telemetry::CoverageMap;

/// A coverage-map *entry* as search accumulates them: a feature plus
/// the AFL-style log2 bucket of how often one run hit it. Hit-count
/// bucketing is what lets dense mutants register progress on features
/// a sparse random schedule also touches — "once" and "dozens of
/// times" are different entries.
pub type CoverageEntry = (u64, u32);

/// Fold one evaluation's bucketed entries into `seen`, returning how
/// many were new — the novelty signal that admits a schedule to the
/// pool.
fn fold_entries(seen: &mut BTreeSet<CoverageEntry>, coverage: &CoverageMap) -> usize {
    let mut novel = 0;
    for (f, n) in coverage.entries() {
        if seen.insert((f, CoverageMap::bucket(n))) {
            novel += 1;
        }
    }
    novel
}

/// Knobs for one search campaign.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Total schedule evaluations (each evaluation runs all three
    /// protocols against the schedule).
    pub budget: usize,
    /// Candidates derived per generation; also the parallel fan-out
    /// width.
    pub batch: usize,
    /// Worker threads for the batch fan-out. Any value produces
    /// bit-identical results.
    pub threads: usize,
    /// Bound on the interesting-schedule pool; lowest-novelty entries
    /// are evicted first.
    pub pool_cap: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            seed: 1994,
            budget: 192,
            batch: 16,
            threads: 1,
            pool_cap: 64,
        }
    }
}

/// One evaluated schedule: its merged three-protocol coverage and any
/// violations it provoked.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The (normalized) schedule that ran.
    pub schedule: FaultSchedule,
    /// World seed the runs used.
    pub world_seed: u64,
    /// Coverage merged across all three protocols, near-miss features
    /// included.
    pub coverage: CoverageMap,
    /// Protocols that violated an oracle, with rendered violations.
    pub violations: Vec<(Protocol, Vec<String>)>,
}

/// The result of a search campaign.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Evaluations actually executed (= `min(budget, …)`).
    pub evals: usize,
    /// The global coverage map (summed hit counts) after the campaign.
    pub coverage: CoverageMap,
    /// Distinct `(feature, hit-bucket)` entries reached — the headline
    /// coverage number EXPERIMENTS.md compares across strategies.
    pub entries: usize,
    /// Violating evaluations, in discovery order.
    pub violating: Vec<Evaluation>,
    /// `(evals, entries)` after each generation — the curve
    /// EXPERIMENTS.md plots against the random baseline.
    pub history: Vec<(usize, usize)>,
}

/// Fold one outcome's *near-miss* signal into `map`: which oracles
/// fired at which nodes, and the log2-bucketed shape of every rendered
/// convergence histogram. These put the search gradient on "almost
/// broke" runs that pure event coverage cannot see.
fn near_miss_features(map: &mut CoverageMap, tag: u64, outcome: &CaseOutcome) {
    for v in &outcome.violations {
        map.record(telemetry::feature(
            "violation",
            &[tag, telemetry::strpart(v.oracle), v.node as u64],
        ));
    }
    for line in outcome.metrics.lines() {
        let Some((name, rest)) = line.split_once(' ') else {
            continue;
        };
        for part in rest.split(' ') {
            let Some((key, val)) = part.split_once('=') else {
                continue;
            };
            if !matches!(key, "count" | "max") {
                continue;
            }
            if let Ok(v) = val.parse::<u64>() {
                let bucket = 64 - v.leading_zeros() as u64;
                map.record(telemetry::feature(
                    "metric",
                    &[
                        tag,
                        telemetry::strpart(name),
                        telemetry::strpart(key),
                        bucket,
                    ],
                ));
            }
        }
    }
}

/// Run `schedule` against all three protocols under `world_seed` and
/// fold the combined coverage + near-miss signal.
pub fn evaluate_schedule(topo: &TopoSpec, schedule: &FaultSchedule, world_seed: u64) -> Evaluation {
    let mut coverage = CoverageMap::new();
    let mut violations = Vec::new();
    for (tag, protocol) in Protocol::ALL.into_iter().enumerate() {
        let (outcome, cov) = run_case_coverage(topo, protocol, schedule, world_seed, 1);
        coverage.merge(&cov);
        near_miss_features(&mut coverage, tag as u64, &outcome);
        if !outcome.violations.is_empty() {
            violations.push((
                protocol,
                outcome.violations.iter().map(|v| v.to_string()).collect(),
            ));
        }
    }
    Evaluation {
        schedule: schedule.clone(),
        world_seed,
        coverage,
        violations,
    }
}

/// Pick a pool index, weighted by novelty. Deterministic given the
/// stream state.
fn pick(pool: &[(FaultSchedule, u64)], rng: &mut SeedStream) -> usize {
    let total: u64 = pool.iter().map(|(_, w)| w).sum();
    let mut r = rng.next_u64() % total.max(1);
    for (i, (_, w)) in pool.iter().enumerate() {
        if r < *w {
            return i;
        }
        r -= w;
    }
    pool.len() - 1
}

/// Cap on a mutant's raw event count before normalization: splicing is
/// the dominant operator, and unchecked accumulation across generations
/// would make late evaluations arbitrarily slow.
const MUTANT_EVENT_CAP: usize = 64;

/// Apply 1–3 mutation operators drawn from the stream, then re-soundene
/// the result via [`FaultSchedule::normalize`] so the heal discipline
/// (and therefore oracle meaningfulness) survives arbitrary splices.
///
/// The operator mix is deliberately *additive*: splice and duplicate
/// outweigh delete/retime, and one arm splices from a fresh random
/// schedule rather than a pool donor. A mutant can therefore stack more
/// concurrent fault arms than [`random_schedule`]'s 2–5-fault cap ever
/// emits — the region of schedule space only guided search reaches.
fn mutate(
    topo: &TopoSpec,
    parent: &FaultSchedule,
    donor: &FaultSchedule,
    rng: &mut SeedStream,
) -> FaultSchedule {
    let links = topo.graph.edge_count();
    let routers = topo.graph.node_count();
    let hosts = topo.host_routers.len();
    let mut s = parent.clone();
    for _ in 0..(1 + rng.below(3)) {
        let n = s.events.len();
        match rng.below(8) {
            0 if n > 1 => s = s.with_deleted(rng.below(n)),
            1 if n > 0 => {
                let i = rng.below(n);
                let t = 1 + rng.next_u64() % 2950;
                s = s.with_retimed(i, t);
            }
            2 | 3 if n > 0 => {
                let i = rng.below(n);
                let t = 1 + rng.next_u64() % 2950;
                s = s.with_duplicated(i, t);
            }
            4 | 5 => {
                let t0 = rng.next_u64() % 2950;
                let t1 = t0 + 1 + rng.next_u64() % 1000;
                s = s.spliced(donor, t0, t1);
            }
            6 => {
                let fresh = random_schedule(topo, rng.next_u64(), false);
                let t0 = rng.next_u64() % 2950;
                let t1 = t0 + 1 + rng.next_u64() % 1500;
                s = s.spliced(&fresh, t0, t1);
            }
            _ => {
                let cut = 1 + rng.next_u64() % 2950;
                s = s.crossover(donor, cut);
            }
        }
    }
    s.events.truncate(MUTANT_EVENT_CAP);
    s.normalize(links, routers, hosts)
}

/// Derive generation `generation`'s candidate schedules from the pool.
/// Pure function of `(cfg.seed, generation, pool)` — it must run before
/// any candidate executes so the thread fan-out cannot influence it.
fn derive_candidates(
    topo: &TopoSpec,
    cfg: &SearchConfig,
    generation: u64,
    pool: &[(FaultSchedule, u64)],
    batch: usize,
) -> Vec<(FaultSchedule, u64)> {
    (0..batch)
        .map(|i| {
            let mut rng = SeedStream::new(cfg.seed, generation * 0x10_0003 + i as u64);
            let world_seed = par::mix(cfg.seed, 0xC0FF_EE00 ^ generation, i as u64);
            // 1-in-4 fresh random schedules keep exploration alive even
            // once the pool saturates (and seed generation 0 entirely).
            let schedule = if pool.is_empty() || rng.below(4) == 0 {
                let fresh = random_schedule(topo, rng.next_u64(), rng.below(3) == 2);
                fresh.normalize(
                    topo.graph.edge_count(),
                    topo.graph.node_count(),
                    topo.host_routers.len(),
                )
            } else {
                let parent = pick(pool, &mut rng);
                let donor = pick(pool, &mut rng);
                mutate(topo, &pool[parent].0, &pool[donor].0, &mut rng)
            };
            (schedule, world_seed)
        })
        .collect()
}

/// Run a coverage-guided campaign over `topo`.
pub fn coverage_search(topo: &TopoSpec, cfg: &SearchConfig) -> SearchReport {
    let mut global = CoverageMap::new();
    let mut seen: BTreeSet<CoverageEntry> = BTreeSet::new();
    let mut pool: Vec<(FaultSchedule, u64)> = Vec::new();
    let mut violating = Vec::new();
    let mut history = Vec::new();
    let mut evals = 0usize;
    let mut generation = 0u64;

    while evals < cfg.budget {
        let batch = cfg.batch.min(cfg.budget - evals).max(1);
        let candidates = derive_candidates(topo, cfg, generation, &pool, batch);
        let results = par::run_trials(cfg.threads, batch, |i| {
            let (schedule, world_seed) = &candidates[i];
            evaluate_schedule(topo, schedule, *world_seed)
        });
        for ev in results {
            evals += 1;
            let novel = fold_entries(&mut seen, &ev.coverage);
            global.merge(&ev.coverage);
            if !ev.violations.is_empty() {
                violating.push(ev.clone());
            }
            if novel > 0 {
                pool.push((ev.schedule, novel as u64));
                if pool.len() > cfg.pool_cap {
                    let evict = pool
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, (_, w))| (*w, *i))
                        .map(|(i, _)| i)
                        .unwrap();
                    pool.remove(evict);
                }
            }
        }
        history.push((evals, seen.len()));
        generation += 1;
    }

    SearchReport {
        evals,
        coverage: global,
        entries: seen.len(),
        violating,
        history,
    }
}

/// The uniform-random baseline: same budget, same evaluation pipeline,
/// same instrumentation — but every candidate is a fresh
/// [`random_schedule`], never a mutant. EXPERIMENTS.md compares its
/// coverage curve against [`coverage_search`] on identical budgets.
pub fn random_search(topo: &TopoSpec, cfg: &SearchConfig) -> SearchReport {
    let mut global = CoverageMap::new();
    let mut seen: BTreeSet<CoverageEntry> = BTreeSet::new();
    let mut violating = Vec::new();
    let mut history = Vec::new();
    let mut evals = 0usize;
    let mut generation = 0u64;

    while evals < cfg.budget {
        let batch = cfg.batch.min(cfg.budget - evals).max(1);
        let candidates: Vec<(FaultSchedule, u64)> = (0..batch)
            .map(|i| {
                let mut rng = SeedStream::new(cfg.seed, generation * 0x10_0003 + i as u64);
                let world_seed = par::mix(cfg.seed, 0xC0FF_EE00 ^ generation, i as u64);
                let s = random_schedule(topo, rng.next_u64(), rng.below(3) == 2);
                let s = s.normalize(
                    topo.graph.edge_count(),
                    topo.graph.node_count(),
                    topo.host_routers.len(),
                );
                (s, world_seed)
            })
            .collect();
        let results = par::run_trials(cfg.threads, batch, |i| {
            let (schedule, world_seed) = &candidates[i];
            evaluate_schedule(topo, schedule, *world_seed)
        });
        for ev in results {
            evals += 1;
            fold_entries(&mut seen, &ev.coverage);
            global.merge(&ev.coverage);
            if !ev.violations.is_empty() {
                violating.push(ev.clone());
            }
        }
        history.push((evals, seen.len()));
        generation += 1;
    }

    SearchReport {
        evals,
        coverage: global,
        entries: seen.len(),
        violating,
        history,
    }
}
