//! Deterministic fault-schedule engine and protocol-invariant oracles.
//!
//! Systematic robustness testing for the three multicast protocols in
//! this repository (PIM sparse mode, DVMRP dense mode, CBT), built from
//! three layers:
//!
//! 1. [`schedule`] — a declarative, text-serializable fault DSL: link
//!    flaps, loss ramps, router crashes with total state loss, restarts,
//!    membership churn, bandwidth caps, and traffic bursts, compiled
//!    onto the simulator's scripted-event machinery.
//! 2. [`oracle`] — cross-node invariants checked after quiescence: RPF
//!    consistency, loop freedom, eventual delivery, no orphaned state
//!    after teardown, CBT's hop-by-hop ack ledger, and graceful
//!    degradation under congestion (bounded queues, no control-plane
//!    starvation, recovery after overload clears).
//! 3. [`explore`] — a seeded explorer that samples random schedules per
//!    topology, runs all three protocols against the identical schedule
//!    with full structured telemetry attached (flight recorder, JSONL
//!    event stream, convergence metrics), and on violation emits a
//!    replay artifact (seed + schedule + trace and telemetry
//!    fingerprints + per-router flight-recorder and state dumps) that
//!    re-executes byte-identically.
//! 4. [`fuzz`] — a deterministic, dependency-free fuzz harness: seeded
//!    splitmix mutation of valid wire encodings against the decoders
//!    (never panic; accepted inputs re-encode idempotently) and live
//!    injection of malformed control frames into running engines (state
//!    stays bounded, drops are accounted, delivery recovers).
//! 5. [`search`] + [`shrink`] — coverage-guided schedule search using
//!    the telemetry event stream as feedback (a stable-hash coverage
//!    map over entry-flag transitions, timer interleavings, and oracle
//!    near-misses), paired with a deterministic greedy shrinker that
//!    minimizes every violating run to a 1-minimal schedule and
//!    re-verifies byte-identical replay before an artifact is written.
//!
//! The paper motivates this: §2 requires the architecture stay robust
//! under "unicast route changes, router failures, and membership churn";
//! the oracles turn those prose requirements into executable invariants.

#![warn(missing_docs)]

pub mod explore;
pub mod fuzz;
pub mod net;
pub mod oracle;
pub mod schedule;
pub mod search;
pub mod shrink;

pub use explore::{
    explore_seed, load_corpus, random_schedule, replay, replay_corpus, run_case, run_case_coverage,
    run_case_threads, slice_lines, topologies, topology, verify_replay, Artifact, CaseOutcome,
    NodeDump, TopoSpec,
};
pub use fuzz::{
    corpus, fuzz_engine, fuzz_engines, fuzz_wire, mutate, EngineFuzzOutcome, SeedStream,
    WireFuzzReport,
};
pub use net::{build_net, build_net_aggregate, Protocol, ScenarioNet, Substrate};
pub use oracle::{
    check_bounded_queues, check_bounded_state, check_cbt_ack_ledger, check_congestion_recovery,
    check_delivery, check_hardening, check_loop_freedom, check_no_orphans, check_no_starvation,
    check_rpf, check_structure, Violation,
};
pub use schedule::{FaultEvent, FaultSchedule};
pub use search::{
    coverage_search, evaluate_schedule, random_search, Evaluation, SearchConfig, SearchReport,
};
pub use shrink::{shrink_artifact, shrink_violation, shrink_with, ShrinkResult, ShrinkStats};
