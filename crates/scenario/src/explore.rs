//! The seeded schedule explorer and its replay artifacts.
//!
//! From one seed the explorer derives one random fault schedule per
//! topology, runs *all three protocols* against the identical schedule,
//! waits for quiescence, and applies the oracle layer. Every run carries
//! full structured telemetry — a per-router flight recorder, a JSONL
//! event stream, and convergence metrics — and on violation the explorer
//! emits a replay artifact: protocol, topology name, seed, schedule
//! text, trace and telemetry fingerprints, plus each implicated router's
//! flight-recorder tail and `show mroute`-style state snapshot.
//! [`replay`] re-executes the artifact byte-identically, telemetry
//! stream included.
//!
//! ## Scenario timeline
//!
//! Every generated schedule keeps to a fixed phase structure so the
//! oracles know when to look:
//!
//! | ticks        | phase                                             |
//! |--------------|---------------------------------------------------|
//! | 20–90        | initial joins                                     |
//! | 100–860      | pre-fault data train (builds protocol state)      |
//! | 200–2400     | fault injection window                            |
//! | ≤ 2950       | every fault explicitly healed by the schedule     |
//! | 4500–4710    | probe train (8 packets, 30 apart)                 |
//! | 6000         | quiescence checkpoint: oracles run                |
//!
//! The heal events are part of the schedule itself (a crash always pairs
//! with a later restart, a link-down with a link-up, a loss ramp with a
//! ramp to zero), so a schedule is self-contained: replaying it never
//! depends on generator internals.

use crate::net::{build_net, Protocol, ScenarioNet, Substrate};
use crate::oracle::{
    check_congestion_recovery, check_delivery, check_no_orphans, check_structure, Violation,
};
use crate::schedule::{FaultEvent, FaultSchedule};
use graph::{Graph, NodeId};
use netsim::{host_addr, NodeIdx, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use telemetry::{
    CausalIndex, CoverageMap, CoverageSink, Fanout, FlightRecorder, JsonlSink, MetricsAggregator,
    FLIGHT_RECORDER_CAP,
};
use wire::Group;

/// Number of packets in the pre-fault data train (sequence numbers
/// `0..TRAIN`).
const TRAIN: u64 = 20;
/// Number of post-heal probe packets (sequence numbers
/// `TRAIN..TRAIN + PROBES`) — the delivery oracle's expectation.
const PROBES: u64 = 8;
/// When the probe train starts.
const PROBE_START: u64 = 4500;
/// Probe spacing.
const PROBE_GAP: u64 = 30;
/// When the oracles run.
const CHECK_AT: u64 = 6000;
/// Capture-ring limit: generously above any scenario's traffic.
const CAPTURE_LIMIT: usize = 300_000;

/// A named topology the explorer samples schedules over.
pub struct TopoSpec {
    /// Stable name used in replay artifacts.
    pub name: &'static str,
    /// The router graph.
    pub graph: Graph,
    /// RP (PIM) / core (CBT) placement.
    pub rendezvous: NodeId,
    /// Routers with an attached host; slot 0 is the sender, slots 1.. are
    /// potential members.
    pub host_routers: Vec<NodeId>,
}

/// The explorer's topology zoo: a redundant diamond, a line with a stub
/// branch, and a cyclic mesh — small enough to quiesce fast, varied
/// enough to exercise reroute, leaf-prune, and multipath behavior.
pub fn topologies() -> Vec<TopoSpec> {
    let mut diamond = Graph::with_nodes(4);
    diamond.add_edge(NodeId(0), NodeId(1), 1);
    diamond.add_edge(NodeId(1), NodeId(2), 1);
    diamond.add_edge(NodeId(2), NodeId(3), 1);
    diamond.add_edge(NodeId(0), NodeId(3), 2);

    let mut line_stub = Graph::with_nodes(6);
    line_stub.add_edge(NodeId(0), NodeId(1), 1);
    line_stub.add_edge(NodeId(1), NodeId(2), 1);
    line_stub.add_edge(NodeId(2), NodeId(3), 1);
    line_stub.add_edge(NodeId(3), NodeId(4), 1);
    line_stub.add_edge(NodeId(2), NodeId(5), 1);

    let mut mesh = Graph::with_nodes(5);
    mesh.add_edge(NodeId(0), NodeId(1), 1);
    mesh.add_edge(NodeId(1), NodeId(2), 1);
    mesh.add_edge(NodeId(2), NodeId(3), 1);
    mesh.add_edge(NodeId(3), NodeId(4), 1);
    mesh.add_edge(NodeId(4), NodeId(0), 2);
    mesh.add_edge(NodeId(1), NodeId(3), 2);

    vec![
        TopoSpec {
            name: "diamond",
            graph: diamond,
            rendezvous: NodeId(2),
            host_routers: vec![NodeId(0), NodeId(1), NodeId(3)],
        },
        TopoSpec {
            name: "line-stub",
            graph: line_stub,
            rendezvous: NodeId(2),
            host_routers: vec![NodeId(4), NodeId(0), NodeId(5), NodeId(3)],
        },
        TopoSpec {
            name: "mesh",
            graph: mesh,
            rendezvous: NodeId(2),
            host_routers: vec![NodeId(0), NodeId(2), NodeId(4)],
        },
    ]
}

/// Look a topology up by its artifact name.
pub fn topology(name: &str) -> Option<TopoSpec> {
    topologies().into_iter().find(|t| t.name == name)
}

/// Generate the random fault schedule for `seed` over `topo`.
///
/// With `teardown`, every member leaves after the heal point and the
/// no-orphans oracle runs instead of delivery (the mode is recoverable
/// from the schedule alone via [`FaultSchedule::final_members`]).
pub fn random_schedule(topo: &TopoSpec, seed: u64, teardown: bool) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c4e);
    let mut s = FaultSchedule::default();
    let links = topo.graph.edge_count();
    let routers = topo.graph.node_count() as u32;
    let member_slots = 1..topo.host_routers.len() as u32;

    // Initial joins: each member slot joins with probability 2/3.
    let mut any_join = false;
    for slot in member_slots.clone() {
        if rng.gen_range(0..3) < 2 {
            s.push(rng.gen_range(20..=90), FaultEvent::Join(slot));
            any_join = true;
        }
    }
    if !any_join {
        s.push(rng.gen_range(20..=90), FaultEvent::Join(1));
    }

    // Faults: 2–5 of them, each healed by its own later event. Channel
    // impairments (corrupt/duplicate/reorder) and partitions follow the
    // same heal discipline as link faults: everything is clean again
    // before the probe train, because undetectable data-payload
    // corruption during the probes would fail delivery for reasons the
    // protocols cannot observe.
    for _ in 0..rng.gen_range(2..=5) {
        let at = rng.gen_range(200..=2400u64);
        let heal = (at + rng.gen_range(100..=400)).min(2950);
        match rng.gen_range(0..10) {
            0 => {
                let l = rng.gen_range(0..links);
                s.push(at, FaultEvent::LinkDown(l));
                s.push(heal, FaultEvent::LinkUp(l));
            }
            1 => {
                let l = rng.gen_range(0..links);
                let pm = rng.gen_range(100..=500);
                s.push(at, FaultEvent::LinkLoss(l, pm));
                s.push(heal, FaultEvent::LinkLoss(l, 0));
            }
            2 => {
                let r = rng.gen_range(0..routers);
                s.push(at, FaultEvent::CrashRouter(r));
                s.push(heal, FaultEvent::RestartRouter(r));
            }
            3 => {
                let l = rng.gen_range(0..links);
                let pm = rng.gen_range(100..=400);
                s.push(at, FaultEvent::CorruptLink(l, pm));
                s.push(heal, FaultEvent::CorruptLink(l, 0));
            }
            4 => {
                let l = rng.gen_range(0..links);
                let pm = rng.gen_range(100..=500);
                s.push(at, FaultEvent::DuplicateLink(l, pm));
                s.push(heal, FaultEvent::DuplicateLink(l, 0));
            }
            5 => {
                let l = rng.gen_range(0..links);
                let pm = rng.gen_range(100..=500);
                let jitter = rng.gen_range(5..=40);
                s.push(at, FaultEvent::ReorderLink(l, pm, jitter));
                s.push(heal, FaultEvent::ReorderLink(l, 0, 0));
            }
            6 => {
                // Atomic multi-link cut; the heal restores every link
                // and resets its channel model in the same tick.
                let a = rng.gen_range(0..links);
                let b = rng.gen_range(0..links);
                let mut cut = vec![a];
                if b != a {
                    cut.push(b);
                }
                s.push(at, FaultEvent::Partition(cut.clone()));
                s.push(heal, FaultEvent::Heal(cut));
            }
            7 => {
                // Membership churn mid-fault-window counts as a fault too.
                let slot = rng.gen_range(member_slots.clone());
                s.push(at, FaultEvent::Leave(slot));
                s.push(heal, FaultEvent::Join(slot));
            }
            8 => {
                // Congestion as a fault: cap the link hard enough that the
                // data train queues and may tail-drop, heal by restoring
                // unlimited. Control priority stays on (the generator
                // never emits prio 0) — the no-starvation oracle depends
                // on it, and clean-by-construction schedules must pass.
                let l = rng.gen_range(0..links);
                let rate = rng.gen_range(2..=16);
                let queue = rng.gen_range(64..=512);
                s.push(at, FaultEvent::Bandwidth(l, rate, queue, 1));
                s.push(heal, FaultEvent::Bandwidth(l, 0, 0, 1));
            }
            _ => {
                // Overload burst from a member slot — traffic, not a
                // fault, so it is self-contained and needs no heal. Its
                // (S,G) state expires long before the oracle checkpoint
                // (max burst end ~3450 + entry timeout 400 < 6000).
                let slot = rng.gen_range(member_slots.clone());
                let count = rng.gen_range(8..=32);
                let gap = rng.gen_range(1..=8);
                s.push(at, FaultEvent::Burst(slot, count, gap));
            }
        }
    }

    if teardown {
        // Everyone leaves after the heal point; the probe train then runs
        // against an empty group and the no-orphans oracle takes over.
        for slot in member_slots {
            s.push(2960 + u64::from(slot), FaultEvent::Leave(slot));
        }
    } else if s.final_members(topo.host_routers.len()).is_empty() {
        s.push(2900, FaultEvent::Join(1));
    }
    s
}

/// The outcome of one (topology, protocol, schedule, seed) run.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Oracle violations, in deterministic order.
    pub violations: Vec<Violation>,
    /// Hash over the full packet trace — byte-identical replays produce
    /// the identical fingerprint.
    pub fingerprint: u64,
    /// The captured packet trace, one line per transmission.
    pub trace: Vec<String>,
    /// The JSONL telemetry event stream of the run (one object per
    /// line, keyed by sim time). Deterministic: replays reproduce it
    /// byte for byte.
    pub telemetry: String,
    /// Hash over [`CaseOutcome::telemetry`].
    pub telemetry_fingerprint: u64,
    /// Rendered convergence metrics (join latency, SPT switchover,
    /// post-fault reconvergence histograms).
    pub metrics: String,
    /// Flight-recorder and state dumps of the routers implicated by the
    /// violations; empty when every oracle passed.
    pub dumps: Vec<NodeDump>,
    /// Write-error count of the JSONL sink at detach
    /// ([`telemetry::JsonlSink`]`::errors`). Nonzero means event lines
    /// were lost and the stream fingerprint cannot be trusted; replay
    /// tests assert zero.
    pub sink_errors: u64,
    /// Raw join-latency samples (ticks) behind the metrics histogram —
    /// pooled by the explorer for exact p50/p99.
    pub join_samples: Vec<u64>,
    /// Raw post-fault reconvergence samples (ticks).
    pub reconv_samples: Vec<u64>,
    /// The causal DAG folded from the run's provenance stream
    /// (DESIGN.md §11); `trace why` renders slices from it.
    pub causal: CausalIndex,
}

/// One implicated router's post-mortem: its flight-recorder tail and its
/// `show mroute`-style state snapshot at the oracle checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDump {
    /// Graph node index of the router.
    pub node: usize,
    /// Flight-recorder lines, oldest first (`t<ticks> <event>`).
    pub flight: Vec<String>,
    /// State-snapshot lines ([`telemetry::StateDump`] output, split).
    pub state: Vec<String>,
    /// Backward causal slice ending at this router's last entry-flag
    /// transition (fallback: its last event) — the minimal ancestry
    /// chain explaining how the router got into the dumped state.
    /// Rendered lines from [`telemetry::CausalIndex::backward_slice`];
    /// empty on runs recorded before causal tracing existed.
    pub cause: Vec<String>,
}

/// Format the captured trace, one stable line per transmission.
fn trace_lines(net: &ScenarioNet) -> Vec<String> {
    net.world
        .captured()
        .iter()
        .map(|r| {
            format!(
                "{} link{} r{} {}",
                r.at.ticks(),
                r.link.0,
                r.from.0,
                r.summary
            )
        })
        .collect()
}

fn fingerprint(lines: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    for l in lines {
        l.hash(&mut h);
    }
    h.finish()
}

fn hash_text(text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    text.hash(&mut h);
    h.finish()
}

/// Run one schedule against one protocol and apply the oracles.
///
/// The explorer always uses the oracle unicast substrate: static routing
/// keeps the run bit-for-bit reproducible from `(schedule, seed)` alone,
/// which the replay-artifact contract depends on.
///
/// The run executes under the **no-panic oracle**: a panic anywhere in
/// the simulation (an engine choking on adversarial input, an overflow
/// in a decode path) is caught and reported as a `no-panic` violation
/// instead of tearing the explorer down, so one poisoned run still
/// yields a replayable artifact.
pub fn run_case(
    topo: &TopoSpec,
    protocol: Protocol,
    schedule: &FaultSchedule,
    seed: u64,
) -> CaseOutcome {
    run_case_threads(topo, protocol, schedule, seed, 1)
}

/// [`run_case`] on a region-partitioned world advanced by `threads`
/// workers. The replay-artifact contract extends across this knob: every
/// thread count (including 1) produces byte-identical traces, telemetry,
/// and fingerprints, so campaigns can be parallelized without forking
/// their artifacts.
pub fn run_case_threads(
    topo: &TopoSpec,
    protocol: Protocol,
    schedule: &FaultSchedule,
    seed: u64,
    threads: usize,
) -> CaseOutcome {
    run_case_coverage(topo, protocol, schedule, seed, threads).0
}

/// [`run_case_threads`] with a [`telemetry::CoverageSink`] attached:
/// returns the outcome plus the coverage map folded from the run's
/// event stream — the feedback signal for coverage-guided search. The
/// sink observes only, so the outcome (trace, telemetry bytes,
/// fingerprints) is identical to an uninstrumented run; and because the
/// event stream is byte-identical at any `--threads`, so is the
/// coverage map (`scenario/tests/coverage.rs` pins this).
pub fn run_case_coverage(
    topo: &TopoSpec,
    protocol: Protocol,
    schedule: &FaultSchedule,
    seed: u64,
    threads: usize,
) -> (CaseOutcome, CoverageMap) {
    let coverage = Arc::new(Mutex::new(CoverageSink::new(
        Protocol::ALL.iter().position(|p| *p == protocol).unwrap() as u64,
    )));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_case_inner(topo, protocol, schedule, seed, threads, coverage.clone())
    })) {
        Ok(outcome) => {
            let map = coverage.lock().unwrap().map().clone();
            (outcome, map)
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            // A panicking seed is a reproduction seed above all else:
            // record it (plus topology and protocol) in the violation
            // itself, so the repro is one trace.sh invocation away even
            // when only the summary line survives.
            let mut map = coverage.lock().unwrap().map().clone();
            map.record(telemetry::feature("panic", &[]));
            (
                CaseOutcome {
                    violations: vec![Violation {
                        oracle: "no-panic",
                        node: 0,
                        detail: format!(
                            "simulation panicked [topology {} protocol {} seed {seed}; \
                             repro: ./scripts/trace.sh {} {} {seed}]: {msg}",
                            topo.name,
                            protocol.name(),
                            topo.name,
                            protocol.name()
                        ),
                    }],
                    fingerprint: 0,
                    trace: Vec::new(),
                    telemetry: String::new(),
                    telemetry_fingerprint: 0,
                    metrics: String::new(),
                    dumps: Vec::new(),
                    sink_errors: 0,
                    join_samples: Vec::new(),
                    reconv_samples: Vec::new(),
                    causal: CausalIndex::new(),
                },
                map,
            )
        }
    }
}

fn run_case_inner(
    topo: &TopoSpec,
    protocol: Protocol,
    schedule: &FaultSchedule,
    seed: u64,
    threads: usize,
    coverage: Arc<Mutex<CoverageSink>>,
) -> CaseOutcome {
    let group = Group::test(1);
    let mut net = build_net(
        &topo.graph,
        protocol,
        Substrate::Oracle,
        group,
        topo.rendezvous,
        &topo.host_routers,
        seed,
    );
    net.world.enable_capture(CAPTURE_LIMIT);

    // Telemetry: flight recorder (post-mortem dumps), JSONL stream (the
    // byte-identity contract), metrics aggregator (convergence
    // histograms). Observation only — the packet trace is unchanged.
    let flight = Arc::new(Mutex::new(FlightRecorder::new(FLIGHT_RECORDER_CAP)));
    let jsonl = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
    let metrics = Arc::new(Mutex::new(MetricsAggregator::new()));
    let causal = Arc::new(Mutex::new(CausalIndex::new()));
    let mut fan = Fanout::new();
    fan.push(flight.clone());
    fan.push(jsonl.clone());
    fan.push(metrics.clone());
    fan.push(causal.clone());
    fan.push(coverage);
    net.attach_telemetry(Arc::new(Mutex::new(fan)));

    let host_nodes: Vec<NodeIdx> = net.hosts.iter().map(|&(n, _)| n).collect();
    schedule.install(&mut net.world, &host_nodes, group);

    // Pre-fault train then post-heal probes, both from slot 0.
    net.send_at(0, 100, TRAIN, 40);
    net.send_at(0, PROBE_START, PROBES, PROBE_GAP);

    net.world.parallelize(threads);
    net.world.run_until(SimTime(CHECK_AT));

    let members = schedule.final_members(topo.host_routers.len());
    let source = host_addr(topo.host_routers[0], 0);
    let expected: Vec<u64> = (TRAIN..TRAIN + PROBES).collect();

    let mut violations = check_structure(&net);
    if members.is_empty() {
        violations.extend(check_no_orphans(&net));
    } else {
        let c = net.world.counters();
        let congested =
            c.queue_drops_data() > 0 || c.queue_drops_ctrl() > 0 || c.peak_queue_bytes() > 0;
        if congested {
            // Same expectation as plain delivery, but labeled
            // `congestion-recovery` so triage can tell "the tree never
            // recovered from overload" apart from ordinary fault loss.
            violations.extend(check_congestion_recovery(&net, &members, source, &expected));
        } else {
            violations.extend(check_delivery(&net, &members, source, &expected));
        }
    }

    let causal = causal.lock().unwrap().clone();

    // Post-mortem dumps for every router an oracle implicated, each with
    // the backward causal slice explaining its last flag transition.
    let mut implicated: Vec<usize> = violations
        .iter()
        .map(|v| v.node)
        .filter(|&n| n < net.router_count)
        .collect();
    implicated.sort_unstable();
    implicated.dedup();
    let dumps = implicated
        .into_iter()
        .map(|n| NodeDump {
            node: n,
            flight: flight.lock().unwrap().dump(n as u32),
            state: net
                .state_dump(n, SimTime(CHECK_AT))
                .lines()
                .map(str::to_string)
                .collect(),
            cause: causal
                .last_flag_transition(Some(n as u32))
                .or_else(|| causal.last_event_on(n as u32))
                .map(|id| slice_lines(&causal, id))
                .unwrap_or_default(),
        })
        .collect();

    metrics.lock().unwrap().finish();
    let (metrics, join_samples, reconv_samples) = {
        let m = metrics.lock().unwrap();
        (
            m.render(),
            m.join_latency.samples().to_vec(),
            m.reconvergence.samples().to_vec(),
        )
    };
    // Detach point: surface the write-error counter the sink accumulated
    // silently during the run. Nonzero means lost event lines.
    let sink_errors = jsonl.lock().unwrap().errors;
    if sink_errors != 0 {
        eprintln!(
            "warning: JSONL telemetry sink dropped {sink_errors} event line(s) \
             (write errors); stream fingerprint is unreliable"
        );
    }
    let telemetry = String::from_utf8(jsonl.lock().unwrap().get_ref().clone())
        .expect("JSONL telemetry is always UTF-8");

    let trace = trace_lines(&net);
    CaseOutcome {
        violations,
        fingerprint: fingerprint(&trace),
        trace,
        telemetry_fingerprint: hash_text(&telemetry),
        telemetry,
        metrics,
        dumps,
        sink_errors,
        join_samples,
        reconv_samples,
        causal,
    }
}

/// A backward slice as flat artifact-ready lines (hop renderings are
/// multi-line; dumps serialize line by line).
pub fn slice_lines(causal: &CausalIndex, id: telemetry::EventId) -> Vec<String> {
    causal
        .backward_slice(id)
        .iter()
        .flat_map(|hop| hop.lines())
        .map(str::to_string)
        .collect()
}

/// Explore one seed on one topology: derive its schedule (teardown mode
/// on every third seed) and run all three protocols against it.
pub fn explore_seed(topo: &TopoSpec, seed: u64) -> Vec<(Protocol, CaseOutcome)> {
    let schedule = random_schedule(topo, seed, seed % 3 == 2);
    Protocol::ALL
        .into_iter()
        .map(|p| (p, run_case(topo, p, &schedule, seed)))
        .collect()
}

// ---------------------------------------------------------------------
// Replay artifacts
// ---------------------------------------------------------------------

/// A minimal, self-contained reproduction of one violating run: enough to
/// re-execute it byte-identically, plus the implicated routers'
/// post-mortems (flight-recorder tails and state snapshots) so the
/// failure can be read without re-running anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Topology name (resolved via [`topology`]).
    pub topology: String,
    /// World seed.
    pub seed: u64,
    /// The exact fault schedule.
    pub schedule: FaultSchedule,
    /// Trace fingerprint of the violating run.
    pub fingerprint: u64,
    /// Fingerprint of the JSONL telemetry event stream — replay must
    /// reproduce the stream byte-identically.
    pub telemetry: u64,
    /// The violations observed, rendered.
    pub violations: Vec<String>,
    /// Post-mortems of the routers the violations implicate.
    pub dumps: Vec<NodeDump>,
}

impl Artifact {
    /// Capture an artifact from a violating run.
    pub fn capture(
        topo: &TopoSpec,
        protocol: Protocol,
        schedule: &FaultSchedule,
        seed: u64,
        outcome: &CaseOutcome,
    ) -> Artifact {
        Artifact {
            protocol,
            topology: topo.name.to_string(),
            seed,
            schedule: schedule.clone(),
            fingerprint: outcome.fingerprint,
            telemetry: outcome.telemetry_fingerprint,
            violations: outcome.violations.iter().map(|v| v.to_string()).collect(),
            dumps: outcome.dumps.clone(),
        }
    }

    /// Serialize to the artifact text form. Dump payload lines are
    /// indented two spaces so the bare `flight` / `state` / `end`
    /// markers can never collide with recorded content.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("scenario-replay-v1\n");
        s.push_str(&format!("protocol {}\n", self.protocol.name()));
        s.push_str(&format!("topology {}\n", self.topology));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        s.push_str(&format!("telemetry {:016x}\n", self.telemetry));
        s.push_str("schedule\n");
        s.push_str(&self.schedule.to_text());
        s.push_str("end\n");
        for v in &self.violations {
            s.push_str(&format!("violation {v}\n"));
        }
        for d in &self.dumps {
            s.push_str(&format!("dump r{}\n", d.node));
            s.push_str("flight\n");
            for l in &d.flight {
                s.push_str(&format!("  {l}\n"));
            }
            s.push_str("end\n");
            s.push_str("state\n");
            for l in &d.state {
                s.push_str(&format!("  {l}\n"));
            }
            s.push_str("end\n");
            // Optional section: absent when the slice is empty, so
            // artifacts recorded before causal tracing parse unchanged.
            if !d.cause.is_empty() {
                s.push_str("cause\n");
                for l in &d.cause {
                    s.push_str(&format!("  {l}\n"));
                }
                s.push_str("end\n");
            }
            s.push_str("end\n");
        }
        s
    }

    /// Parse the artifact text form back (exact round trip of
    /// [`Artifact::to_text`]).
    pub fn from_text(text: &str) -> Result<Artifact, String> {
        let mut lines = text.lines();
        if lines.next() != Some("scenario-replay-v1") {
            return Err("not a scenario-replay-v1 artifact".into());
        }
        let mut field = |key: &str| -> Result<String, String> {
            let l = lines.next().ok_or_else(|| format!("missing {key} line"))?;
            l.strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{key} ...`, got {l:?}"))
        };
        let protocol = Protocol::from_name(&field("protocol")?)
            .ok_or_else(|| "unknown protocol".to_string())?;
        let topology = field("topology")?;
        let seed: u64 = field("seed")?.parse().map_err(|_| "bad seed".to_string())?;
        let fingerprint = u64::from_str_radix(&field("fingerprint")?, 16)
            .map_err(|_| "bad fingerprint".to_string())?;
        let telemetry = u64::from_str_radix(&field("telemetry")?, 16)
            .map_err(|_| "bad telemetry fingerprint".to_string())?;
        if lines.next() != Some("schedule") {
            return Err("missing schedule section".into());
        }
        let mut sched_text = String::new();
        let mut terminated = false;
        for l in lines.by_ref() {
            if l == "end" {
                terminated = true;
                break;
            }
            sched_text.push_str(l);
            sched_text.push('\n');
        }
        if !terminated {
            return Err("schedule section not terminated by `end`".into());
        }
        let schedule = FaultSchedule::from_text(&sched_text)?;
        let (violations, dumps) = Self::parse_tail(lines)?;
        Ok(Artifact {
            protocol,
            topology,
            seed,
            schedule,
            fingerprint,
            telemetry,
            violations,
            dumps,
        })
    }

    /// Parse the violation and dump sections after the schedule.
    fn parse_tail<'a>(
        lines: impl Iterator<Item = &'a str>,
    ) -> Result<(Vec<String>, Vec<NodeDump>), String> {
        #[derive(PartialEq)]
        enum Mode {
            Top,
            Dump,
            Flight,
            State,
            Cause,
        }
        let mut mode = Mode::Top;
        let mut violations = Vec::new();
        let mut dumps: Vec<NodeDump> = Vec::new();
        let mut cur: Option<NodeDump> = None;
        for l in lines {
            match mode {
                Mode::Top => {
                    if let Some(v) = l.strip_prefix("violation ") {
                        violations.push(v.to_string());
                    } else if let Some(n) = l.strip_prefix("dump r") {
                        let node = n.parse().map_err(|_| format!("bad dump node {n:?}"))?;
                        cur = Some(NodeDump {
                            node,
                            flight: Vec::new(),
                            state: Vec::new(),
                            cause: Vec::new(),
                        });
                        mode = Mode::Dump;
                    } else {
                        return Err(format!("unexpected artifact line {l:?}"));
                    }
                }
                Mode::Dump => match l {
                    "flight" => mode = Mode::Flight,
                    "state" => mode = Mode::State,
                    "cause" => mode = Mode::Cause,
                    "end" => {
                        dumps.push(cur.take().expect("dump under construction"));
                        mode = Mode::Top;
                    }
                    _ => return Err(format!("unexpected dump line {l:?}")),
                },
                Mode::Flight | Mode::State | Mode::Cause => {
                    if l == "end" {
                        mode = Mode::Dump;
                    } else {
                        let payload = l
                            .strip_prefix("  ")
                            .ok_or_else(|| format!("unindented dump payload {l:?}"))?
                            .to_string();
                        let d = cur.as_mut().expect("dump under construction");
                        match mode {
                            Mode::Flight => d.flight.push(payload),
                            Mode::State => d.state.push(payload),
                            _ => d.cause.push(payload),
                        }
                    }
                }
            }
        }
        if mode != Mode::Top {
            return Err("dump section not terminated by `end`".into());
        }
        Ok((violations, dumps))
    }
}

/// Re-execute an artifact. The run is deterministic, so the returned
/// outcome's fingerprint, telemetry fingerprint, violations, and dumps
/// must equal the artifact's — the replay test target asserts exactly
/// that.
pub fn replay(artifact: &Artifact) -> Result<CaseOutcome, String> {
    let topo = topology(&artifact.topology)
        .ok_or_else(|| format!("unknown topology {:?}", artifact.topology))?;
    Ok(run_case(
        &topo,
        artifact.protocol,
        &artifact.schedule,
        artifact.seed,
    ))
}

/// Replay an artifact and check every recorded field byte-identically:
/// trace fingerprint, telemetry fingerprint, violations, and post-mortem
/// dumps. `Ok(outcome)` means the artifact reproduces exactly; the
/// shrinker calls this before any minimized artifact is written, and the
/// corpus loop calls it for every committed regression artifact.
pub fn verify_replay(artifact: &Artifact) -> Result<CaseOutcome, String> {
    let outcome = replay(artifact)?;
    if outcome.fingerprint != artifact.fingerprint {
        return Err(format!(
            "trace fingerprint mismatch: recorded {:016x}, replayed {:016x}",
            artifact.fingerprint, outcome.fingerprint
        ));
    }
    if outcome.telemetry_fingerprint != artifact.telemetry {
        return Err(format!(
            "telemetry fingerprint mismatch: recorded {:016x}, replayed {:016x}",
            artifact.telemetry, outcome.telemetry_fingerprint
        ));
    }
    let replayed: Vec<String> = outcome.violations.iter().map(|v| v.to_string()).collect();
    if replayed != artifact.violations {
        return Err(format!(
            "violations mismatch: recorded {:?}, replayed {:?}",
            artifact.violations, replayed
        ));
    }
    if outcome.dumps != artifact.dumps {
        return Err("post-mortem dumps mismatch".to_string());
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------
// The regression corpus loop
// ---------------------------------------------------------------------

/// Load every `*.replay` artifact under `dir`, sorted by file name so
/// the corpus loop runs (and reports) in a stable order.
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<(std::path::PathBuf, Artifact)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "replay"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let artifact =
            Artifact::from_text(&text).map_err(|e| format!("parse {}: {e}", p.display()))?;
        out.push((p, artifact));
    }
    Ok(out)
}

/// Per-artifact `(file name, replay result)` list from [`replay_corpus`].
pub type CorpusReplay = Vec<(String, Result<(), String>)>;

/// Replay every artifact in `dir` byte-identically ([`verify_replay`]).
/// Returns the per-artifact `(file name, result)` list; an artifact that
/// drifts — different trace, telemetry, violations, or dumps — is a
/// regression of whatever behavior the artifact pinned.
pub fn replay_corpus(dir: &std::path::Path) -> Result<CorpusReplay, String> {
    let corpus = load_corpus(dir)?;
    Ok(corpus
        .into_iter()
        .map(|(path, artifact)| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            (name, verify_replay(&artifact).map(|_| ()))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The telemetry layer's core contract at full-stack scope: attaching
    /// the complete sink fanout changes nothing about protocol behavior —
    /// the packet trace is identical line for line.
    #[test]
    fn telemetry_attachment_does_not_perturb_the_trace() {
        let topo = &topologies()[0];
        let schedule = random_schedule(topo, 3, false);
        let group = Group::test(1);
        let run = |protocol: Protocol, attach: bool| -> Vec<String> {
            let mut net = build_net(
                &topo.graph,
                protocol,
                Substrate::Oracle,
                group,
                topo.rendezvous,
                &topo.host_routers,
                3,
            );
            net.world.enable_capture(CAPTURE_LIMIT);
            if attach {
                let mut fan = Fanout::new();
                fan.push(Arc::new(Mutex::new(FlightRecorder::new(
                    FLIGHT_RECORDER_CAP,
                ))));
                fan.push(Arc::new(Mutex::new(JsonlSink::new(Vec::new()))));
                fan.push(Arc::new(Mutex::new(MetricsAggregator::new())));
                net.attach_telemetry(Arc::new(Mutex::new(fan)));
            }
            let host_nodes: Vec<NodeIdx> = net.hosts.iter().map(|&(n, _)| n).collect();
            schedule.install(&mut net.world, &host_nodes, group);
            net.send_at(0, 100, TRAIN, 40);
            net.world.run_until(SimTime(CHECK_AT));
            trace_lines(&net)
        };
        for protocol in Protocol::ALL {
            assert_eq!(
                run(protocol, false),
                run(protocol, true),
                "{}: telemetry must be observation-only",
                protocol.name()
            );
        }
    }
}
