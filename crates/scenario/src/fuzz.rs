//! Deterministic, offline fuzzing of the decode path and the engines.
//!
//! No external fuzzer: frames are derived from a seeded splitmix stream
//! ([`par::mix`]), so every run is reproducible from its seed alone and
//! a failure seed can be replayed forever. Two stages:
//!
//! 1. **Wire stage** ([`fuzz_wire`]) — mutate exemplar encodings of
//!    every [`wire::Message`] variant (bit flips, truncation, extension,
//!    splicing) and mix in pure-random buffers, then assert the decoders
//!    are total: [`wire::Message::decode`] and [`wire::ip::Header::decap`]
//!    never panic on any input, and any *accepted* frame re-encodes to a
//!    buffer that decodes back to the identical message.
//! 2. **Engine stage** ([`fuzz_engine`]) — run a live scenario per
//!    protocol and inject malformed control frames directly into
//!    routers mid-run. The engines must absorb the garbage: no panic,
//!    state bounded to the scenario's group, every injected frame
//!    counted exactly once as a malformed drop, and the post-heal probe
//!    train still delivered to every member (soft-state refresh heals
//!    whatever the garbage grazed).

use crate::explore::topologies;
use crate::net::{build_net, Protocol, Substrate};
use crate::oracle::{
    check_bounded_state, check_cbt_ack_ledger, check_delivery, check_loop_freedom, check_rpf,
    Violation,
};
use crate::schedule::{FaultEvent, FaultSchedule};
use cbt::CbtRouter;
use dvmrp::DvmrpRouter;
use netsim::{host_addr, router_addr, NodeIdx, SimTime};
use pim::PimRouter;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use wire::ip::{Header, Protocol as IpProto, HEADER_LEN};
use wire::{
    cbt as wcbt, dvmrp as wdvmrp, igmp as wigmp, pim as wpim, unicast as wuni, Addr, Group, Message,
};

/// Counter-mode splitmix stream: the `n`-th draw is `mix(seed, stream, n)`,
/// so a stream is random-access and two streams never correlate.
pub struct SeedStream {
    seed: u64,
    stream: u64,
    n: u64,
}

impl SeedStream {
    /// Stream `stream` of `seed`.
    pub fn new(seed: u64, stream: u64) -> SeedStream {
        SeedStream { seed, stream, n: 0 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.n += 1;
        par::mix(self.seed, self.stream, self.n)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One exemplar of every [`Message`] variant, fields populated so every
/// length-prefixed list and nested payload path is exercised.
pub fn corpus() -> Vec<Message> {
    let g = Group::test(1);
    let a1 = Addr::new(10, 0, 0, 1);
    let a2 = Addr::new(10, 0, 0, 2);
    vec![
        Message::HostQuery(wigmp::HostQuery { max_resp_time: 10 }),
        Message::HostReport(wigmp::HostReport { group: g }),
        Message::RpMapping(wigmp::RpMapping {
            group: g,
            rps: vec![a1, a2],
        }),
        Message::PimQuery(wpim::Query { holdtime: 105 }),
        Message::PimRegister(wpim::Register {
            group: g,
            source: a1,
            payload: vec![1, 2, 3, 4],
        }),
        Message::PimJoinPrune(wpim::JoinPrune {
            upstream_neighbor: a1,
            holdtime: 210,
            groups: vec![wpim::GroupEntry {
                group: g,
                joins: vec![wpim::SourceEntry::source(a2)],
                prunes: vec![wpim::SourceEntry::source(a1)],
            }],
        }),
        Message::PimRpReachability(wpim::RpReachability {
            group: g,
            rp: a1,
            holdtime: 90,
        }),
        Message::DvmrpProbe(wdvmrp::Probe {
            neighbors: vec![a1, a2],
        }),
        Message::DvmrpPrune(wdvmrp::Prune {
            source: a1,
            group: g,
            lifetime: 100,
        }),
        Message::DvmrpGraft(wdvmrp::Graft {
            source: a1,
            group: g,
        }),
        Message::DvmrpGraftAck(wdvmrp::GraftAck {
            source: a1,
            group: g,
        }),
        Message::CbtJoinRequest(wcbt::JoinRequest {
            group: g,
            core: a1,
            originator: a2,
        }),
        Message::CbtJoinAck(wcbt::JoinAck {
            group: g,
            core: a1,
            originator: a2,
        }),
        Message::CbtEcho(wcbt::Echo { groups: vec![g] }),
        Message::CbtEchoReply(wcbt::EchoReply { groups: vec![g] }),
        Message::CbtQuit(wcbt::Quit { group: g }),
        Message::CbtFlushTree(wcbt::FlushTree { group: g }),
        Message::DvUpdate(wuni::DvUpdate {
            routes: vec![wuni::DvRoute { dst: a1, metric: 3 }],
        }),
        Message::Lsa(wuni::Lsa {
            origin: a1,
            seq: 7,
            links: vec![wuni::LsaLink {
                neighbor: a2,
                cost: 1,
            }],
        }),
        Message::Hello(wuni::Hello { holdtime: 30 }),
    ]
}

/// Mutate `base` with one seeded strategy: bit flips, truncation,
/// extension with random bytes, a spliced tail from `other`, or full
/// replacement with random bytes.
pub fn mutate(base: &[u8], other: &[u8], rng: &mut SeedStream) -> Vec<u8> {
    let mut out = base.to_vec();
    match rng.below(5) {
        // Flip 1..=4 random bits.
        0 => {
            for _ in 0..1 + rng.below(4) {
                if out.is_empty() {
                    break;
                }
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
        }
        // Truncate at a random point (possibly to empty).
        1 => {
            let keep = rng.below(out.len() + 1);
            out.truncate(keep);
        }
        // Extend with 1..=16 random bytes.
        2 => {
            for _ in 0..1 + rng.below(16) {
                out.push(rng.next_u64() as u8);
            }
        }
        // Splice: keep a random prefix, then append a random suffix of
        // the other frame (crossover of two valid encodings).
        3 => {
            let keep = rng.below(out.len() + 1);
            out.truncate(keep);
            if !other.is_empty() {
                let from = rng.below(other.len());
                out.extend_from_slice(&other[from..]);
            }
        }
        // Replace wholesale with 0..64 random bytes.
        _ => {
            out.clear();
            for _ in 0..rng.below(64) {
                out.push(rng.next_u64() as u8);
            }
        }
    }
    out
}

/// Outcome of the wire-level stage.
#[derive(Debug, Default)]
pub struct WireFuzzReport {
    /// Frames generated and fed to the decoders.
    pub frames: u64,
    /// Frames [`Message::decode`] accepted (and round-tripped).
    pub accepted: u64,
    /// Rejections by [`wire::DecodeError::kind`] label.
    pub rejects: BTreeMap<&'static str, u64>,
    /// Decoder panics (must be zero — the headline invariant).
    pub panics: u64,
    /// Accepted frames whose re-encode did not decode back to the same
    /// message (must be zero).
    pub roundtrip_failures: u64,
}

/// Stage 1: seeded mutation of valid encodings plus pure-random buffers,
/// pushed through both [`Message::decode`] and [`Header::decap`].
pub fn fuzz_wire(seed: u64, frames: u64) -> WireFuzzReport {
    let corpus: Vec<Vec<u8>> = corpus().iter().map(Message::encode).collect();
    let hdr = Header {
        proto: IpProto::Igmp,
        ttl: 8,
        src: Addr::new(10, 0, 0, 1),
        dst: Addr::new(10, 0, 0, 2),
    };
    let mut rng = SeedStream::new(seed, 0x77_17e);
    let mut report = WireFuzzReport::default();
    for _ in 0..frames {
        let base = &corpus[rng.below(corpus.len())];
        let other = &corpus[rng.below(corpus.len())];
        // Half bare message frames, half IP-encapsulated ones, so both
        // the message decoder and the decap path see every mutation.
        let frame = if rng.below(2) == 0 {
            mutate(base, other, &mut rng)
        } else {
            mutate(&hdr.encap(base), &hdr.encap(other), &mut rng)
        };
        report.frames += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut accepted = None;
            let mut reject = None;
            match Message::decode(&frame) {
                Ok(m) => accepted = Some(m),
                Err(e) => reject = Some(e.kind()),
            }
            // Decap too; a decapped IGMP payload goes through decode as
            // it would on a router's receive path.
            if let Ok((h, payload)) = Header::decap(&frame) {
                if h.proto == IpProto::Igmp {
                    if let Ok(m) = Message::decode(payload) {
                        accepted.get_or_insert(m);
                    }
                }
            }
            (accepted, reject)
        }));
        match outcome {
            Err(_) => report.panics += 1,
            Ok((accepted, reject)) => {
                if let Some(m) = accepted {
                    report.accepted += 1;
                    let re = m.encode();
                    if Message::decode(&re).ok() != Some(m) {
                        report.roundtrip_failures += 1;
                    }
                } else if let Some(kind) = reject {
                    *report.rejects.entry(kind).or_insert(0) += 1;
                }
            }
        }
    }
    report
}

/// Outcome of one protocol's engine-level stage.
#[derive(Debug)]
pub struct EngineFuzzOutcome {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Malformed frames injected into routers mid-run.
    pub injected: u64,
    /// Decode failures the world's ledger recorded.
    pub decode_failures: u64,
    /// Sum of the routers' own malformed-drop counters.
    pub malformed_drops: u64,
    /// Oracle violations (empty on success), rendered.
    pub violations: Vec<String>,
}

/// Pre-screen for the engine stage: only frames that a router will
/// *reject* may be injected. A mutated frame that still decodes cleanly
/// is legitimate protocol input (it could legally create state), which
/// would invalidate the bounded-state oracle; channel corruption of
/// valid traffic is the explorer's job, not the fuzzer's.
fn is_malformed(frame: &[u8]) -> bool {
    match Header::decap(frame) {
        Err(_) => true,
        Ok((h, payload)) => h.proto == IpProto::Igmp && Message::decode(payload).is_err(),
    }
}

/// Stage 2: one live scenario on the diamond topology with `frames`
/// malformed control frames injected into random router interfaces
/// during the fault window. Checks the no-panic, structural,
/// bounded-state, accounting, and delivery invariants.
pub fn fuzz_engine(protocol: Protocol, seed: u64, frames: u64) -> EngineFuzzOutcome {
    const TRAIN: u64 = 10;
    const PROBES: u64 = 8;

    let topo = &topologies()[0]; // diamond: 4 routers, hosts at 0, 1, 3
    let group = Group::test(1);
    let corpus: Vec<Vec<u8>> = corpus().iter().map(Message::encode).collect();
    let mut rng = SeedStream::new(seed, 0xe9_14e ^ protocol as u64);

    let run = AssertUnwindSafe(|| {
        let mut net = build_net(
            &topo.graph,
            protocol,
            Substrate::Oracle,
            group,
            topo.rendezvous,
            &topo.host_routers,
            seed,
        );
        let host_nodes: Vec<NodeIdx> = net.hosts.iter().map(|&(n, _)| n).collect();
        let mut schedule = FaultSchedule::default();
        schedule.push(30, FaultEvent::Join(1));
        schedule.push(60, FaultEvent::Join(2));
        schedule.install(&mut net.world, &host_nodes, group);
        net.send_at(0, 100, TRAIN, 40);
        net.send_at(0, 4500, PROBES, 30);

        // Inject malformed frames spread over 150..=2900 — garbage stops
        // well before the probe train, mirroring the explorer's heal
        // discipline, so delivery measures recovery, not luck.
        let hdr = Header {
            proto: IpProto::Igmp,
            ttl: 8,
            src: host_addr(topo.host_routers[0], 0),
            dst: router_addr(topo.rendezvous),
        };
        let mut injected = 0u64;
        for i in 0..frames {
            let at = 150 + i * 2750 / frames.max(1);
            let r = rng.below(net.router_count);
            let peers = &net.peers[r];
            if peers.is_empty() {
                continue;
            }
            let iface = peers[rng.below(peers.len())].iface;
            let base = hdr.encap(&corpus[rng.below(corpus.len())]);
            let other = hdr.encap(&corpus[rng.below(corpus.len())]);
            let mut frame = mutate(&base, &other, &mut rng);
            if !is_malformed(&frame) {
                // Rare: the mutation kept both checksums valid. Force a
                // reject with a bad version byte instead of skipping, so
                // the injected count stays exactly `frames`-paced.
                frame = vec![0xFF; HEADER_LEN];
            }
            injected += 1;
            net.world.at(SimTime(at), move |w| {
                w.call_node(NodeIdx(r), |n, ctx| n.on_packet(ctx, iface, &frame));
            });
        }

        net.world.run_until(SimTime(6000));

        let mut violations = check_rpf(&net);
        violations.extend(check_loop_freedom(&net));
        violations.extend(check_cbt_ack_ledger(&net));
        violations.extend(check_bounded_state(&net));
        let members = [1, 2];
        let source = host_addr(topo.host_routers[0], 0);
        let expected: Vec<u64> = (TRAIN..TRAIN + PROBES).collect();
        violations.extend(check_delivery(&net, &members, source, &expected));

        let decode_failures = net.world.counters().total_decode_failures();
        let malformed_drops: u64 = (0..net.router_count)
            .map(|n| match protocol {
                Protocol::Pim => net.world.node::<PimRouter>(NodeIdx(n)).malformed_drops,
                Protocol::Dvmrp => net.world.node::<DvmrpRouter>(NodeIdx(n)).malformed_drops,
                Protocol::Cbt => net.world.node::<CbtRouter>(NodeIdx(n)).malformed_drops,
            })
            .sum();
        if decode_failures != injected {
            violations.push(Violation {
                oracle: "fuzz-accounting",
                node: 0,
                detail: format!(
                    "injected {injected} malformed frame(s) but the ledger \
                     recorded {decode_failures} decode failure(s)"
                ),
            });
        }
        (injected, decode_failures, malformed_drops, violations)
    });

    match catch_unwind(run) {
        Ok((injected, decode_failures, malformed_drops, violations)) => EngineFuzzOutcome {
            protocol,
            injected,
            decode_failures,
            malformed_drops,
            violations: violations.iter().map(Violation::to_string).collect(),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            EngineFuzzOutcome {
                protocol,
                injected: 0,
                decode_failures: 0,
                malformed_drops: 0,
                violations: vec![format!("no-panic @ r0: engine fuzz panicked: {msg}")],
            }
        }
    }
}

/// Run the engine stage for all three protocols.
pub fn fuzz_engines(seed: u64, frames_per_protocol: u64) -> Vec<EngineFuzzOutcome> {
    Protocol::ALL
        .into_iter()
        .map(|p| fuzz_engine(p, seed, frames_per_protocol))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_fuzz_smoke_no_panics() {
        let r = fuzz_wire(7, 2_000);
        assert_eq!(r.frames, 2_000);
        assert_eq!(r.panics, 0, "decoder panicked");
        assert_eq!(r.roundtrip_failures, 0, "encode∘decode not idempotent");
        // Mutations overwhelmingly break a checksum or a length field —
        // the taxonomy should show real variety.
        assert!(r.rejects.len() >= 3, "reject kinds: {:?}", r.rejects);
    }

    #[test]
    fn engine_fuzz_smoke_all_protocols_absorb_garbage() {
        for outcome in fuzz_engines(11, 120) {
            assert!(
                outcome.violations.is_empty(),
                "{:?}: {:?}",
                outcome.protocol,
                outcome.violations
            );
            assert_eq!(outcome.injected, 120);
            assert_eq!(outcome.decode_failures, outcome.injected);
            assert_eq!(outcome.malformed_drops, outcome.injected);
        }
    }
}
