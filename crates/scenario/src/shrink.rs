//! Deterministic greedy shrinking of fault schedules.
//!
//! A violating schedule found by the explorer or by coverage-guided
//! search is rarely minimal: it carries the generator's boilerplate
//! (healed faults that never mattered, churn that changed nothing) and
//! oddly specific times. The shrinker minimizes a schedule while
//! preserving a caller-supplied property — for violation artifacts,
//! "still violates the same set of oracles" — using three greedy passes
//! iterated to a joint fixpoint:
//!
//! 1. **event deletion** — drop one event at a time, keeping each
//!    deletion that preserves the property (so the final schedule is
//!    **1-minimal**: no single event can be removed);
//! 2. **time rounding** — snap event times down to multiples of 1000,
//!    500, 100, 50, 10;
//! 3. **fault-arm weakening** — halve loss/corrupt/duplicate/reorder
//!    per-mille values, reorder jitter, and burst counts, and drop
//!    links from partition/heal cut sets one at a time.
//!
//! Unlike the search mutator, the shrinker deliberately does **not**
//! re-soundene candidates through [`FaultSchedule::normalize`]: its
//! contract is to preserve the input's observed behavior exactly, and
//! appending heals would flip a crash-without-restart repro from
//! violating to passing. Shrink edits (delete / retime-down / weaken)
//! can never invent an out-of-range index, so they are safe without it.
//! When a heal deletion preserves the predicate, that *is* a smaller
//! reproduction of the same oracle failure — the predicate, not a
//! structural rule, decides what matters.
//!
//! Every accepted edit strictly decreases `(event count, total time,
//! arm magnitudes)` lexicographically, so the pass loop terminates; the
//! cap below is a belt on top of that. The whole procedure is a pure
//! function of its inputs: fixed pass order, fixed candidate order, no
//! randomness. Shrinking the same schedule twice yields the identical
//! result (`scenario/tests/shrink.rs` pins determinism, property
//! preservation, and 1-minimality).
//!
//! [`FaultSchedule::normalize`]: crate::schedule::FaultSchedule::normalize

use crate::explore::{run_case, verify_replay, Artifact, CaseOutcome, TopoSpec};
use crate::net::Protocol;
use crate::schedule::{FaultEvent, FaultSchedule};
use std::collections::BTreeSet;

/// Bookkeeping of one shrink: how much work it did and how far it got.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate simulations executed.
    pub runs: usize,
    /// Events in the input schedule.
    pub initial_events: usize,
    /// Events in the minimized schedule.
    pub final_events: usize,
    /// Full pass-loop iterations until the fixpoint.
    pub passes: usize,
}

/// A successful shrink: the minimized schedule, the outcome of its run
/// (the property holds on it), and the work done.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized schedule.
    pub schedule: FaultSchedule,
    /// The outcome of running the minimized schedule.
    pub outcome: CaseOutcome,
    /// Shrink bookkeeping.
    pub stats: ShrinkStats,
}

/// Time-rounding granularities, coarse to fine.
const GRANULARITIES: [u64; 5] = [1000, 500, 100, 50, 10];
/// Bound on pass-loop iterations (accepted edits strictly shrink the
/// schedule, so this is a safety net, not a tuning knob).
const MAX_PASSES: usize = 8;

/// Shrink `schedule` for `(topo, protocol, seed)` while `pred` holds.
///
/// `pred` sees each candidate schedule and its run outcome and must be
/// deterministic. Returns `None` when the property does not hold on the
/// input itself — there is nothing to preserve.
pub fn shrink_with<F>(
    topo: &TopoSpec,
    protocol: Protocol,
    seed: u64,
    schedule: &FaultSchedule,
    pred: F,
) -> Option<ShrinkResult>
where
    F: Fn(&FaultSchedule, &CaseOutcome) -> bool,
{
    let mut stats = ShrinkStats::default();
    let holds = |s: &FaultSchedule, stats: &mut ShrinkStats| -> Option<CaseOutcome> {
        stats.runs += 1;
        let o = run_case(topo, protocol, s, seed);
        pred(s, &o).then_some(o)
    };

    let mut cur = schedule.clone();
    stats.initial_events = cur.events.len();
    let mut outcome = holds(&cur, &mut stats)?;

    for pass in 0..MAX_PASSES {
        stats.passes = pass + 1;
        let mut changed = false;

        // Pass 1: event deletion, greedy to a local fixpoint. Accepting
        // a deletion shifts the next event into slot `i`, so the index
        // only advances on rejection.
        let mut i = 0;
        while i < cur.events.len() {
            let cand = cur.with_deleted(i);
            if let Some(o) = holds(&cand, &mut stats) {
                cur = cand;
                outcome = o;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: time rounding, coarse to fine. Always downward (never
        // below tick 1), so accepted rounds strictly decrease times.
        for g in GRANULARITIES {
            for i in 0..cur.events.len() {
                let t = cur.events[i].0;
                let rounded = (t - t % g).max(1);
                if rounded == t {
                    continue;
                }
                if let Some(o) = holds(&cur.with_retimed(i, rounded), &mut stats) {
                    cur = cur.with_retimed(i, rounded);
                    outcome = o;
                    changed = true;
                }
            }
        }

        // Pass 3: fault-arm weakening. Halving repeats on the same slot
        // until the predicate refuses.
        let mut i = 0;
        while i < cur.events.len() {
            let (t, ev) = cur.events[i].clone();
            let weaker: Vec<FaultEvent> = match &ev {
                FaultEvent::LinkLoss(l, pm) if *pm > 1 => vec![FaultEvent::LinkLoss(*l, pm / 2)],
                FaultEvent::CorruptLink(l, pm) if *pm > 1 => {
                    vec![FaultEvent::CorruptLink(*l, pm / 2)]
                }
                FaultEvent::DuplicateLink(l, pm) if *pm > 1 => {
                    vec![FaultEvent::DuplicateLink(*l, pm / 2)]
                }
                FaultEvent::ReorderLink(l, pm, j) if *pm > 1 || *j > 1 => {
                    vec![FaultEvent::ReorderLink(
                        *l,
                        if *pm > 1 { pm / 2 } else { *pm },
                        if *j > 1 { j / 2 } else { *j },
                    )]
                }
                FaultEvent::Burst(h, count, gap) if *count > 1 => {
                    vec![FaultEvent::Burst(*h, count / 2, *gap)]
                }
                FaultEvent::Partition(ls) if ls.len() > 1 => (0..ls.len())
                    .map(|k| {
                        let mut sub = ls.clone();
                        sub.remove(k);
                        FaultEvent::Partition(sub)
                    })
                    .collect(),
                FaultEvent::Heal(ls) if ls.len() > 1 => (0..ls.len())
                    .map(|k| {
                        let mut sub = ls.clone();
                        sub.remove(k);
                        FaultEvent::Heal(sub)
                    })
                    .collect(),
                _ => Vec::new(),
            };
            let mut weakened = false;
            for w in weaker {
                let mut cand = cur.clone();
                cand.events[i] = (t, w);
                if let Some(o) = holds(&cand, &mut stats) {
                    cur = cand;
                    outcome = o;
                    changed = true;
                    weakened = true;
                    break; // retry the same slot with the weaker arm
                }
            }
            if !weakened {
                i += 1;
            }
        }

        if !changed {
            break;
        }
    }

    stats.final_events = cur.events.len();
    Some(ShrinkResult {
        schedule: cur,
        outcome,
        stats,
    })
}

/// Shrink a violating run while it keeps violating the *same set of
/// oracles* as the original. Returns `None` when the original run does
/// not violate anything.
pub fn shrink_violation(
    topo: &TopoSpec,
    protocol: Protocol,
    seed: u64,
    schedule: &FaultSchedule,
) -> Option<ShrinkResult> {
    let original = run_case(topo, protocol, schedule, seed);
    if original.violations.is_empty() {
        return None;
    }
    let oracles: BTreeSet<&'static str> = original.violations.iter().map(|v| v.oracle).collect();
    shrink_with(topo, protocol, seed, schedule, move |_s, o| {
        let got: BTreeSet<&'static str> = o.violations.iter().map(|v| v.oracle).collect();
        oracles.iter().all(|x| got.contains(x))
    })
}

/// Minimize a violating artifact: shrink its schedule, capture a fresh
/// artifact from the minimized run, and **re-verify byte-identical
/// replay** before returning it — a minimized artifact that does not
/// reproduce exactly is a bug, not a deliverable.
pub fn shrink_artifact(artifact: &Artifact) -> Result<(Artifact, ShrinkStats), String> {
    let topo = crate::explore::topology(&artifact.topology)
        .ok_or_else(|| format!("unknown topology {:?}", artifact.topology))?;
    let result = shrink_violation(&topo, artifact.protocol, artifact.seed, &artifact.schedule)
        .ok_or_else(|| "artifact's schedule does not violate any oracle".to_string())?;
    let minimized = Artifact::capture(
        &topo,
        artifact.protocol,
        &result.schedule,
        artifact.seed,
        &result.outcome,
    );
    verify_replay(&minimized).map_err(|e| format!("minimized artifact failed replay: {e}"))?;
    Ok((minimized, result.stats))
}
